//! Network intrusion detection: a Snort-flavoured ruleset scanned at line
//! rate, comparing both Cache Automaton designs against the DRAM Automata
//! Processor and a measured CPU baseline — the paper's headline use case.
//!
//! Run with: `cargo run --release --example network_ids`

use ca_baselines::{measure_cpu, ApModel};
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CacheAutomaton, Design, Parallelism};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CI-sized slice of the Snort workload (use Scale::full() for the
    // paper's 2585-rule automaton).
    let workload = Benchmark::Snort.build(Scale(0.1), 42);
    let traffic = workload.input(256 * 1024, 7);
    println!(
        "ruleset: {} states across {} rules; traffic: {} KB",
        workload.nfa.len(),
        ca_automata::analysis::connected_components(&workload.nfa).len(),
        traffic.len() / 1024
    );
    println!();

    let ap = ApModel::default();
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>10}",
        "engine", "thrpt Gb/s", "vs AP", "util MB", "nJ/sym"
    );

    // Micron AP reference row.
    println!(
        "{:<22} {:>12.2} {:>10} {:>12} {:>10}",
        "Micron AP (DRAM)",
        ap.throughput_gbps(),
        "1.0x",
        "-",
        "-"
    );

    let mut matches_per_design = Vec::new();
    for design in [Design::Performance, Design::Space] {
        let program =
            CacheAutomaton::builder().design(design).build().compile_nfa(&workload.nfa)?;
        let report = program.run(&traffic);
        println!(
            "{:<22} {:>12.2} {:>9.1}x {:>12.3} {:>10.3}",
            format!("Cache Automaton {}", program.design()),
            program.throughput_gbps(),
            program.throughput_gbps() / ap.throughput_gbps(),
            program.utilization_mb(),
            report.energy.per_symbol_nj
        );
        matches_per_design.push(report.matches.len());
    }

    // Measured CPU baseline (VASim-style sparse engine on this host).
    let cpu = measure_cpu(&workload.nfa, &traffic);
    println!(
        "{:<22} {:>12.4} {:>9.4}x {:>12} {:>10}",
        "x86 CPU (measured)",
        cpu.throughput_gbps(),
        cpu.throughput_gbps() / ap.throughput_gbps(),
        "-",
        "-"
    );
    println!();

    assert_eq!(
        matches_per_design[0], matches_per_design[1],
        "both designs must report identical alerts"
    );
    println!(
        "alerts raised: {} (identical across designs and CPU: {})",
        matches_per_design[0],
        cpu.matches == matches_per_design[0] as u64
    );
    println!();

    // Sharded parallel scan of ONE stream: stripes run on concurrent
    // fabric instances and the boundary handoff keeps the alert stream
    // byte-identical to the serial scan.
    let program =
        CacheAutomaton::builder().design(Design::Performance).build().compile_nfa(&workload.nfa)?;
    let serial = program.run(&traffic);
    for shards in [2usize, 4, 8] {
        let parallel = program.run_parallel(&traffic, Parallelism::Threads(shards))?;
        assert_eq!(parallel.matches, serial.matches, "sharding must not change alerts");
        println!(
            "{shards} shards: {:.2} Gb/s simulated ({:.2}x serial), alerts identical",
            parallel.achieved_gbps(),
            serial.exec.cycles as f64 / parallel.exec.cycles as f64
        );
    }
    Ok(())
}
