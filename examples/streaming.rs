//! Streaming operation: a [`Scanner`] session scanning a stream chunk by
//! chunk with suspend/resume (§2.9) and multi-instance scaling over
//! parallel streams (§5.2).
//!
//! Run with: `cargo run --release --example streaming`

use cache_automaton::{CaError, CacheAutomaton, Design, Scanner, Session};

/// Feeds chunks through *any* session — a serial [`Scanner`] here, but the
/// same function drives a pooled `StreamHandle` or a network stream,
/// because all of them implement [`Session`].
fn pump(session: &mut impl Session, chunks: &[&[u8]]) -> Result<(), CaError> {
    for chunk in chunks {
        session.feed(chunk)?;
        for ev in session.poll_matches() {
            println!("  pattern {} at absolute offset {}", ev.code.0, ev.pos);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = CacheAutomaton::builder()
        .design(Design::Space)
        .build()
        .compile_patterns(&["beacon[0-9]{4}", "exfil.*payload"])?;

    // --- chunked scanning ----------------------------------------------
    // The session carries the fabric's active-state vectors across feed()
    // calls, so a match spanning a chunk boundary is still found at its
    // absolute stream offset.
    let mut scanner = program.scanner();
    pump(&mut scanner, &[b"....beac".as_slice(), b"on1234....exfil==", b"==payload...."])?;

    // --- suspend, persist, resume --------------------------------------
    // The suspend image is small: a symbol counter, the CBOX buffer
    // occupancy and one 256-bit vector per partition.
    let image = scanner.snapshot().expect("fed session has an image").clone();
    println!(
        "suspend image: {} bytes for {} partitions at symbol {}",
        image.size_bytes(),
        image.active_vectors.len(),
        image.symbol_counter
    );
    let matches_so_far = scanner.matches().len();
    drop(scanner); // e.g. the flow is parked while other flows are serviced

    let mut resumed: Scanner<'_> = program.resume_scanner(image)?;
    resumed.feed(b"..beacon0007..");
    println!("resumed at symbol {}", resumed.position() - 14);
    let report = resumed.finish();
    let total = matches_so_far + report.matches.len();
    println!(
        "resumed session: {} more match(es), stream total {total}, {:.2} Gb/s simulated",
        report.matches.len(),
        report.achieved_gbps()
    );
    assert_eq!(total, 3, "two boundary-spanning matches plus one after resume");
    println!();

    // --- multi-instance scaling ----------------------------------------
    let instances = program.max_instances().min(8);
    let multi = program.replicate(instances)?;
    let streams: Vec<Vec<u8>> = (0..instances)
        .map(|i| {
            let mut s = vec![b'.'; 4096];
            let marker = format!("beacon{:04}", i * 11 % 10000);
            s.extend_from_slice(marker.as_bytes());
            s
        })
        .collect();
    let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
    let reports = multi.run_streams(&refs)?;
    let hits: usize = reports.iter().map(|r| r.matches.len()).sum();
    println!(
        "{instances} parallel instances: {hits} beacons caught, aggregate {} Gb/s ({}x one AP)",
        multi.aggregate_throughput_gbps(),
        (multi.aggregate_throughput_gbps() / 1.064).round()
    );
    assert_eq!(hits, instances);
    Ok(())
}
