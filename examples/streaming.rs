//! Streaming operation: chunked scans with suspend/resume (§2.9) and
//! multi-instance scaling over parallel streams (§5.2).
//!
//! Run with: `cargo run --release --example streaming`

use ca_sim::RunOptions;
use cache_automaton::{CacheAutomaton, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = CacheAutomaton::builder()
        .design(Design::Space)
        .build()
        .compile_patterns(&["beacon[0-9]{4}", "exfil.*payload"])?;

    // --- chunked scanning with suspend/resume --------------------------
    // A match spanning a chunk boundary must still be found: the snapshot
    // carries the active-state vectors across chunks.
    let stream = b"....beac".to_vec();
    let chunk2 = b"on1234....exfil==".to_vec();
    let chunk3 = b"==payload....".to_vec();

    let mut fabric = program.compiled().fabric()?;
    let r1 = fabric.run(&stream);
    let r2 = fabric.run_with(
        &chunk2,
        &RunOptions { resume: r1.snapshot.clone(), ..Default::default() },
    );
    let r3 = fabric.run_with(
        &chunk3,
        &RunOptions { resume: r2.snapshot.clone(), collect_entries: true, ..Default::default() },
    );
    let total = r1.events.len() + r2.events.len() + r3.events.len();
    println!("chunked scan across 3 chunks found {total} matches:");
    for ev in r1.events.iter().chain(&r2.events).chain(&r3.events) {
        println!("  pattern {} at absolute offset {}", ev.code.0, ev.pos);
    }
    let snap = r3.snapshot.as_ref().expect("snapshot");
    println!(
        "suspend image: {} bytes for {} partitions at symbol {}",
        snap.size_bytes(),
        snap.active_vectors.len(),
        snap.symbol_counter
    );
    assert_eq!(total, 2, "both boundary-spanning patterns must fire");
    for entry in &r3.entries {
        println!(
            "  CBOX entry: partition {} column {} symbol {:?} counter {}",
            entry.partition, entry.column, entry.symbol as char, entry.symbol_counter
        );
    }
    println!();

    // --- multi-instance scaling ----------------------------------------
    let instances = program.max_instances().min(8);
    let multi = program.replicate(instances)?;
    let streams: Vec<Vec<u8>> = (0..instances)
        .map(|i| {
            let mut s = vec![b'.'; 4096];
            let marker = format!("beacon{:04}", i * 11 % 10000);
            s.extend_from_slice(marker.as_bytes());
            s
        })
        .collect();
    let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
    let reports = multi.run_streams(&refs);
    let hits: usize = reports.iter().map(|r| r.matches.len()).sum();
    println!(
        "{instances} parallel instances: {hits} beacons caught, aggregate {} Gb/s ({}x one AP)",
        multi.aggregate_throughput_gbps(),
        (multi.aggregate_throughput_gbps() / 1.064).round()
    );
    assert_eq!(hits, instances);
    Ok(())
}
