//! Quickstart: compile a handful of regexes into the Cache Automaton,
//! scan a stream, and read back both the matches and the architectural
//! report (throughput, utilization, energy).
//!
//! Run with: `cargo run --example quickstart`

use cache_automaton::{CacheAutomaton, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1 working example: patterns {bat, bar, bart, ar,
    // at, art, car, cat, cart} — expressed as three compact regexes.
    let patterns = ["ba[rt]t?", "ca[rt]t?", "a[rt]t?"];

    let ca = CacheAutomaton::builder().design(Design::Performance).build();
    let program = ca.compile_patterns(&patterns)?;

    println!("compiled {} patterns:", patterns.len());
    println!("  states            : {}", program.stats().states);
    println!("  partitions        : {}", program.stats().partitions_used);
    println!("  cache utilization : {:.3} MB", program.utilization_mb());
    println!(
        "  design            : {} @ {} GHz",
        program.design(),
        program.timing().operating_freq_ghz()
    );
    println!("  peak throughput   : {} Gb/s", program.throughput_gbps());
    println!();

    // Scan through a streaming session: feed() takes the stream in any
    // chunking (here: two halves) and finish() renders the report.
    let input = b"the cat dragged the cart past a bat near the bar";
    let mut scanner = program.scanner();
    scanner.feed(&input[..input.len() / 2]);
    scanner.feed(&input[input.len() / 2..]);
    let report = scanner.finish();

    println!("scanned {:?}", String::from_utf8_lossy(input));
    for m in &report.matches {
        println!(
            "  pattern {} matched ending at byte {} ({:?})",
            m.code.0,
            m.pos,
            String::from_utf8_lossy(&input[m.pos.saturating_sub(3) as usize..=m.pos as usize])
        );
    }
    println!();
    println!("architectural report:");
    println!("  cycles            : {}", report.exec.cycles);
    println!("  avg active states : {:.2}", report.exec.avg_active_states_per_symbol());
    println!("  energy / symbol   : {:.3} nJ", report.energy.per_symbol_nj);
    println!("  average power     : {:.3} W", report.energy.avg_power_w);
    println!("  simulated wall    : {:.2} ns", report.simulated_seconds * 1e9);
    Ok(())
}
