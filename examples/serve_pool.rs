//! Serving many streams: a [`ScanPool`] multiplexes logical scan streams
//! over a small fleet of worker threads that recycle fabric instances, with
//! bounded queues, incremental match delivery and graceful shutdown.
//!
//! Run with: `cargo run --release --example serve_pool`

use cache_automaton::{CaError, CacheAutomaton, PoolOptions, RunReport, ScanPool, Session};

/// Drives one flow through any [`Session`] — here a pooled
/// `StreamHandle`, but the identical function works over a serial
/// [`Scanner`](cache_automaton::Scanner) or a daemon connection.
fn pump(mut session: impl Session, flow: usize, chunks: &[&[u8]]) -> Result<RunReport, CaError> {
    for chunk in chunks {
        session.feed(chunk)?;
        // Matches stream out as soon as a worker scans the chunk; a real
        // server would forward them here.
        for ev in session.poll_matches() {
            println!("flow {flow}: pattern {} at offset {}", ev.code.0, ev.pos);
        }
    }
    session.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = CacheAutomaton::builder()
        .build()
        .compile_patterns(&["beacon[0-9]{4}", "exfil.*payload"])?;

    // Two workers share one recycled fabric: max_fabrics bounds memory no
    // matter how many logical streams connect.
    let pool = ScanPool::new(
        &program,
        PoolOptions { workers: 2, max_fabrics: 1, ..PoolOptions::default() },
    )?;

    // Feed three concurrent "connections" from ordinary threads. Each
    // stream sees its own isolated automaton state, so a pattern spanning
    // two of one stream's chunks still matches while the other streams'
    // bytes interleave arbitrarily on the workers.
    let flows: [&[&[u8]]; 3] = [
        &[b"....beac", b"on1234...."],
        &[b"clean traffic, nothing to see"],
        &[b"exfil==", b"==payload", b"..beacon0007"],
    ];
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = flows
            .iter()
            .enumerate()
            .map(|(i, chunks)| {
                let stream = pool.open_stream().expect("pool is running");
                scope.spawn(move || pump(stream, i, chunks).expect("stream drains cleanly"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("feeder thread")).collect::<Vec<_>>()
    });
    pool.shutdown()?;

    for (i, report) in reports.iter().enumerate() {
        println!(
            "flow {i}: {} match(es), {} bytes, {:.2} Gb/s simulated",
            report.matches.len(),
            report.exec.symbols,
            report.achieved_gbps()
        );
    }
    let total: usize = reports.iter().map(|r| r.matches.len()).sum();
    assert_eq!(total, 3, "two beacons and one exfil pair across the flows");
    Ok(())
}
