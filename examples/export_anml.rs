//! Export a synthesized benchmark as an ANML file plus an input trace, then
//! drive them through the `cactl` command-line tool:
//!
//! ```text
//! cargo run --release --example export_anml
//! target/release/cactl compile /tmp/ca_export/bro217.anml
//! target/release/cactl run     /tmp/ca_export/bro217.anml /tmp/ca_export/trace.bin
//! ```

use ca_automata::anml::{parse_anml, to_anml};
use ca_workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("ca_export");
    std::fs::create_dir_all(&dir)?;

    let workload = Benchmark::Bro217.build(Scale(0.5), 7);
    let anml = to_anml(&workload.nfa, "bro217");

    // sanity: the document round-trips before we write it
    assert_eq!(parse_anml(&anml)?, workload.nfa);

    let anml_path = dir.join("bro217.anml");
    let trace_path = dir.join("trace.bin");
    std::fs::write(&anml_path, &anml)?;
    std::fs::write(&trace_path, workload.input(64 * 1024, 3))?;

    println!(
        "exported {} states / {} ANML lines to {}",
        workload.nfa.len(),
        anml.lines().count(),
        anml_path.display()
    );
    println!("exported 64 KiB trace to {}", trace_path.display());
    println!();
    println!("next steps:");
    println!("  cargo build --release -p cache-automaton");
    println!("  target/release/cactl compile {}", anml_path.display());
    println!("  target/release/cactl run {} {}", anml_path.display(), trace_path.display());
    println!(
        "  target/release/cactl run --shards 4 {} {}   # parallel sharded scan",
        anml_path.display(),
        trace_path.display()
    );
    Ok(())
}
