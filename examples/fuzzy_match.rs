//! Fuzzy dictionary search with Levenshtein automata — the edit-distance
//! workload family (ANMLZoo Levenshtein) on a realistic task: find
//! misspelled occurrences of dictionary words in text.
//!
//! Run with: `cargo run --release --example fuzzy_match`

use ca_automata::{HomNfa, ReportCode};
use ca_workloads::editdist::levenshtein_nfa;
use cache_automaton::{CacheAutomaton, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dictionary = ["automaton", "pattern", "cache", "pipeline", "partition"];
    let distance = 1;

    // One Levenshtein automaton per word, unioned into a multi-pattern NFA.
    let parts: Vec<HomNfa> = dictionary
        .iter()
        .enumerate()
        .map(|(i, word)| levenshtein_nfa(word.as_bytes(), distance, ReportCode(i as u32)))
        .collect();
    let nfa = HomNfa::union_all(parts.iter(), false);

    let program =
        CacheAutomaton::builder().design(Design::Performance).build().compile_nfa(&nfa)?;
    println!(
        "{} dictionary words at edit distance <= {distance}: {} STEs in {} partition(s)",
        dictionary.len(),
        program.stats().states,
        program.stats().partitions_used
    );
    println!();

    // Feed the text in small chunks through a scan session; fuzzy matches
    // spanning chunk boundaries are still found.
    let text = b"the cahe automataon uses a pipelne of patern matchers per partition";
    let mut scanner = program.scanner();
    for chunk in text.chunks(16) {
        scanner.feed(chunk);
    }
    let report = scanner.finish();

    println!("text: {:?}", String::from_utf8_lossy(text));
    let mut found = vec![false; dictionary.len()];
    for m in &report.matches {
        found[m.code.0 as usize] = true;
    }
    for (i, word) in dictionary.iter().enumerate() {
        println!(
            "  {:<10} -> {}",
            word,
            if found[i] { "found (possibly misspelled)" } else { "not present" }
        );
    }

    // "cahe"(cache -1), "automataon"(automaton +1), "pipelne"(-1),
    // "patern"(-1), "partition" exact: all five fire.
    assert!(found.iter().all(|&f| f), "every fuzzy word should be found");
    println!();
    println!(
        "scan: {} symbols, avg {:.1} active states/cycle, {:.3} nJ/symbol",
        report.exec.symbols,
        report.exec.avg_active_states_per_symbol(),
        report.energy.per_symbol_nj
    );
    Ok(())
}
