//! Log scanning: multi-pattern alerting over a synthetic system log,
//! showing report codes, the CBOX output-buffer/interrupt machinery and the
//! energy breakdown — the "system logs" scenario of the paper's intro.
//!
//! Run with: `cargo run --release --example log_scan`

use cache_automaton::{CacheAutomaton, Design, Optimize};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = [
        ("auth-failure", "failed password for [a-z]+"),
        ("oom-kill", "out of memory: kill process [0-9]+"),
        ("disk-error", "i/o error, dev sd[a-z]"),
        ("segfault", "segfault at [0-9a-f]+"),
        ("root-login", "session opened for user root"),
    ];
    let patterns: Vec<&str> = rules.iter().map(|(_, p)| *p).collect();

    // Space-optimized flow with explicit optimization (shared prefixes in
    // rule sets merge, shrinking the footprint).
    let ca = CacheAutomaton::builder().design(Design::Space).optimize(Optimize::Always).build();
    let program = ca.compile_patterns(&patterns)?;
    println!(
        "{} alert rules -> {} STEs after prefix merging, {:.3} MB of LLC",
        rules.len(),
        program.stats().states,
        program.utilization_mb()
    );

    // Synthesize a log: benign lines with alerting lines sprinkled in.
    let mut rng = StdRng::seed_from_u64(99);
    let benign = ["service nginx reloaded ok", "cron job completed", "dhcp lease renewed on eth0"];
    let alerts = [
        "failed password for alice",
        "out of memory: kill process 4242",
        "i/o error, dev sdb",
        "segfault at deadbeef",
        "session opened for user root",
    ];
    let mut log = String::new();
    let mut planted = 0;
    for _ in 0..4000 {
        if rng.gen_bool(0.02) {
            log.push_str(alerts[rng.gen_range(0..alerts.len())]);
            planted += 1;
        } else {
            log.push_str(benign[rng.gen_range(0..benign.len())]);
        }
        log.push('\n');
    }

    // Logs arrive line by line; a Scanner session scans them as they come
    // while keeping absolute stream offsets for the alerter.
    let mut scanner = program.scanner();
    for line in log.as_bytes().split_inclusive(|&b| b == b'\n') {
        scanner.feed(line);
    }
    let report = scanner.finish();
    // A rule like `[a-z]+` reports once per extra symbol; collapse the
    // match stream to alerting *lines*, as a real alerter would.
    let hits = cache_automaton::matches::group_by_line(log.as_bytes(), &report.matches);
    let mut per_rule = vec![0usize; rules.len()];
    for hit in &hits {
        for code in &hit.codes {
            per_rule[code.0 as usize] += 1;
        }
    }
    println!();
    println!("scanned {} KB of logs; {} alerting lines planted", log.len() / 1024, planted);
    for ((name, _), count) in rules.iter().zip(&per_rule) {
        println!("  {name:<14} {count:>6} line(s)");
    }
    let distinct: usize = per_rule.iter().sum();
    assert_eq!(distinct, planted, "every planted alert must fire exactly once per line");

    println!();
    println!("energy breakdown for the scan:");
    let b = &report.energy.breakdown;
    println!("  SRAM arrays   : {:>10.1} nJ", b.array_nj);
    println!("  local switches: {:>10.1} nJ", b.lswitch_nj);
    println!("  global switch : {:>10.1} nJ", b.gswitch_nj);
    println!("  wires         : {:>10.1} nJ", b.wire_nj);
    println!(
        "  total         : {:>10.1} nJ ({:.3} nJ/symbol)",
        b.total_nj(),
        report.energy.per_symbol_nj
    );
    println!(
        "output buffer: {} reports, {} buffer-full interrupts, {} FIFO refills",
        report.exec.reports, report.exec.output_interrupts, report.exec.fifo_refills
    );
    Ok(())
}
