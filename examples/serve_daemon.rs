//! Network serving: a [`Daemon`] answering the length-prefixed wire
//! protocol on a TCP socket, a [`Client`] scanning streams over it, and a
//! hot reload swapping the rule set under live traffic — the library form
//! of `cactl serve` / `cactl connect`.
//!
//! Run with: `cargo run --release --example serve_daemon`

use cache_automaton::{CacheAutomaton, Client, Daemon, DaemonOptions, PoolOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bind on an ephemeral port; generation 0 serves these rules. In
    // production this is one `cactl serve rules.txt --listen 0.0.0.0:7070`
    // process and the clients are other machines.
    let ca = CacheAutomaton::new();
    let options = DaemonOptions { pool: PoolOptions { workers: 2, ..PoolOptions::default() } };
    let daemon = Daemon::bind(&ca, "beacon[0-9]{4}\nexfil.*payload\n", "127.0.0.1:0", options)?;
    println!("daemon listening on {}", daemon.local_addr());

    let mut client = Client::connect(&daemon.local_addr())?;

    // One logical stream, fed in chunks; a pattern spanning two chunks
    // still matches because the daemon holds the automaton state.
    let (stream, generation) = client.open_stream()?;
    println!("opened stream {stream:#x} on generation {generation}");
    client.feed(stream, b"....beac")?;
    client.feed(stream, b"on1234....exfil==")?;
    client.feed(stream, b"==payload....")?;
    for ev in client.poll_matches(stream)? {
        println!("  live: pattern {} at offset {}", ev.code.0, ev.pos);
    }
    let report = client.finish(stream)?;
    println!(
        "stream closed: {} match(es) over {} symbols, {} cycles simulated",
        report.events.len(),
        report.exec.symbols,
        report.exec.cycles
    );
    assert_eq!(report.events.len(), 2);

    // Hot reload: streams opened before the swap drain on the old rules;
    // this one binds the new generation.
    let generation = client.reload(Some("beacon[0-9]{4}\nransom(ware)?\n"))?;
    println!("reloaded to generation {generation}");
    let (stream, bound) = client.open_stream()?;
    assert_eq!(bound, generation);
    client.feed(stream, b"..ransomware..beacon0007..")?;
    let report = client.finish(stream)?;
    println!("new-generation stream: {} match(es)", report.events.len());
    // `ransom(ware)?` reports at both "ransom" and "ransomware".
    assert_eq!(report.events.len(), 3, "ransom, ransomware and beacon under the reloaded rules");

    let stats = client.stats()?;
    println!(
        "daemon stats: generation {}, {} reload(s), {} stream(s) served",
        stats.generation, stats.reloads, stats.streams_served
    );
    drop(client);
    daemon.shutdown()?;
    Ok(())
}
