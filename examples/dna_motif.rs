//! Motif discovery in biological sequences — the Protomata/Weeder use case
//! from the paper's introduction: PROSITE-style protein motifs scanned over
//! a synthetic proteome.
//!
//! Run with: `cargo run --release --example dna_motif`

use cache_automaton::{CacheAutomaton, Design, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PROSITE-style motifs: exact residues, residue classes, bounded gaps.
    // (PROSITE notation C-x(2,4)-C maps to regex C.{2,4}C.)
    let motifs = [
        // zinc finger C2H2-like
        "C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H",
        // protein kinase ATP-binding-like
        "[LIV]G[EQ]G[SA]FG[KR]V",
        // N-glycosylation-like site
        "N[^P][ST][^P]",
        // EF-hand calcium-binding-like
        "D.{3}[DNS][LIVFYW].{2}[DE]",
    ];

    let ca = CacheAutomaton::builder().design(Design::Space).build();
    let program = ca.compile_patterns(&motifs)?;
    println!("compiled {} PROSITE-style motifs into {} STEs", motifs.len(), program.stats().states);
    println!(
        "space-optimized design: {:.3} MB of LLC, {} Gb/s scan rate",
        program.utilization_mb(),
        program.throughput_gbps()
    );
    println!();

    // Synthetic proteome with a few planted motif instances.
    let mut rng = StdRng::seed_from_u64(2017);
    let mut proteome: Vec<u8> =
        (0..200_000).map(|_| AMINO[rng.gen_range(0..AMINO.len())]).collect();
    let plants: [&[u8]; 3] = [b"CAACAAALAAAAAAAAHAAAH", b"LGEGSFGKV", b"NAST"];
    for (i, plant) in plants.iter().enumerate() {
        let at = 10_000 + i * 50_000;
        proteome[at..at + plant.len()].copy_from_slice(plant);
    }

    // A proteome is one long stream with no packet structure — exactly the
    // shape the sharded parallel driver likes: four fabric instances scan
    // one stripe each, and the boundary handoff keeps the motif list
    // identical to a serial scan.
    let report = program.run_parallel(&proteome, Parallelism::Threads(4))?;
    println!("scanned {} residues across 4 parallel stripes:", proteome.len());
    let mut per_motif = vec![0usize; motifs.len()];
    for m in &report.matches {
        per_motif[m.code.0 as usize] += 1;
    }
    for (i, (motif, count)) in motifs.iter().zip(&per_motif).enumerate() {
        println!("  motif {i} ({motif}): {count} site(s)");
    }
    println!();
    println!(
        "hardware would finish in {:.2} us at {:.3} nJ/residue ({} reports, {} interrupts)",
        report.simulated_seconds * 1e6,
        report.energy.per_symbol_nj,
        report.exec.reports,
        report.exec.output_interrupts
    );
    // the planted kinase + glycosylation sites must be found
    assert!(per_motif[1] >= 1, "planted kinase motif missed");
    assert!(per_motif[2] >= 1, "planted glycosylation site missed");
    Ok(())
}
