//! Property tests for the multilevel partitioner.

use ca_partition::{partition_kway, Graph, PartitionOptions};
use proptest::prelude::*;

/// Random connected-ish graph: a spanning path plus random extra edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..80).prop_flat_map(|n| {
        let extra = prop::collection::vec((0..n, 0..n, 1u32..6), 0..n * 2);
        (Just(n), extra).prop_map(|(n, extra)| {
            let mut edges: Vec<(u32, u32, u32)> =
                (0..n as u32 - 1).map(|i| (i, i + 1, 1)).collect();
            edges.extend(extra.into_iter().map(|(a, b, w)| (a as u32, b as u32, w)));
            Graph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertex is assigned a part in range; the reported edgecut is the
    /// true edgecut of the assignment.
    #[test]
    fn partition_is_valid(g in graph_strategy(), k in 1usize..9) {
        let p = partition_kway(&g, k, &PartitionOptions::default());
        prop_assert_eq!(p.assignment.len(), g.len());
        prop_assert!(p.assignment.iter().all(|&a| (a as usize) < k));
        prop_assert_eq!(p.edgecut, g.edge_cut(&p.assignment));
    }

    /// Identical seeds yield identical partitions.
    #[test]
    fn partition_is_deterministic(g in graph_strategy(), k in 1usize..6) {
        let a = partition_kway(&g, k, &PartitionOptions::default());
        let b = partition_kway(&g, k, &PartitionOptions::default());
        prop_assert_eq!(a, b);
    }

    /// Balance: no part exceeds ~2x the ideal weight on these small random
    /// graphs (recursive bisection with eps=0.05 typically does far better;
    /// this is a hard ceiling, not the expected quality).
    #[test]
    fn partition_is_roughly_balanced(g in graph_strategy(), k in 2usize..5) {
        prop_assume!(g.len() >= k * 4);
        let p = partition_kway(&g, k, &PartitionOptions::default());
        prop_assert!(p.imbalance(&g) <= 2.0, "imbalance {}", p.imbalance(&g));
    }

    /// The partitioner never does worse than the worst contiguous chunking
    /// on the path backbone... but random extra edges break that bound, so
    /// instead check against the trivial upper bound: cutting every edge.
    #[test]
    fn edgecut_below_total(g in graph_strategy(), k in 2usize..6) {
        let p = partition_kway(&g, k, &PartitionOptions::default());
        prop_assert!(p.edgecut <= g.total_edge_weight());
    }

    /// part_weights sums to the graph's total vertex weight.
    #[test]
    fn part_weights_conserve(g in graph_strategy(), k in 1usize..6) {
        let p = partition_kway(&g, k, &PartitionOptions::default());
        let sum: u64 = p.part_weights(&g).iter().sum();
        prop_assert_eq!(sum, g.total_vertex_weight());
    }
}
