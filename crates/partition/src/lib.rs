//! Multilevel k-way graph partitioner — the METIS substitute of the Cache
//! Automaton reproduction.
//!
//! The paper's compiler uses METIS [Karypis & Kumar 1998] to split oversized
//! connected components across SRAM partitions "such that the number of
//! outgoing state transitions between any two partitions is minimized"
//! (§3.2). This crate re-implements the same multilevel recipe from scratch:
//!
//! 1. **Coarsening** — heavy-edge matching collapses the graph level by
//!    level ([`coarsen`]).
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph, several seeds, best cut kept.
//! 3. **Uncoarsening** — the partition is projected back up, with
//!    Fiduccia–Mattheyses boundary refinement at every level ([`refine`]).
//! 4. **k-way** — recursive bisection with proportional targets
//!    ([`partition_kway`]).
//!
//! Partitions are deterministic for a fixed [`PartitionOptions::seed`], so
//! compiled placements (and hence the paper tables) are reproducible.
//!
//! # Examples
//!
//! ```
//! use ca_partition::{Graph, partition_kway, PartitionOptions};
//!
//! // A 4x4 grid into 4 balanced tiles.
//! let mut edges = Vec::new();
//! for y in 0..4u32 {
//!     for x in 0..4u32 {
//!         let v = y * 4 + x;
//!         if x < 3 { edges.push((v, v + 1, 1)); }
//!         if y < 3 { edges.push((v, v + 4, 1)); }
//!     }
//! }
//! let g = Graph::from_edges(16, &edges);
//! let p = partition_kway(&g, 4, &PartitionOptions::default());
//! assert!(p.imbalance(&g) <= 1.25);
//! assert!(p.edgecut <= 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coarsen;
pub mod graph;
pub mod kway;
pub mod refine;
pub mod rng;

pub use graph::Graph;
pub use kway::{bisect, partition_kway, PartitionOptions, Partitioning};
pub use refine::{fm_refine, refine_kway};
