//! Weighted undirected graphs in CSR form.

use std::collections::BTreeMap;
use std::fmt;

/// An undirected graph with vertex and edge weights, stored in compressed
/// sparse row (CSR) form — the same representation METIS uses.
///
/// Parallel edges given to the builder are merged by summing their weights;
/// self-loops are dropped (they can never be cut).
///
/// # Examples
///
/// ```
/// use ca_partition::Graph;
///
/// // A triangle plus a pendant vertex.
/// let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 5)]);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert_eq!(g.total_edge_weight(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<u32>,
    adj: Vec<u32>,
    ewgt: Vec<u32>,
    vwgt: Vec<u32>,
}

impl Graph {
    /// Builds a graph with `n` vertices of unit weight from an undirected
    /// edge list `(u, v, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> Graph {
        Graph::from_weighted(vec![1; n], edges)
    }

    /// Builds a graph with explicit vertex weights from an undirected edge
    /// list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_weighted(vwgt: Vec<u32>, edges: &[(u32, u32, u32)]) -> Graph {
        let n = vwgt.len();
        // merge parallel edges; BTreeMap keeps construction deterministic
        let mut merged: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for &(u, v, w) in edges {
            assert!((u as usize) < n, "edge endpoint {u} out of range");
            assert!((v as usize) < n, "edge endpoint {v} out of range");
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            *merged.entry(key).or_insert(0) += w;
        }
        let mut degree = vec![0u32; n];
        for &(u, v) in merged.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0u32);
        for d in &degree {
            xadj.push(xadj.last().unwrap() + d);
        }
        let m2 = *xadj.last().unwrap() as usize;
        let mut adj = vec![0u32; m2];
        let mut ewgt = vec![0u32; m2];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for (&(u, v), &w) in &merged {
            let cu = cursor[u as usize] as usize;
            adj[cu] = v;
            ewgt[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj[cv] = u;
            ewgt[cv] = w;
            cursor[v as usize] += 1;
        }
        Graph { xadj, adj, ewgt, vwgt }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vwgt.len()
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree (distinct neighbors) of `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.xadj[v as usize + 1] - self.xadj[v as usize]) as usize
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[v as usize] as usize;
        let hi = self.xadj[v as usize + 1] as usize;
        self.adj[lo..hi].iter().copied().zip(self.ewgt[lo..hi].iter().copied())
    }

    /// Weight of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> u32 {
        self.vwgt[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Sum of all undirected edge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.ewgt.iter().map(|&w| w as u64).sum::<u64>() / 2
    }

    /// Sum of edge weights crossing parts under `assignment` (each edge
    /// counted once).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.len()`.
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.len(), "assignment length mismatch");
        let mut cut = 0u64;
        for v in 0..self.len() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u as usize] != assignment[v as usize] {
                    cut += w as u64;
                }
            }
        }
        cut
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph({} vertices, {} edges)", self.len(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_structure() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        let n: Vec<(u32, u32)> = g.neighbors(1).collect();
        assert!(n.contains(&(0, 2)) && n.contains(&(2, 3)));
        assert_eq!(g.total_edge_weight(), 5);
    }

    #[test]
    fn parallel_edges_merge_and_loops_drop() {
        let g = Graph::from_edges(2, &[(0, 1, 1), (1, 0, 4), (0, 0, 9)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 5)));
    }

    #[test]
    fn vertex_weights() {
        let g = Graph::from_weighted(vec![3, 5], &[(0, 1, 1)]);
        assert_eq!(g.vertex_weight(1), 5);
        assert_eq!(g.total_vertex_weight(), 8);
    }

    #[test]
    fn edge_cut_counts_once() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 10), (2, 3, 1)]);
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 10);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        Graph::from_edges(2, &[(0, 5, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(g.is_empty());
        assert_eq!(g.edge_cut(&[]), 0);
    }
}
