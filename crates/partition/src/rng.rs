//! Deterministic xorshift RNG.
//!
//! Partitioning must be reproducible (the compiler's placements feed the
//! paper's tables), so we use a tiny self-contained generator with an
//! explicit seed instead of an external RNG.

/// xorshift64* generator.
///
/// The seed it was created with is recorded and reported by
/// [`XorShift::seed`], so every consumer (partitioner, compiler) can
/// surface the exact randomness that produced a result — the provenance
/// half of "identical (NFA, options, seed) inputs produce byte-identical
/// bitstreams".
#[derive(Debug, Clone)]
pub struct XorShift {
    seed: u64,
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> XorShift {
        XorShift { seed, state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// The seed this generator was created with (before zero-remapping).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_eq!(r.seed(), 0, "the recorded seed is the one given, not the remap");
    }

    #[test]
    fn seed_is_recorded() {
        let mut r = XorShift::new(0xca);
        let _ = r.next_u64();
        assert_eq!(r.seed(), 0xca, "drawing values must not change the recorded seed");
    }

    #[test]
    fn below_in_range() {
        let mut r = XorShift::new(7);
        for _ in 0..100 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = XorShift::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }
}
