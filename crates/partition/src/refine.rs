//! Fiduccia–Mattheyses boundary refinement for bisections.

use crate::graph::Graph;
use std::collections::BinaryHeap;

/// Gain of moving `v` to the other side: external minus internal edge
/// weight.
fn gain(g: &Graph, part: &[u8], v: u32) -> i64 {
    let p = part[v as usize];
    let mut s = 0i64;
    for (u, w) in g.neighbors(v) {
        if part[u as usize] != p {
            s += w as i64;
        } else {
            s -= w as i64;
        }
    }
    s
}

/// One FM refinement run: hill-climbing move sequences with rollback to the
/// best prefix, repeated until a pass yields no improvement.
///
/// `target_w0` is the desired weight of side 0; side weights may deviate by
/// a factor of `1 + eps`. Returns the final edge cut.
///
/// # Panics
///
/// Panics if `part.len() != g.len()`.
pub fn fm_refine(g: &Graph, part: &mut [u8], target_w0: u64, eps: f64, max_passes: usize) -> u64 {
    assert_eq!(part.len(), g.len(), "partition length mismatch");
    let n = g.len();
    if n == 0 {
        return 0;
    }
    let total: u64 = g.total_vertex_weight();
    let target = [target_w0, total - target_w0];
    let max_load = |side: usize| -> u64 {
        let slack = (target[side] as f64 * eps).ceil() as u64;
        // always leave room for at least the heaviest single vertex
        target[side] + slack.max(1)
    };

    let mut weights = [0u64; 2];
    for v in 0..n as u32 {
        weights[part[v as usize] as usize] += g.vertex_weight(v) as u64;
    }
    let mut cut = g.edge_cut(&part.iter().map(|&p| p as u32).collect::<Vec<_>>());

    for _pass in 0..max_passes {
        let pass_start_cut = cut;
        let mut locked = vec![false; n];
        // (gain, vertex); lazy invalidation via recomputation on pop.
        let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
        for v in 0..n as u32 {
            // seed with boundary vertices only (others enter via updates)
            if g.neighbors(v).any(|(u, _)| part[u as usize] != part[v as usize]) {
                heap.push((gain(g, part, v), v));
            }
        }
        // move journal for rollback
        let mut moves: Vec<u32> = Vec::new();
        let mut best_cut = cut;
        let mut best_len = 0usize;
        let mut cur_cut = cut;
        let mut cur_weights = weights;

        while let Some((gain_claimed, v)) = heap.pop() {
            if locked[v as usize] {
                continue;
            }
            let actual = gain(g, part, v);
            if actual != gain_claimed {
                heap.push((actual, v));
                continue;
            }
            let from = part[v as usize] as usize;
            let to = 1 - from;
            let vw = g.vertex_weight(v) as u64;
            if cur_weights[to] + vw > max_load(to) {
                continue; // would overfill the destination; drop this move
            }
            // apply
            locked[v as usize] = true;
            part[v as usize] = to as u8;
            cur_weights[from] -= vw;
            cur_weights[to] += vw;
            cur_cut = (cur_cut as i64 - actual) as u64;
            moves.push(v);
            if cur_cut < best_cut
                || (cur_cut == best_cut
                    && balance_err(cur_weights, target) < balance_err(weights, target))
            {
                best_cut = cur_cut;
                best_len = moves.len();
                weights = cur_weights;
            }
            for (u, _) in g.neighbors(v) {
                if !locked[u as usize] {
                    heap.push((gain(g, part, u), u));
                }
            }
            if moves.len() >= n {
                break;
            }
        }
        // rollback past the best prefix
        for &v in &moves[best_len..] {
            part[v as usize] = 1 - part[v as usize];
        }
        cut = best_cut;
        if cut >= pass_start_cut {
            break;
        }
    }
    cut
}

fn balance_err(weights: [u64; 2], target: [u64; 2]) -> u64 {
    weights[0].abs_diff(target[0]) + weights[1].abs_diff(target[1])
}

/// Direct k-way refinement (the final METIS phase): greedy boundary moves
/// between arbitrary part pairs after recursive bisection, which can
/// recover cut lost to the bisection hierarchy.
///
/// Moves a vertex only when it strictly improves the cut and keeps every
/// part within `(1 + eps)` of the average weight. Returns the final cut.
///
/// # Panics
///
/// Panics if `assignment.len() != g.len()` or an assignment is `>= k`.
pub fn refine_kway(
    g: &Graph,
    assignment: &mut [u32],
    k: usize,
    eps: f64,
    max_passes: usize,
) -> u64 {
    assert_eq!(assignment.len(), g.len(), "assignment length mismatch");
    assert!(assignment.iter().all(|&a| (a as usize) < k), "assignment out of range");
    if g.is_empty() || k < 2 {
        return 0;
    }
    let total = g.total_vertex_weight();
    let avg = total as f64 / k as f64;
    let max_load = (avg * (1.0 + eps)).ceil() as u64;
    let mut weights = vec![0u64; k];
    for v in 0..g.len() as u32 {
        weights[assignment[v as usize] as usize] += g.vertex_weight(v) as u64;
    }
    let assignment_u32: Vec<u32> = assignment.to_vec();
    let mut cut = g.edge_cut(&assignment_u32);

    let mut conn = vec![0i64; k]; // scratch: connectivity of v to each part
    for _pass in 0..max_passes {
        let mut improved = false;
        for v in 0..g.len() as u32 {
            let from = assignment[v as usize] as usize;
            // connectivity to each adjacent part
            let mut touched: Vec<usize> = Vec::new();
            for (u, w) in g.neighbors(v) {
                let p = assignment[u as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += w as i64;
            }
            let internal = conn[from];
            let vw = g.vertex_weight(v) as u64;
            let mut best: Option<(i64, usize)> = None; // (gain, part)
            for &p in &touched {
                if p == from || weights[p] + vw > max_load {
                    continue;
                }
                let gain = conn[p] - internal;
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, p));
                }
            }
            for &p in &touched {
                conn[p] = 0; // reset scratch
            }
            if let Some((gain, to)) = best {
                assignment[v as usize] = to as u32;
                weights[from] -= vw;
                weights[to] += vw;
                cut = (cut as i64 - gain) as u64;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cut, g.edge_cut(assignment));
    cut
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut_of(g: &Graph, part: &[u8]) -> u64 {
        g.edge_cut(&part.iter().map(|&p| p as u32).collect::<Vec<_>>())
    }

    /// Two 4-cliques joined by one light edge: optimal bisection cuts 1.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b, 10));
                edges.push((a + 4, b + 4, 10));
            }
        }
        edges.push((3, 4, 1));
        Graph::from_edges(8, &edges)
    }

    #[test]
    fn improves_bad_bisection() {
        let g = two_cliques();
        // interleaved start: terrible cut
        let mut part = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
        let before = cut_of(&g, &part);
        let after = fm_refine(&g, &mut part, 4, 0.10, 8);
        assert!(after < before);
        assert_eq!(after, 1, "should find the clique split");
        assert_eq!(after, cut_of(&g, &part), "returned cut must match state");
        // each clique fully on one side
        assert!(part[..4].iter().all(|&p| p == part[0]));
        assert!(part[4..].iter().all(|&p| p == part[4]));
    }

    #[test]
    fn respects_balance() {
        // star: center + 8 leaves; moving everything to one side would zero
        // the cut but break balance.
        let edges: Vec<(u32, u32, u32)> = (1..9u32).map(|i| (0, i, 1)).collect();
        let g = Graph::from_edges(9, &edges);
        let mut part: Vec<u8> = (0..9).map(|i| (i % 2) as u8).collect();
        fm_refine(&g, &mut part, 4, 0.25, 8);
        let w0: u64 = part.iter().filter(|&&p| p == 0).count() as u64;
        assert!((2..=7).contains(&w0), "balance violated: {w0}/9");
    }

    #[test]
    fn optimal_input_untouched() {
        let g = two_cliques();
        let mut part = vec![0u8, 0, 0, 0, 1, 1, 1, 1];
        let cut = fm_refine(&g, &mut part, 4, 0.10, 8);
        assert_eq!(cut, 1);
        assert_eq!(part, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]);
        let mut part: Vec<u8> = vec![];
        assert_eq!(fm_refine(&g, &mut part, 0, 0.1, 4), 0);
    }

    #[test]
    fn kway_refinement_improves_bad_assignment() {
        // 4 cliques of 4; interleaved assignment is terrible.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 4;
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((b + i, b + j, 5));
                }
            }
        }
        // light ring between cliques
        for c in 0..4u32 {
            edges.push((c * 4, ((c + 1) % 4) * 4, 1));
        }
        let g = Graph::from_edges(16, &edges);
        let mut assignment: Vec<u32> = (0..16).map(|v| v % 4).collect();
        let before = g.edge_cut(&assignment);
        let after = refine_kway(&g, &mut assignment, 4, 0.10, 8);
        assert!(after < before, "{after} !< {before}");
        assert_eq!(after, 4, "should recover the clique partition (ring cut only)");
        // balance: 4 vertices per part
        let mut counts = [0usize; 4];
        for &a in &assignment {
            counts[a as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn kway_refinement_never_worsens() {
        let mut edges = Vec::new();
        for i in 0..40u32 {
            edges.push((i, (i * 7 + 1) % 40, 1 + i % 3));
            edges.push((i, (i * 11 + 5) % 40, 1));
        }
        let g = Graph::from_edges(40, &edges);
        for k in [2usize, 3, 5] {
            let mut assignment: Vec<u32> = (0..40).map(|v| (v as usize % k) as u32).collect();
            let before = g.edge_cut(&assignment);
            let after = refine_kway(&g, &mut assignment, k, 0.25, 6);
            assert!(after <= before, "k={k}: {after} > {before}");
            assert!(assignment.iter().all(|&a| (a as usize) < k));
        }
    }

    #[test]
    fn kway_refinement_respects_balance() {
        // star graph: refinement must not pile everything on one part
        let edges: Vec<(u32, u32, u32)> = (1..12u32).map(|i| (0, i, 1)).collect();
        let g = Graph::from_edges(12, &edges);
        let mut assignment: Vec<u32> = (0..12).map(|v| v % 3).collect();
        refine_kway(&g, &mut assignment, 3, 0.10, 8);
        let mut counts = [0usize; 3];
        for &a in &assignment {
            counts[a as usize] += 1;
        }
        // max load = ceil(4 * 1.1) = 5
        assert!(counts.iter().all(|&c| c <= 5), "{counts:?}");
    }

    #[test]
    fn never_worsens() {
        // random-ish graph; refinement output must be <= input cut.
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((i, (i * 7 + 3) % 30, 1 + i % 4));
            edges.push((i, (i * 13 + 1) % 30, 1));
        }
        let g = Graph::from_edges(30, &edges);
        let mut part: Vec<u8> = (0..30).map(|i| ((i / 3) % 2) as u8).collect();
        let before = cut_of(&g, &part);
        let after = fm_refine(&g, &mut part, 15, 0.15, 8);
        assert!(after <= before);
        assert_eq!(after, cut_of(&g, &part));
    }
}
