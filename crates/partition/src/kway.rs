//! Multilevel bisection and recursive k-way partitioning.

use crate::coarsen::coarsen_to;
use crate::graph::Graph;
use crate::refine::fm_refine;
use crate::rng::XorShift;

/// Tuning knobs for [`partition_kway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionOptions {
    /// Allowed part-weight imbalance (METIS default flavour: 0.03–0.10).
    pub epsilon: f64,
    /// RNG seed; identical seeds give identical partitions.
    pub seed: u64,
    /// Coarsening stops below this many vertices.
    pub coarsen_to: usize,
    /// Greedy-growing attempts at the coarsest level.
    pub initial_tries: usize,
    /// FM passes per level.
    pub refine_passes: usize,
}

impl Default for PartitionOptions {
    fn default() -> PartitionOptions {
        PartitionOptions {
            epsilon: 0.05,
            seed: 0x5eed,
            coarsen_to: 48,
            initial_tries: 4,
            refine_passes: 6,
        }
    }
}

/// The result of a k-way partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` = part of vertex `v`, in `0..k`.
    pub assignment: Vec<u32>,
    /// Number of parts requested.
    pub k: usize,
    /// Total weight of cut edges.
    pub edgecut: u64,
    /// The RNG seed that produced this partitioning (recorded provenance:
    /// rerunning with the same graph, `k` and seed reproduces it exactly).
    pub seed: u64,
}

impl Partitioning {
    /// Vertices of each part.
    pub fn parts(&self) -> Vec<Vec<u32>> {
        let mut parts = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            parts[p as usize].push(v as u32);
        }
        parts
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, g: &Graph) -> Vec<u64> {
        let mut w = vec![0u64; self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            w[p as usize] += g.vertex_weight(v as u32) as u64;
        }
        w
    }

    /// Maximum part weight divided by the ideal (total/k); 1.0 = perfectly
    /// balanced.
    pub fn imbalance(&self, g: &Graph) -> f64 {
        if self.k == 0 || g.is_empty() {
            return 1.0;
        }
        let ideal = g.total_vertex_weight() as f64 / self.k as f64;
        let max = self.part_weights(g).into_iter().max().unwrap_or(0) as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// Greedy-growing initial bisection at the coarsest level: BFS-grow side 0
/// from a seed vertex until it reaches the target weight.
fn grow_bisection(g: &Graph, target_w0: u64, seed_vertex: u32) -> Vec<u8> {
    let n = g.len();
    let mut part = vec![1u8; n];
    if n == 0 || target_w0 == 0 {
        return part;
    }
    let mut w0 = 0u64;
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    let mut cursor = seed_vertex;
    loop {
        if !visited[cursor as usize] {
            visited[cursor as usize] = true;
            queue.push_back(cursor);
        }
        while let Some(v) = queue.pop_front() {
            if w0 >= target_w0 {
                return part;
            }
            part[v as usize] = 0;
            w0 += g.vertex_weight(v) as u64;
            for (u, _) in g.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        if w0 >= target_w0 {
            return part;
        }
        // disconnected: jump to the next unvisited vertex
        match (0..n as u32).find(|&v| !visited[v as usize]) {
            Some(v) => cursor = v,
            None => return part,
        }
    }
}

/// Multilevel bisection targeting `target_frac` of the total weight on
/// side 0. Returns the side (0/1) of every vertex.
pub fn bisect(g: &Graph, target_frac: f64, opts: &PartitionOptions) -> Vec<u8> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let total = g.total_vertex_weight();
    let target_w0 = ((total as f64) * target_frac).round().max(0.0) as u64;
    let mut rng = XorShift::new(opts.seed);

    let levels = coarsen_to(g, opts.coarsen_to.max(2), &mut rng);
    let coarsest: &Graph = levels.last().map(|l| &l.graph).unwrap_or(g);

    // Several greedy-grown starts; keep the best refined cut.
    let mut best: Option<(u64, Vec<u8>)> = None;
    for _try in 0..opts.initial_tries.max(1) {
        let seed_vertex = rng.below(coarsest.len()) as u32;
        let mut part = grow_bisection(coarsest, target_w0, seed_vertex);
        let cut = fm_refine(coarsest, &mut part, target_w0, opts.epsilon, opts.refine_passes);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, part));
        }
    }
    let (_, mut part) = best.expect("at least one try");

    // Project through the hierarchy, refining at each finer level.
    for level_idx in (0..levels.len()).rev() {
        let fine_graph: &Graph = if level_idx == 0 { g } else { &levels[level_idx - 1].graph };
        let map = &levels[level_idx].map;
        let mut fine_part = vec![0u8; fine_graph.len()];
        for v in 0..fine_graph.len() {
            fine_part[v] = part[map[v] as usize];
        }
        fm_refine(fine_graph, &mut fine_part, target_w0, opts.epsilon, opts.refine_passes);
        part = fine_part;
    }
    if levels.is_empty() {
        // graph was already small: part is for g itself
        debug_assert_eq!(part.len(), n);
    }
    part
}

/// Extracts the subgraph induced by `part[v] == side`, returning the
/// subgraph and the original ids of its vertices.
fn induced_subgraph(g: &Graph, part: &[u8], side: u8) -> (Graph, Vec<u32>) {
    let mut ids: Vec<u32> = Vec::new();
    let mut new_id = vec![u32::MAX; g.len()];
    for v in 0..g.len() as u32 {
        if part[v as usize] == side {
            new_id[v as usize] = ids.len() as u32;
            ids.push(v);
        }
    }
    let vwgt: Vec<u32> = ids.iter().map(|&v| g.vertex_weight(v)).collect();
    let mut edges = Vec::new();
    for (new_v, &v) in ids.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let nu = new_id[u as usize];
            if nu != u32::MAX && (new_v as u32) < nu {
                edges.push((new_v as u32, nu, w));
            }
        }
    }
    (Graph::from_weighted(vwgt, &edges), ids)
}

/// Partitions `g` into `k` balanced parts minimizing the edge cut
/// (recursive multilevel bisection — the METIS recipe).
///
/// Parts are load-balanced to within `opts.epsilon`; every vertex is
/// assigned. `k = 1` returns the trivial partition; `k >= n` degenerates to
/// one vertex per part (extra parts empty).
///
/// # Examples
///
/// ```
/// use ca_partition::{Graph, partition_kway, PartitionOptions};
///
/// // Two triangles joined by one edge split cleanly in two.
/// let g = Graph::from_edges(6, &[
///     (0,1,5),(1,2,5),(0,2,5), (3,4,5),(4,5,5),(3,5,5), (2,3,1),
/// ]);
/// let p = partition_kway(&g, 2, &PartitionOptions::default());
/// assert_eq!(p.edgecut, 1);
/// assert_ne!(p.assignment[0], p.assignment[5]);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` on a non-empty graph.
pub fn partition_kway(g: &Graph, k: usize, opts: &PartitionOptions) -> Partitioning {
    if g.is_empty() {
        return Partitioning { assignment: Vec::new(), k, edgecut: 0, seed: opts.seed };
    }
    assert!(k > 0, "cannot partition into zero parts");
    let mut assignment = vec![0u32; g.len()];
    recurse(g, &(0..g.len() as u32).collect::<Vec<_>>(), k, 0, opts, &mut assignment, 0);
    // Final direct k-way refinement (METIS's last phase): boundary moves
    // across arbitrary part pairs recover cut the bisection tree cannot see.
    let edgecut = if k >= 2 {
        crate::refine::refine_kway(g, &mut assignment, k, opts.epsilon, opts.refine_passes)
    } else {
        g.edge_cut(&assignment)
    };
    Partitioning { assignment, k, edgecut, seed: opts.seed }
}

fn recurse(
    g: &Graph,
    original_ids: &[u32],
    k: usize,
    part_offset: u32,
    opts: &PartitionOptions,
    assignment: &mut [u32],
    depth: u64,
) {
    if k <= 1 || g.len() <= 1 {
        for (v, &orig) in original_ids.iter().enumerate() {
            // spread leftover vertices round-robin if k > 1 but graph tiny
            let p = if k <= 1 { 0 } else { (v % k) as u32 };
            assignment[orig as usize] = part_offset + p;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let frac = k0 as f64 / k as f64;
    // vary the seed per recursion branch for independent randomness
    let branch_opts = PartitionOptions {
        seed: opts.seed.wrapping_mul(0x100000001b3).wrapping_add(depth + 1),
        ..*opts
    };
    let side = bisect(g, frac, &branch_opts);
    let (g0, ids0) = induced_subgraph(g, &side, 0);
    let (g1, ids1) = induced_subgraph(g, &side, 1);
    let orig0: Vec<u32> = ids0.iter().map(|&v| original_ids[v as usize]).collect();
    let orig1: Vec<u32> = ids1.iter().map(|&v| original_ids[v as usize]).collect();
    recurse(&g0, &orig0, k0, part_offset, opts, assignment, depth * 2 + 1);
    recurse(&g1, &orig1, k1, part_offset + k0 as u32, opts, assignment, depth * 2 + 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        Graph::from_edges(w * h, &edges)
    }

    #[test]
    fn bisect_two_cliques() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in a + 1..8 {
                edges.push((a, b, 3));
                edges.push((a + 8, b + 8, 3));
            }
        }
        edges.push((0, 8, 1));
        let g = Graph::from_edges(16, &edges);
        let p = partition_kway(&g, 2, &PartitionOptions::default());
        assert_eq!(p.edgecut, 1);
        assert!(p.imbalance(&g) <= 1.05);
    }

    #[test]
    fn kway_grid_quality_and_balance() {
        let g = grid(16, 16); // 256 vertices
        let p = partition_kway(&g, 8, &PartitionOptions::default());
        assert_eq!(p.assignment.len(), 256);
        assert!(p.assignment.iter().all(|&a| a < 8));
        // every part non-empty and balanced
        let weights = p.part_weights(&g);
        assert!(weights.iter().all(|&w| w > 0));
        assert!(p.imbalance(&g) <= 1.20, "imbalance {}", p.imbalance(&g));
        // a random assignment on a 16x16 grid cuts ~ 7/8 of 480 edges; a
        // decent partitioner should do far better than half of them.
        assert!(p.edgecut < 200, "edgecut {}", p.edgecut);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(10, 10);
        let a = partition_kway(&g, 4, &PartitionOptions::default());
        let b = partition_kway(&g, 4, &PartitionOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.seed, PartitionOptions::default().seed, "result records its seed");
        let other =
            partition_kway(&g, 4, &PartitionOptions { seed: 99, ..PartitionOptions::default() });
        assert_eq!(other.seed, 99);
    }

    #[test]
    fn k_equals_one() {
        let g = grid(4, 4);
        let p = partition_kway(&g, 1, &PartitionOptions::default());
        assert!(p.assignment.iter().all(|&a| a == 0));
        assert_eq!(p.edgecut, 0);
    }

    #[test]
    fn k_exceeding_vertices() {
        let g = Graph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let p = partition_kway(&g, 8, &PartitionOptions::default());
        assert_eq!(p.assignment.len(), 3);
        assert!(p.assignment.iter().all(|&a| a < 8));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let p = partition_kway(&g, 4, &PartitionOptions::default());
        assert!(p.assignment.is_empty());
        assert_eq!(p.edgecut, 0);
    }

    #[test]
    fn disconnected_components_balanced() {
        // 8 disconnected triangles; 4 parts should each get ~2 triangles
        // and cut nothing.
        let mut edges = Vec::new();
        for t in 0..8u32 {
            let b = t * 3;
            edges.push((b, b + 1, 1));
            edges.push((b + 1, b + 2, 1));
            edges.push((b, b + 2, 1));
        }
        let g = Graph::from_edges(24, &edges);
        let p = partition_kway(&g, 4, &PartitionOptions::default());
        assert_eq!(p.edgecut, 0, "no triangle should be split");
        assert!(p.imbalance(&g) <= 1.35);
    }

    #[test]
    fn weighted_vertices_respected() {
        // one heavy vertex = weight of the other five combined
        let g = Graph::from_weighted(
            vec![5, 1, 1, 1, 1, 1],
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)],
        );
        let p = partition_kway(&g, 2, &PartitionOptions::default());
        let w = p.part_weights(&g);
        assert_eq!(w.iter().sum::<u64>(), 10);
        assert!(w.iter().all(|&x| (4..=6).contains(&x)), "weights {w:?}");
    }

    #[test]
    fn parts_listing_consistent() {
        let g = grid(6, 6);
        let p = partition_kway(&g, 3, &PartitionOptions::default());
        let parts = p.parts();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 36);
        for (i, part) in parts.iter().enumerate() {
            for &v in part {
                assert_eq!(p.assignment[v as usize], i as u32);
            }
        }
    }
}
