//! Coarsening via heavy-edge matching (the METIS "HEM" scheme).

use crate::graph::Graph;
use crate::rng::XorShift;

/// One level of coarsening: the coarse graph and the fine→coarse vertex map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarsened graph.
    pub graph: Graph,
    /// `map[fine_vertex]` = coarse vertex it collapsed into.
    pub map: Vec<u32>,
}

/// Collapses a maximal heavy-edge matching into coarse vertices.
///
/// Vertices are visited in a seeded random order; each unmatched vertex is
/// matched with its unmatched neighbor of maximum edge weight (ties broken
/// by lower id), or left alone if all neighbors are matched. Coarse vertex
/// weights are the sums of their constituents; parallel coarse edges merge
/// by weight.
pub fn coarsen_once(g: &Graph, rng: &mut XorShift) -> CoarseLevel {
    let n = g.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut mate: Vec<u32> = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (weight, neighbor)
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == u32::MAX && u != v {
                let better = match best {
                    None => true,
                    Some((bw, bu)) => w > bw || (w == bw && u < bu),
                };
                if better {
                    best = Some((w, u));
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }
    // assign coarse ids
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        map[v as usize] = next;
        let m = mate[v as usize];
        if m != v && m != u32::MAX {
            map[m as usize] = next;
        }
        next += 1;
    }
    // build coarse graph
    let coarse_n = next as usize;
    let mut vwgt = vec![0u32; coarse_n];
    for v in 0..n as u32 {
        vwgt[map[v as usize] as usize] += g.vertex_weight(v);
    }
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(g.edge_count());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize];
            if cv < cu {
                edges.push((cv, cu, w));
            }
        }
    }
    CoarseLevel { graph: Graph::from_weighted(vwgt, &edges), map }
}

/// Full coarsening: repeat [`coarsen_once`] until the graph is small or the
/// reduction stalls. Returns the hierarchy from finest to coarsest.
pub fn coarsen_to(g: &Graph, stop_at: usize, rng: &mut XorShift) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    while current.len() > stop_at {
        let level = coarsen_once(&current, rng);
        // Stall guard: matching on star-like graphs can stop shrinking.
        if level.graph.len() as f64 > current.len() as f64 * 0.95 {
            break;
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn one_round_roughly_halves() {
        let g = path_graph(64);
        let mut rng = XorShift::new(7);
        let level = coarsen_once(&g, &mut rng);
        assert!(level.graph.len() <= 40, "got {}", level.graph.len());
        assert!(level.graph.len() >= 32);
        // weights conserved
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn map_is_total_and_in_range() {
        let g = path_graph(33);
        let level = coarsen_once(&g, &mut XorShift::new(3));
        assert_eq!(level.map.len(), 33);
        for &c in &level.map {
            assert!((c as usize) < level.graph.len());
        }
    }

    #[test]
    fn heavy_edges_preferred() {
        // 0 -10- 1 and 2 -10- 3, cross edges weight 1: whichever vertex is
        // visited first takes its heavy mate, leaving the other heavy pair
        // intact — so heavy pairs always collapse regardless of order.
        let g = Graph::from_edges(4, &[(0, 1, 10), (2, 3, 10), (0, 2, 1), (1, 3, 1)]);
        for seed in 0..8 {
            let level = coarsen_once(&g, &mut XorShift::new(seed));
            assert_eq!(level.map[0], level.map[1], "seed {seed}");
            assert_eq!(level.map[2], level.map[3], "seed {seed}");
        }
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = path_graph(256);
        let levels = coarsen_to(&g, 32, &mut XorShift::new(1));
        assert!(!levels.is_empty());
        assert!(levels.last().unwrap().graph.len() <= 64);
        // monotone shrinking
        let mut prev = g.len();
        for l in &levels {
            assert!(l.graph.len() < prev);
            prev = l.graph.len();
        }
    }

    #[test]
    fn edgeless_graph_coarsens_to_singletons() {
        let g = Graph::from_edges(10, &[]);
        let level = coarsen_once(&g, &mut XorShift::new(5));
        assert_eq!(level.graph.len(), 10); // nothing to match
    }
}
