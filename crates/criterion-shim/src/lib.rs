//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build container has no crates.io access. This shim keeps `cargo
//! bench` working: each benchmark is timed with `std::time::Instant`
//! (warm-up, then a fixed sample count) and the mean per-iteration time and
//! optional byte throughput are printed. No statistical analysis, outlier
//! detection or HTML reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: a few warm-up calls, then `samples` measured calls.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn print_result(group: Option<&str>, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
            let gbps = bytes as f64 * 8.0 / mean.as_secs_f64() / 1e9;
            format!("  {gbps:>8.3} Gb/s")
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let meps = n as f64 / mean.as_secs_f64() / 1e6;
            format!("  {meps:>8.3} Melem/s")
        }
        _ => String::new(),
    };
    println!("{label:<48} {:>12.3?}/iter{rate}", mean);
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Times one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { samples, mean: Duration::ZERO };
    f(&mut bencher);
    print_result(group, id, bencher.mean, throughput);
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured-iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Times one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (separator line, for parity with criterion's report).
    pub fn finish(self) {
        println!();
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3).throughput(Throughput::Bytes(1024));
        group.bench_function(BenchmarkId::new("sum", "1k"), |b| {
            b.iter(|| (0..1024u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("len", "vec"), &vec![1, 2, 3], |b, v| {
            b.iter(|| v.len())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
