//! Nibble (4-bit) symbol transformation — the Impala-style extension.
//!
//! Cache Automaton's follow-on work (eAP, Impala) squeezes the 256-row STE
//! columns to 16 rows by processing 4-bit symbols: each 8-bit input symbol
//! becomes two nibbles and every state splits into a high-nibble/low-nibble
//! pair. Shorter columns mean shallower SRAM reads and a faster state-match
//! stage — at the cost of state inflation when a state's symbol class is
//! not a "rectangle" (high-set × low-set).
//!
//! This module implements the transform as a pure automaton rewrite:
//!
//! * [`to_nibble_nfa`] splits every state into rectangle pairs;
//! * [`to_nibble_stream`] expands a byte stream into the nibble stream;
//! * positions map back via [`byte_position`].
//!
//! Phase discipline: high-nibble symbols are encoded as `0..16` and
//! low-nibble symbols as `16..32`, so a state can never fire in the wrong
//! phase (the hardware gets this for free from its double-rate clock; the
//! encoding makes it explicit for software execution).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ca_automata::regex::compile_pattern;
//! use ca_automata::stride::{to_nibble_nfa, to_nibble_stream, byte_position};
//! use ca_automata::engine::{Engine, SparseEngine};
//!
//! let nfa = compile_pattern("ca[rt]")?;
//! let nibble = to_nibble_nfa(&nfa);
//! let hits = SparseEngine::new(&nibble).run(&to_nibble_stream(b"a cat"));
//! assert_eq!(byte_position(hits[0].pos), 4); // 't' at byte 4
//! # Ok(())
//! # }
//! ```

use crate::charclass::CharClass;
use crate::homogeneous::{HomNfa, StartKind, StateId};

/// Offset of low-nibble symbols in the transformed alphabet.
pub const LO_PHASE: u8 = 16;

/// Expands a byte stream into the phase-encoded nibble stream
/// (`hi, 16 + lo` per byte).
pub fn to_nibble_stream(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 2);
    for &b in input {
        out.push(b >> 4);
        out.push(LO_PHASE + (b & 0x0f));
    }
    out
}

/// Maps a match position in the nibble stream back to the byte offset
/// (matches complete on low nibbles, at odd positions).
pub fn byte_position(nibble_pos: u64) -> u64 {
    nibble_pos / 2
}

/// A state's symbol class decomposed into rectangles: pairs of
/// (high-nibble set, low-nibble set) whose cross products partition the
/// class.
fn rectangles(class: &CharClass) -> Vec<(CharClass, CharClass)> {
    // group high nibbles by their low-nibble set
    let mut groups: Vec<(u16, CharClass)> = Vec::new(); // (lo bitmap, hi set)
    for hi in 0u8..16 {
        let mut lo_bits = 0u16;
        for lo in 0u8..16 {
            if class.contains(hi << 4 | lo) {
                lo_bits |= 1 << lo;
            }
        }
        if lo_bits == 0 {
            continue;
        }
        match groups.iter_mut().find(|(bits, _)| *bits == lo_bits) {
            Some((_, his)) => {
                his.insert(hi);
            }
            None => groups.push((lo_bits, CharClass::byte(hi))),
        }
    }
    groups
        .into_iter()
        .map(|(lo_bits, his)| {
            let mut los = CharClass::new();
            for lo in 0u8..16 {
                if lo_bits >> lo & 1 == 1 {
                    los.insert(LO_PHASE + lo);
                }
            }
            (his, los)
        })
        .collect()
}

/// Statistics of a nibble transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideStats {
    /// States before.
    pub states_before: usize,
    /// States after (2 per rectangle).
    pub states_after: usize,
    /// Worst rectangles needed by any single state (1 = pure rectangle).
    pub max_rectangles: usize,
}

impl StrideStats {
    /// State inflation factor.
    pub fn inflation(&self) -> f64 {
        if self.states_before == 0 {
            1.0
        } else {
            self.states_after as f64 / self.states_before as f64
        }
    }
}

/// Transforms an 8-bit-symbol automaton into the equivalent 4-bit-symbol
/// automaton (two nibble states per rectangle of each original state).
///
/// Run it on [`to_nibble_stream`] output; reports fire at low-nibble
/// positions (map back with [`byte_position`]).
pub fn to_nibble_nfa(nfa: &HomNfa) -> HomNfa {
    to_nibble_nfa_with_stats(nfa).0
}

/// [`to_nibble_nfa`] plus inflation statistics.
pub fn to_nibble_nfa_with_stats(nfa: &HomNfa) -> (HomNfa, StrideStats) {
    let mut out = HomNfa::new();
    // per original state: (entry hi-states, exit lo-states)
    let mut entries: Vec<Vec<StateId>> = Vec::with_capacity(nfa.len());
    let mut exits: Vec<Vec<StateId>> = Vec::with_capacity(nfa.len());
    let mut max_rectangles = 0usize;
    for (_, st) in nfa.iter() {
        let rects = rectangles(&st.label);
        max_rectangles = max_rectangles.max(rects.len());
        let mut his = Vec::with_capacity(rects.len());
        let mut los = Vec::with_capacity(rects.len());
        for (hi_set, lo_set) in rects {
            // The hi state inherits the start kind: an all-input start is
            // enabled before every *byte*, i.e. before every hi nibble —
            // and phase encoding keeps it from matching lo nibbles.
            let hi = out.add_state_full(hi_set, st.start, None);
            let lo = out.add_state_full(lo_set, StartKind::None, st.report);
            out.add_edge(hi, lo);
            his.push(hi);
            los.push(lo);
        }
        entries.push(his);
        exits.push(los);
    }
    for (id, _) in nfa.iter() {
        for &t in nfa.successors(id) {
            for &lo in &exits[id.index()] {
                for &hi in &entries[t.index()] {
                    out.add_edge(lo, hi);
                }
            }
        }
    }
    let stats = StrideStats { states_before: nfa.len(), states_after: out.len(), max_rectangles };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, MatchEvent, SparseEngine};
    use crate::regex::{compile_pattern, compile_patterns};

    fn nibble_events(nfa: &HomNfa, input: &[u8]) -> Vec<MatchEvent> {
        let nibble = to_nibble_nfa(nfa);
        let mut ev = SparseEngine::new(&nibble).run(&to_nibble_stream(input));
        for e in ev.iter_mut() {
            e.pos = byte_position(e.pos);
        }
        ev.sort();
        ev
    }

    fn byte_events(nfa: &HomNfa, input: &[u8]) -> Vec<MatchEvent> {
        let mut ev = SparseEngine::new(nfa).run(input);
        ev.sort();
        ev
    }

    #[test]
    fn stream_expansion() {
        assert_eq!(to_nibble_stream(&[0xAB, 0x05]), vec![0x0A, 16 + 0x0B, 0x00, 16 + 0x05]);
        assert_eq!(byte_position(1), 0);
        assert_eq!(byte_position(7), 3);
    }

    #[test]
    fn rectangle_decomposition() {
        // a contiguous byte range is few rectangles; single byte is one
        assert_eq!(rectangles(&CharClass::byte(b'x')).len(), 1);
        // [a-z]: 0x61-0x7a spans hi nibbles 6 (lo 1..f) and 7 (lo 0..a)
        let r = rectangles(&CharClass::range(b'a', b'z'));
        assert_eq!(r.len(), 2);
        // match-all is one rectangle (16 x 16)
        let r = rectangles(&CharClass::ALL);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0.len(), 16);
        assert_eq!(r[0].1.len(), 16);
    }

    #[test]
    fn equivalence_on_patterns() {
        for pattern in ["cat", "ca[rt]", "a.*b", "[a-z]{2}[0-9]", "^head", "x|yy|zzz"] {
            let nfa = compile_pattern(pattern).unwrap();
            for input in
                [b"the cat sat on a9 mat".as_slice(), b"a--b zz0 head", b"x yy zzz head cat", b""]
            {
                assert_eq!(
                    byte_events(&nfa, input),
                    nibble_events(&nfa, input),
                    "pattern {pattern:?} input {input:?}"
                );
            }
        }
    }

    #[test]
    fn phase_encoding_prevents_cross_phase_matches() {
        // 0x11: hi nibble 1, lo nibble 1 — without phase encoding a start
        // state could fire on the lo nibble too and double-match 0x11 0x11.
        let nfa = compile_pattern("\\x11\\x11").unwrap();
        let ev = nibble_events(&nfa, &[0x11, 0x11, 0x11]);
        assert_eq!(byte_events(&nfa, &[0x11, 0x11, 0x11]), ev);
        assert_eq!(ev.len(), 2); // positions 1 and 2
    }

    #[test]
    fn inflation_statistics() {
        let nfa = compile_patterns(&["abc", "[a-z]+z"]).unwrap();
        let (nibble, stats) = to_nibble_nfa_with_stats(&nfa);
        assert_eq!(stats.states_before, nfa.len());
        assert_eq!(stats.states_after, nibble.len());
        // literals are single rectangles: exactly 2x
        let lit = compile_pattern("hello").unwrap();
        let (_, s) = to_nibble_nfa_with_stats(&lit);
        assert_eq!(s.states_after, 10);
        assert_eq!(s.max_rectangles, 1);
        assert!((s.inflation() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_class_stays_bounded() {
        // a "diagonal" class hi==lo needs 16 rectangles, never more
        let mut diag = CharClass::new();
        for n in 0u8..16 {
            diag.insert(n << 4 | n);
        }
        assert_eq!(rectangles(&diag).len(), 16);
        let mut nfa = HomNfa::new();
        nfa.add_state_full(diag, StartKind::AllInput, Some(crate::ReportCode(0)));
        let (nibble, stats) = to_nibble_nfa_with_stats(&nfa);
        assert_eq!(stats.max_rectangles, 16);
        assert_eq!(nibble.len(), 32);
        // and it still matches exactly the diagonal bytes
        let ev = nibble_events(&nfa, &[0x11, 0x12, 0x22]);
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn anchored_patterns_survive() {
        let nfa = compile_pattern("^ab").unwrap();
        for input in [b"abab".as_slice(), b"zab"] {
            assert_eq!(byte_events(&nfa, input), nibble_events(&nfa, input));
        }
    }
}
