//! Structural analyses over homogeneous NFAs.
//!
//! The Cache Automaton compiler treats *connected components* (CCs) as
//! atomic mapping units: real-world NFAs decompose into many CCs (one per
//! pattern or pattern family) with no transitions between them, so each CC
//! can be placed independently (paper §3.1).

use crate::homogeneous::{HomNfa, StateId};

/// Union-find over state indices.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// The weakly-connected components of an automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `membership[s]` = component index of state `s`.
    pub membership: Vec<u32>,
    /// States of each component, ascending within a component; components
    /// are ordered by their smallest state id.
    pub components: Vec<Vec<StateId>>,
}

impl Components {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the automaton had no states.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Component sizes, unordered.
    pub fn sizes(&self) -> Vec<usize> {
        self.components.iter().map(Vec::len).collect()
    }
}

/// Computes weakly-connected components (edge direction ignored).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::compile_patterns;
/// use ca_automata::analysis::connected_components;
///
/// let nfa = compile_patterns(&["cat", "dog", "fish"])?;
/// let cc = connected_components(&nfa);
/// assert_eq!(cc.len(), 3); // one per pattern
/// # Ok(())
/// # }
/// ```
pub fn connected_components(nfa: &HomNfa) -> Components {
    let n = nfa.len();
    let mut uf = UnionFind::new(n);
    for (id, _) in nfa.iter() {
        for &t in nfa.successors(id) {
            uf.union(id.0, t.0);
        }
    }
    let mut root_to_comp: Vec<Option<u32>> = vec![None; n];
    let mut components: Vec<Vec<StateId>> = Vec::new();
    let mut membership = vec![0u32; n];
    for s in 0..n as u32 {
        let root = uf.find(s) as usize;
        let comp = match root_to_comp[root] {
            Some(c) => c,
            None => {
                let c = components.len() as u32;
                root_to_comp[root] = Some(c);
                components.push(Vec::new());
                c
            }
        };
        membership[s as usize] = comp;
        components[comp as usize].push(StateId(s));
    }
    Components { membership, components }
}

/// Summary statistics used for Table 1 and DESIGN.md accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfaStats {
    /// Total states.
    pub states: usize,
    /// Total transitions.
    pub edges: usize,
    /// Number of connected components.
    pub connected_components: usize,
    /// Size of the largest component.
    pub largest_cc: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum in-degree (fan-in).
    pub max_in_degree: usize,
    /// Start states.
    pub start_states: usize,
    /// Reporting states.
    pub reporting_states: usize,
}

/// Computes the summary statistics of an automaton.
pub fn stats(nfa: &HomNfa) -> NfaStats {
    let cc = connected_components(nfa);
    NfaStats {
        states: nfa.len(),
        edges: nfa.edge_count(),
        connected_components: cc.len(),
        largest_cc: cc.largest(),
        avg_out_degree: nfa.avg_out_degree(),
        max_in_degree: nfa.max_in_degree(),
        start_states: nfa.start_states().len(),
        reporting_states: nfa.reporting_states().len(),
    }
}

/// Extracts a component as a standalone automaton, preserving state order.
///
/// # Panics
///
/// Panics if `comp` is out of range for `cc`.
pub fn extract_component(nfa: &HomNfa, cc: &Components, comp: usize) -> HomNfa {
    let members = &cc.components[comp];
    let mut map = vec![u32::MAX; nfa.len()];
    for (new, id) in members.iter().enumerate() {
        map[id.index()] = new as u32;
    }
    let mut out = HomNfa::with_capacity(members.len());
    for id in members {
        let st = nfa.state(*id);
        out.add_state_full(st.label, st.start, st.report);
    }
    for id in members {
        for &t in nfa.successors(*id) {
            out.add_edge(StateId(map[id.index()]), StateId(map[t.index()]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charclass::CharClass;
    use crate::homogeneous::{ReportCode, StartKind};
    use crate::regex::compile_patterns;

    #[test]
    fn single_chain_is_one_component() {
        let nfa = compile_patterns(&["abcd"]).unwrap();
        let cc = connected_components(&nfa);
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.largest(), 4);
        assert_eq!(cc.membership, vec![0, 0, 0, 0]);
    }

    #[test]
    fn patterns_are_separate_components() {
        let nfa = compile_patterns(&["ab", "cde", "f"]).unwrap();
        let cc = connected_components(&nfa);
        assert_eq!(cc.len(), 3);
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn direction_is_ignored() {
        // a -> b and c -> b : all in one weak component.
        let mut n = HomNfa::new();
        let a = n.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, None);
        let b = n.add_state_full(CharClass::byte(b'b'), StartKind::None, Some(ReportCode(0)));
        let c = n.add_state_full(CharClass::byte(b'c'), StartKind::AllInput, None);
        n.add_edge(a, b);
        n.add_edge(c, b);
        assert_eq!(connected_components(&n).len(), 1);
    }

    #[test]
    fn empty_automaton() {
        let cc = connected_components(&HomNfa::new());
        assert!(cc.is_empty());
        assert_eq!(cc.largest(), 0);
    }

    #[test]
    fn stats_summary() {
        let nfa = compile_patterns(&["ab", "cd.*e"]).unwrap();
        let s = stats(&nfa);
        assert_eq!(s.states, 6); // a,b + c,d,<dot>,e
        assert_eq!(s.connected_components, 2);
        assert_eq!(s.largest_cc, 4);
        assert_eq!(s.start_states, 2);
        assert_eq!(s.reporting_states, 2);
        assert!(s.avg_out_degree > 0.0);
    }

    #[test]
    fn extraction_preserves_language() {
        use crate::engine::{Engine, SparseEngine};
        let nfa = compile_patterns(&["cat", "dog"]).unwrap();
        let cc = connected_components(&nfa);
        // find the component holding "dog" (code 1)
        let comp = (0..cc.len())
            .find(|&i| cc.components[i].iter().any(|&s| nfa.state(s).report == Some(ReportCode(1))))
            .unwrap();
        let sub = extract_component(&nfa, &cc, comp);
        assert_eq!(sub.len(), 3);
        let ev = SparseEngine::new(&sub).run(b"hotdog");
        assert_eq!(ev.len(), 1);
        assert!(SparseEngine::new(&sub).run(b"cat").is_empty());
    }
}
