//! Regex abstract syntax tree.

use crate::charclass::CharClass;
use std::fmt;

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// A single-symbol class (literal, `.`, `[...]`, `\d`, ...).
    Class(CharClass),
    /// Concatenation of sub-expressions (empty = ε).
    Concat(Vec<Ast>),
    /// Alternation between sub-expressions (never empty).
    Alt(Vec<Ast>),
    /// Bounded or unbounded repetition of a sub-expression.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
    },
}

impl Ast {
    /// `true` if this node can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alt(parts) => parts.iter().any(Ast::is_nullable),
            Ast::Repeat { node, min, .. } => *min == 0 || node.is_nullable(),
        }
    }

    /// Number of symbol positions (Glushkov states) after expansion of
    /// bounded repeats. Unbounded tails count their body once.
    pub fn position_count(&self) -> usize {
        match self {
            Ast::Class(_) => 1,
            Ast::Concat(parts) => parts.iter().map(Ast::position_count).sum(),
            Ast::Alt(parts) => parts.iter().map(Ast::position_count).sum(),
            Ast::Repeat { node, min, max } => {
                let copies = max.unwrap_or((*min).max(1)) as usize;
                node.position_count() * copies.max(1)
            }
        }
    }
}

/// A full parsed pattern: AST plus anchoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// `true` when the pattern began with `^` (start-of-data anchor).
    pub anchored: bool,
    /// Root of the syntax tree.
    pub ast: Ast,
}

impl fmt::Display for Ast {
    /// Re-renders the node in regex syntax (canonical, not source-identical).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Class(c) => {
                if c.is_all() {
                    // regex syntax: match-all is `.`, not the ANML `*`
                    return write!(f, ".");
                }
                if c.len() == 1 {
                    let b = (*c).min().unwrap();
                    if b.is_ascii_alphanumeric() {
                        return write!(f, "{}", b as char);
                    }
                }
                write!(f, "{c}")
            }
            Ast::Concat(parts) => {
                for p in parts {
                    match p {
                        Ast::Alt(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Ast::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Ast::Repeat { node, min, max } => {
                match &**node {
                    Ast::Class(_) => write!(f, "{node}")?,
                    _ => write!(f, "({node})")?,
                }
                match (min, max) {
                    (0, None) => write!(f, "*"),
                    (1, None) => write!(f, "+"),
                    (0, Some(1)) => write!(f, "?"),
                    (m, None) => write!(f, "{{{m},}}"),
                    (m, Some(n)) if m == n => write!(f, "{{{m}}}"),
                    (m, Some(n)) => write!(f, "{{{m},{n}}}"),
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.anchored {
            write!(f, "^")?;
        }
        write!(f, "{}", self.ast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(b: u8) -> Ast {
        Ast::Class(CharClass::byte(b))
    }

    #[test]
    fn nullability() {
        assert!(!class(b'a').is_nullable());
        assert!(Ast::Concat(vec![]).is_nullable());
        assert!(!Ast::Concat(vec![class(b'a')]).is_nullable());
        assert!(Ast::Repeat { node: Box::new(class(b'a')), min: 0, max: None }.is_nullable());
        assert!(!Ast::Repeat { node: Box::new(class(b'a')), min: 2, max: Some(3) }.is_nullable());
        assert!(Ast::Alt(vec![class(b'a'), Ast::Concat(vec![])]).is_nullable());
    }

    #[test]
    fn position_counts() {
        assert_eq!(class(b'a').position_count(), 1);
        let ab = Ast::Concat(vec![class(b'a'), class(b'b')]);
        assert_eq!(ab.position_count(), 2);
        let rep = Ast::Repeat { node: Box::new(ab.clone()), min: 2, max: Some(5) };
        assert_eq!(rep.position_count(), 10);
        let star = Ast::Repeat { node: Box::new(ab), min: 0, max: None };
        assert_eq!(star.position_count(), 2);
    }

    #[test]
    fn display_roundtrips_shape() {
        let p = Ast::Concat(vec![
            class(b'a'),
            Ast::Repeat {
                node: Box::new(Ast::Alt(vec![class(b'b'), class(b'c')])),
                min: 0,
                max: None,
            },
            class(b'd'),
        ]);
        assert_eq!(p.to_string(), "a(b|c)*d");
        let pat = Pattern { anchored: true, ast: class(b'x') };
        assert_eq!(pat.to_string(), "^x");
    }
}
