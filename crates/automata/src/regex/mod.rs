//! Regular-expression front-end.
//!
//! Patterns are parsed into an [`Ast`], then compiled to automata two ways:
//!
//! * [`compile_pattern`] — Glushkov (position) construction, which produces a
//!   homogeneous NFA *directly*: one state per symbol position, exactly the
//!   STE-per-position mapping ANML uses. This is the production path.
//! * [`compile_pattern_thompson`] — Thompson construction to a classical
//!   ε-NFA, followed by ε-elimination and homogenization. Kept as an
//!   independent implementation for differential testing.
//!
//! Supported syntax: literals, `.`, escapes (`\n`, `\t`, `\xHH`, `\d\D\w\W\s\S`),
//! bracket classes with ranges and negation, grouping `(...)` (also `(?:...)`),
//! alternation `|`, and the quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`.
//! A leading `^` anchors the pattern to the start of data; everything else is
//! unanchored (ANML `all-input` start), matching the semantics of the
//! ANMLZoo/Regex benchmark suites. A leading `(?i)` (before or after the
//! anchor) makes the whole pattern ASCII-case-insensitive, as Snort rules
//! commonly are.

mod ast;
mod glushkov;
mod parser;
mod thompson;

pub use ast::{Ast, Pattern};
pub use glushkov::{compile_ast, MAX_POSITIONS};
pub use parser::{parse, parse_symbol_set};
pub use thompson::{compile_ast_thompson, thompson_classical};

use crate::error::Result;
use crate::homogeneous::{HomNfa, ReportCode};

/// Compiles one pattern to a homogeneous NFA (Glushkov construction) with
/// report code 0.
///
/// # Errors
///
/// Returns a parse error for malformed syntax and
/// [`Error::NullableRegex`](crate::Error::NullableRegex) if the pattern
/// matches the empty string.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::compile_pattern;
/// use ca_automata::engine::{Engine, SparseEngine};
///
/// let nfa = compile_pattern("ca[rt]")?;
/// let hits = SparseEngine::new(&nfa).run(b"a cat and a car");
/// assert_eq!(hits.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn compile_pattern(pattern: &str) -> Result<HomNfa> {
    let parsed = parse(pattern)?;
    compile_ast(&parsed, ReportCode(0))
}

/// Compiles many patterns into one multi-component homogeneous NFA; pattern
/// `i` reports with code `i`.
///
/// Each pattern becomes one connected component, which is exactly the
/// granularity the Cache Automaton compiler packs into SRAM partitions.
///
/// # Errors
///
/// Fails on the first malformed or nullable pattern.
pub fn compile_patterns<S: AsRef<str>>(patterns: &[S]) -> Result<HomNfa> {
    let mut out = HomNfa::new();
    for (i, p) in patterns.iter().enumerate() {
        let parsed = parse(p.as_ref())?;
        let one = compile_ast(&parsed, ReportCode(i as u32))?;
        out.append(&one);
    }
    Ok(out)
}

/// Compiles one pattern through the Thompson + ε-elimination +
/// homogenization path (differential-testing reference).
///
/// # Errors
///
/// Same failure modes as [`compile_pattern`].
pub fn compile_pattern_thompson(pattern: &str) -> Result<HomNfa> {
    let parsed = parse(pattern)?;
    compile_ast_thompson(&parsed, ReportCode(0))
}
