//! Glushkov (position) construction: `Pattern` → homogeneous NFA.
//!
//! Every symbol position of the (repeat-expanded) pattern becomes one
//! homogeneous state labelled with that position's class — the textbook
//! position automaton, which is homogeneous by construction and therefore
//! maps 1:1 onto STEs.

use super::ast::{Ast, Pattern};
use crate::charclass::CharClass;
use crate::error::{Error, Result};
use crate::homogeneous::{HomNfa, ReportCode, StartKind};
use std::collections::BTreeSet;

/// Upper bound on expanded positions per pattern (repeat blowup guard).
pub const MAX_POSITIONS: usize = 1_000_000;

/// Desugared core syntax over registered positions.
enum Core {
    Empty,
    Pos(usize),
    Cat(Box<Core>, Box<Core>),
    Alt(Box<Core>, Box<Core>),
    Star(Box<Core>),
}

fn cat(a: Core, b: Core) -> Core {
    match (a, b) {
        (Core::Empty, b) => b,
        (a, Core::Empty) => a,
        (a, b) => Core::Cat(Box::new(a), Box::new(b)),
    }
}

/// Expands an AST into core syntax, registering a fresh position (with its
/// label) for every expanded `Class` leaf.
fn desugar(ast: &Ast, positions: &mut Vec<CharClass>) -> Result<Core> {
    if positions.len() > MAX_POSITIONS {
        return Err(Error::ParseRegex {
            offset: 0,
            reason: format!("pattern expands to more than {MAX_POSITIONS} positions"),
        });
    }
    Ok(match ast {
        Ast::Class(c) => {
            positions.push(*c);
            Core::Pos(positions.len() - 1)
        }
        Ast::Concat(parts) => {
            let mut acc = Core::Empty;
            for p in parts {
                let rhs = desugar(p, positions)?;
                acc = cat(acc, rhs);
            }
            acc
        }
        Ast::Alt(parts) => {
            let mut iter = parts.iter();
            let first = iter.next().expect("Alt is never empty");
            let mut acc = desugar(first, positions)?;
            for p in iter {
                let rhs = desugar(p, positions)?;
                acc = Core::Alt(Box::new(acc), Box::new(rhs));
            }
            acc
        }
        Ast::Repeat { node, min, max } => {
            let mut acc = Core::Empty;
            for _ in 0..*min {
                let copy = desugar(node, positions)?;
                acc = cat(acc, copy);
            }
            match max {
                None => {
                    let body = desugar(node, positions)?;
                    acc = cat(acc, Core::Star(Box::new(body)));
                }
                Some(n) => {
                    for _ in *min..*n {
                        let copy = desugar(node, positions)?;
                        acc = cat(acc, Core::Alt(Box::new(copy), Box::new(Core::Empty)));
                    }
                }
            }
            acc
        }
    })
}

struct Info {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

fn analyze(core: &Core, follow: &mut [BTreeSet<usize>]) -> Info {
    match core {
        Core::Empty => Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() },
        Core::Pos(p) => {
            Info { nullable: false, first: BTreeSet::from([*p]), last: BTreeSet::from([*p]) }
        }
        Core::Cat(a, b) => {
            let ia = analyze(a, follow);
            let ib = analyze(b, follow);
            for &p in &ia.last {
                follow[p].extend(ib.first.iter().copied());
            }
            let mut first = ia.first;
            if ia.nullable {
                first.extend(ib.first.iter().copied());
            }
            let mut last = ib.last;
            if ib.nullable {
                last.extend(ia.last.iter().copied());
            }
            Info { nullable: ia.nullable && ib.nullable, first, last }
        }
        Core::Alt(a, b) => {
            let ia = analyze(a, follow);
            let ib = analyze(b, follow);
            let mut first = ia.first;
            first.extend(ib.first.iter().copied());
            let mut last = ia.last;
            last.extend(ib.last.iter().copied());
            Info { nullable: ia.nullable || ib.nullable, first, last }
        }
        Core::Star(a) => {
            let ia = analyze(a, follow);
            for &p in &ia.last {
                follow[p].extend(ia.first.iter().copied());
            }
            Info { nullable: true, first: ia.first, last: ia.last }
        }
    }
}

/// Compiles a parsed [`Pattern`] into a homogeneous NFA whose accepting
/// states report `code`.
///
/// # Errors
///
/// Returns [`Error::NullableRegex`] if the pattern matches the empty string
/// and [`Error::ParseRegex`] if repeat expansion exceeds [`MAX_POSITIONS`].
pub fn compile_ast(pattern: &Pattern, code: ReportCode) -> Result<HomNfa> {
    let mut positions: Vec<CharClass> = Vec::new();
    let core = desugar(&pattern.ast, &mut positions)?;
    let mut follow = vec![BTreeSet::new(); positions.len()];
    let info = analyze(&core, &mut follow);
    if info.nullable {
        return Err(Error::NullableRegex);
    }
    let start_kind = if pattern.anchored { StartKind::StartOfData } else { StartKind::AllInput };
    let mut nfa = HomNfa::with_capacity(positions.len());
    for (p, label) in positions.iter().enumerate() {
        let start = if info.first.contains(&p) { start_kind } else { StartKind::None };
        let report = if info.last.contains(&p) { Some(code) } else { None };
        nfa.add_state_full(*label, start, report);
    }
    for (p, next) in follow.iter().enumerate() {
        for &q in next {
            nfa.add_edge(
                crate::homogeneous::StateId(p as u32),
                crate::homogeneous::StateId(q as u32),
            );
        }
    }
    debug_assert!(nfa.validate().is_ok());
    Ok(nfa)
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;
    use crate::homogeneous::StateId;

    fn build(p: &str) -> HomNfa {
        compile_ast(&parse(p).unwrap(), ReportCode(0)).unwrap()
    }

    #[test]
    fn literal_chain() {
        let n = build("cat");
        assert_eq!(n.len(), 3);
        assert_eq!(n.start_states(), vec![StateId(0)]);
        assert_eq!(n.reporting_states(), vec![StateId(2)]);
        assert_eq!(n.successors(StateId(0)), &[StateId(1)]);
        assert_eq!(n.successors(StateId(1)), &[StateId(2)]);
        assert!(n.successors(StateId(2)).is_empty());
    }

    #[test]
    fn alternation_has_two_starts() {
        let n = build("ab|cd");
        assert_eq!(n.len(), 4);
        assert_eq!(n.start_states().len(), 2);
        assert_eq!(n.reporting_states().len(), 2);
    }

    #[test]
    fn star_creates_cycle() {
        // a(b)*c : b follows itself
        let n = build("ab*c");
        assert_eq!(n.len(), 3);
        let b = StateId(1);
        assert!(n.successors(b).contains(&b));
        // a reaches both b and c (b is skippable)
        assert_eq!(n.successors(StateId(0)).len(), 2);
    }

    #[test]
    fn bounded_repeat_expands() {
        let n = build("a{3}");
        assert_eq!(n.len(), 3);
        let n = build("a{2,4}");
        assert_eq!(n.len(), 4);
        // positions 2 and 3 are optional: reports at 1,2,3
        assert_eq!(n.reporting_states().len(), 3);
    }

    #[test]
    fn nullable_rejected() {
        for p in ["a*", "a?", "(a|b)*", "a{0,3}", ""] {
            let e = compile_ast(&parse(p).unwrap(), ReportCode(0)).unwrap_err();
            assert_eq!(e, Error::NullableRegex, "pattern {p:?}");
        }
    }

    #[test]
    fn anchoring_selects_start_kind() {
        let n = build("ab");
        assert_eq!(n.state(StateId(0)).start, StartKind::AllInput);
        let n = compile_ast(&parse("^ab").unwrap(), ReportCode(0)).unwrap();
        assert_eq!(n.state(StateId(0)).start, StartKind::StartOfData);
    }

    #[test]
    fn dotstar_bridge() {
        // a.*b : the `.` position loops and bridges a -> b
        let n = build("a.*b");
        assert_eq!(n.len(), 3);
        let dot = StateId(1);
        assert!(n.state(dot).label.is_all());
        assert!(n.successors(dot).contains(&dot));
        assert!(n.successors(StateId(0)).contains(&StateId(2)));
    }

    #[test]
    fn report_code_propagates() {
        let n = compile_ast(&parse("xy").unwrap(), ReportCode(42)).unwrap();
        assert_eq!(n.state(StateId(1)).report, Some(ReportCode(42)));
    }

    #[test]
    fn plus_requires_one() {
        let n = build("a+");
        assert_eq!(n.len(), 2); // a · a*
        assert_eq!(n.start_states(), vec![StateId(0)]);
        assert_eq!(n.reporting_states().len(), 2);
    }
}
