//! Thompson construction: `Pattern` → classical ε-NFA → homogeneous NFA.
//!
//! This is the *differential-testing* pipeline: a completely independent
//! compilation route (ε-NFA construction, ε-elimination, homogenization)
//! whose output must accept exactly the same language as the Glushkov path.

use super::ast::{Ast, Pattern};
use crate::error::{Error, Result};
use crate::homogeneous::{HomNfa, ReportCode, StartKind};
use crate::homogenize::homogenize;
use crate::nfa::ClassicalNfa;

/// Builds the Thompson ε-NFA for a pattern; the accepting state reports
/// `code`.
///
/// # Errors
///
/// Returns [`Error::NullableRegex`] for patterns that match the empty string.
pub fn thompson_classical(pattern: &Pattern, code: ReportCode) -> Result<ClassicalNfa> {
    if pattern.ast.is_nullable() {
        return Err(Error::NullableRegex);
    }
    let mut nfa = ClassicalNfa::new();
    let (s, e) = fragment(&pattern.ast, &mut nfa);
    nfa.add_start(s);
    nfa.set_accept(e, code);
    Ok(nfa)
}

/// Recursively builds a fragment, returning its (entry, exit) states.
fn fragment(ast: &Ast, nfa: &mut ClassicalNfa) -> (u32, u32) {
    match ast {
        Ast::Class(c) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_transition(s, *c, e);
            (s, e)
        }
        Ast::Concat(parts) => {
            if parts.is_empty() {
                let s = nfa.add_state();
                return (s, s);
            }
            let (s, mut prev_e) = fragment(&parts[0], nfa);
            for p in &parts[1..] {
                let (ps, pe) = fragment(p, nfa);
                nfa.add_epsilon(prev_e, ps);
                prev_e = pe;
            }
            (s, prev_e)
        }
        Ast::Alt(parts) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for p in parts {
                let (ps, pe) = fragment(p, nfa);
                nfa.add_epsilon(s, ps);
                nfa.add_epsilon(pe, e);
            }
            (s, e)
        }
        Ast::Repeat { node, min, max } => {
            // Desugar exactly as the Glushkov path does, so both routes
            // accept the same language by construction.
            let s = nfa.add_state();
            let mut prev = s;
            for _ in 0..*min {
                let (ps, pe) = fragment(node, nfa);
                nfa.add_epsilon(prev, ps);
                prev = pe;
            }
            match max {
                None => {
                    // prev -> star(node) -> e
                    let e = nfa.add_state();
                    let (ps, pe) = fragment(node, nfa);
                    nfa.add_epsilon(prev, e);
                    nfa.add_epsilon(prev, ps);
                    nfa.add_epsilon(pe, ps);
                    nfa.add_epsilon(pe, e);
                    (s, e)
                }
                Some(n) => {
                    for _ in *min..*n {
                        let (ps, pe) = fragment(node, nfa);
                        let skip = nfa.add_state();
                        nfa.add_epsilon(prev, ps);
                        nfa.add_epsilon(prev, skip);
                        nfa.add_epsilon(pe, skip);
                        prev = skip;
                    }
                    (s, prev)
                }
            }
        }
    }
}

/// Compiles a pattern via Thompson + ε-elimination + homogenization.
///
/// # Errors
///
/// Same failure modes as [`thompson_classical`].
pub fn compile_ast_thompson(pattern: &Pattern, code: ReportCode) -> Result<HomNfa> {
    let classical = thompson_classical(pattern, code)?;
    let no_eps = classical.without_epsilon();
    let start_kind = if pattern.anchored { StartKind::StartOfData } else { StartKind::AllInput };
    homogenize(&no_eps, start_kind)
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;

    fn classical(p: &str) -> ClassicalNfa {
        thompson_classical(&parse(p).unwrap(), ReportCode(0)).unwrap()
    }

    #[test]
    fn literal_language() {
        let n = classical("cat");
        assert!(n.accepts(b"cat"));
        assert!(n.accepts(b"a cat!"));
        assert!(!n.accepts(b"ca"));
        assert!(!n.accepts(b"dog"));
    }

    #[test]
    fn alternation_language() {
        let n = classical("ab|cd");
        assert!(n.accepts(b"ab"));
        assert!(n.accepts(b"cd"));
        assert!(!n.accepts(b"ad"));
    }

    #[test]
    fn star_and_plus() {
        let n = classical("ab*c");
        assert!(n.accepts(b"ac"));
        assert!(n.accepts(b"abbbbc"));
        assert!(!n.accepts(b"bc"));
        let n = classical("ab+c");
        assert!(!n.accepts(b"ac"));
        assert!(n.accepts(b"abc"));
    }

    #[test]
    fn bounded_repeats() {
        let n = classical("a{2,3}b");
        assert!(!n.accepts(b"ab"));
        assert!(n.accepts(b"aab"));
        assert!(n.accepts(b"aaab"));
        // aaaab contains aaab as a substring -> unanchored accept
        assert!(n.accepts(b"aaaab"));
        let n = classical("a{2}b");
        assert!(n.accepts(b"aab"));
        assert!(!n.accepts(b"ab"));
    }

    #[test]
    fn nullable_rejected() {
        assert_eq!(
            thompson_classical(&parse("a*").unwrap(), ReportCode(0)).unwrap_err(),
            Error::NullableRegex
        );
    }

    #[test]
    fn homogeneous_route_builds() {
        let h = compile_ast_thompson(&parse("a(b|c)d").unwrap(), ReportCode(3)).unwrap();
        assert!(h.validate().is_ok());
        assert!(!h.reporting_states().is_empty());
    }
}
