//! Recursive-descent regex parser.

use super::ast::{Ast, Pattern};
use crate::charclass::CharClass;
use crate::error::{Error, Result};

/// Hard cap on the positions a bounded repeat may expand to, guarding
/// against pathological `{1,100000}`-style blowup.
pub const MAX_REPEAT: u32 = 4096;

/// Parses a pattern into a [`Pattern`].
///
/// # Errors
///
/// Returns [`Error::ParseRegex`] with the byte offset of the first problem.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::parse;
/// let p = parse("^ab|cd")?;
/// assert!(p.anchored);
/// # Ok(())
/// # }
/// ```
pub fn parse(pattern: &str) -> Result<Pattern> {
    let bytes = pattern.as_bytes();
    let mut start = 0usize;
    let mut anchored = false;
    let mut fold_case = false;
    // leading flags/anchor in either order: `(?i)^...` or `^(?i)...`
    loop {
        if !fold_case && bytes[start..].starts_with(b"(?i)") {
            fold_case = true;
            start += 4;
        } else if !anchored && bytes.get(start) == Some(&b'^') {
            anchored = true;
            start += 1;
        } else {
            break;
        }
    }
    let mut p = Parser { bytes, pos: start, fold_case };
    let ast = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input (unbalanced ')'?)"));
    }
    Ok(Pattern { anchored, ast })
}

/// Parses an ANML-style symbol set: a bracket expression (`[a-c]`,
/// `[^\x00]`), a single (possibly escaped) symbol, or `*` for match-all.
///
/// # Errors
///
/// Returns [`Error::ParseRegex`] for malformed sets or trailing input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::parse_symbol_set;
/// use ca_automata::CharClass;
///
/// assert_eq!(parse_symbol_set("[0-9]")?, CharClass::range(b'0', b'9'));
/// assert_eq!(parse_symbol_set("*")?, CharClass::ALL);
/// assert_eq!(parse_symbol_set("\\n")?, CharClass::byte(b'\n'));
/// # Ok(())
/// # }
/// ```
pub fn parse_symbol_set(set: &str) -> Result<CharClass> {
    let bytes = set.as_bytes();
    let mut p = Parser { bytes, pos: 0, fold_case: false };
    let class = match p.peek() {
        Some(b'[') => {
            p.pos += 1;
            p.bracket_class()?
        }
        Some(b'*') => {
            p.pos += 1;
            CharClass::ALL
        }
        Some(b'\\') => {
            p.pos += 1;
            p.escape()?
        }
        Some(b) => {
            p.pos += 1;
            CharClass::byte(b)
        }
        None => return Err(p.err("empty symbol set")),
    };
    if p.pos != bytes.len() {
        return Err(p.err("trailing input after symbol set"));
    }
    Ok(class)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// `(?i)`: case-insensitive matching — every class is case-folded.
    fold_case: bool,
}

/// Adds the opposite-case counterpart of every ASCII letter in the class.
fn fold_ascii_case(class: CharClass) -> CharClass {
    let mut out = class;
    for b in class.iter() {
        if b.is_ascii_alphabetic() {
            out.insert(b ^ 0x20);
        }
    }
    out
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> Error {
        Error::ParseRegex { offset: self.pos, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast> {
        let mut parts = Vec::new();
        loop {
            // Flatten nested alternations (from groups) for a canonical AST.
            match self.concat()? {
                Ast::Alt(inner) => parts.extend(inner),
                other => parts.push(other),
            }
            if !self.eat(b'|') {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Ast::Alt(parts) })
    }

    fn concat(&mut self) -> Result<Ast> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            // Flatten nested concatenations (from groups) for a canonical AST.
            match self.repeat()? {
                Ast::Concat(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Ast::Concat(parts) })
    }

    fn repeat(&mut self) -> Result<Ast> {
        let mut node = self.atom()?;
        loop {
            let (min, max) = match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    (0, None)
                }
                Some(b'+') => {
                    self.pos += 1;
                    (1, None)
                }
                Some(b'?') => {
                    self.pos += 1;
                    (0, Some(1))
                }
                Some(b'{') => {
                    self.pos += 1;
                    let bounds = self.bounds()?;
                    (bounds.0, bounds.1)
                }
                _ => break,
            };
            if let Some(n) = max {
                if n < min {
                    return Err(self.err(format!("repeat bound {{{min},{n}}} has max < min")));
                }
                if n > MAX_REPEAT {
                    return Err(self.err(format!("repeat bound {n} exceeds limit {MAX_REPEAT}")));
                }
            } else if min > MAX_REPEAT {
                return Err(self.err(format!("repeat bound {min} exceeds limit {MAX_REPEAT}")));
            }
            node = Ast::Repeat { node: Box::new(node), min, max };
        }
        Ok(node)
    }

    fn bounds(&mut self) -> Result<(u32, Option<u32>)> {
        let min = self.number()?;
        if self.eat(b'}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(b',') {
            return Err(self.err("expected ',' or '}' in repeat bounds"));
        }
        if self.eat(b'}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat(b'}') {
            return Err(self.err("expected '}' after repeat bounds"));
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf-8")
            .parse::<u32>()
            .map_err(|_| self.err("repeat bound too large"))
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.peek() {
            None => Err(self.err("expected an atom, found end of pattern")),
            Some(b'(') => {
                self.pos += 1;
                // tolerate non-capturing group syntax
                if self.peek() == Some(b'?') {
                    self.pos += 1;
                    if !self.eat(b':') {
                        return Err(self.err("only (?: ) groups are supported"));
                    }
                }
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(b')') => Err(self.err("unexpected ')'")),
            Some(b'.') => {
                self.pos += 1;
                Ok(Ast::Class(CharClass::ALL))
            }
            Some(b'[') => {
                self.pos += 1;
                let class = self.bracket_class()?;
                Ok(Ast::Class(self.fold(class)))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => {
                Err(self.err("quantifier with nothing to repeat"))
            }
            Some(b'^') => Err(self.err("'^' is only supported at the start of the pattern")),
            Some(b'$') => Err(self.err("'$' anchors are not supported")),
            Some(b'\\') => {
                self.pos += 1;
                let class = self.escape()?;
                Ok(Ast::Class(self.fold(class)))
            }
            Some(b) => {
                self.pos += 1;
                Ok(Ast::Class(self.fold(CharClass::byte(b))))
            }
        }
    }

    fn fold(&self, class: CharClass) -> CharClass {
        if self.fold_case {
            fold_ascii_case(class)
        } else {
            class
        }
    }

    /// An escape sequence after a `\` has been consumed.
    fn escape(&mut self) -> Result<CharClass> {
        let Some(b) = self.bump() else {
            return Err(self.err("dangling '\\' at end of pattern"));
        };
        Ok(match b {
            b'n' => CharClass::byte(b'\n'),
            b'r' => CharClass::byte(b'\r'),
            b't' => CharClass::byte(b'\t'),
            b'f' => CharClass::byte(0x0c),
            b'v' => CharClass::byte(0x0b),
            b'0' => CharClass::byte(0),
            b'a' => CharClass::byte(0x07),
            b'e' => CharClass::byte(0x1b),
            b'd' => CharClass::range(b'0', b'9'),
            b'D' => CharClass::range(b'0', b'9').negate(),
            b'w' => word_class(),
            b'W' => word_class().negate(),
            b's' => space_class(),
            b'S' => space_class().negate(),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                CharClass::byte(hi * 16 + lo)
            }
            // any punctuation escapes itself: \\ \. \* \[ ...
            b if !b.is_ascii_alphanumeric() => CharClass::byte(b),
            _ => return Err(self.err(format!("unknown escape '\\{}'", b as char))),
        })
    }

    fn hex_digit(&mut self) -> Result<u8> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.err("expected a hex digit after \\x")),
        }
    }

    /// Contents of a bracket class after `[` has been consumed.
    fn bracket_class(&mut self) -> Result<CharClass> {
        let negated = self.eat(b'^');
        let mut class = CharClass::new();
        let mut first = true;
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated '[' class"));
            };
            if b == b']' && !first {
                self.pos += 1;
                break;
            }
            first = false;
            let lo = self.class_item()?;
            // range?
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']')
            {
                self.pos += 1; // consume '-'
                let lo_b = single_symbol(&lo)
                    .ok_or_else(|| self.err("class escape cannot start a range"))?;
                let hi = self.class_item()?;
                let hi_b = single_symbol(&hi)
                    .ok_or_else(|| self.err("class escape cannot end a range"))?;
                if hi_b < lo_b {
                    return Err(self.err(format!(
                        "reversed range {}-{} in class",
                        lo_b as char, hi_b as char
                    )));
                }
                class = class.union(&CharClass::range(lo_b, hi_b));
            } else {
                class = class.union(&lo);
            }
        }
        if negated {
            class = class.negate();
        }
        if class.is_empty() {
            return Err(self.err("class matches no symbol"));
        }
        Ok(class)
    }

    /// One item inside a bracket class: a literal byte or an escape.
    fn class_item(&mut self) -> Result<CharClass> {
        match self.bump() {
            Some(b'\\') => self.escape(),
            Some(b) => Ok(CharClass::byte(b)),
            None => Err(self.err("unterminated '[' class")),
        }
    }
}

fn single_symbol(c: &CharClass) -> Option<u8> {
    if c.len() == 1 {
        (*c).min()
    } else {
        None
    }
}

/// `\w`: `[0-9A-Za-z_]`.
fn word_class() -> CharClass {
    CharClass::range(b'0', b'9')
        .union(&CharClass::range(b'A', b'Z'))
        .union(&CharClass::range(b'a', b'z'))
        .union(&CharClass::byte(b'_'))
}

/// `\s`: `[ \t\n\r\f\v]`.
fn space_class() -> CharClass {
    CharClass::of(&[b' ', b'\t', b'\n', b'\r', 0x0c, 0x0b])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(p: &str) -> Pattern {
        parse(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    fn fails(p: &str) -> Error {
        parse(p).expect_err(&format!("pattern {p:?} unexpectedly parsed"))
    }

    #[test]
    fn literals_and_anchors() {
        let p = ok("abc");
        assert!(!p.anchored);
        assert_eq!(p.ast.to_string(), "abc");
        assert!(ok("^abc").anchored);
    }

    #[test]
    fn alternation_precedence() {
        assert_eq!(ok("ab|cd|e").ast.to_string(), "ab|cd|e");
        assert_eq!(ok("a(b|c)d").ast.to_string(), "a(b|c)d");
    }

    #[test]
    fn quantifiers() {
        assert_eq!(ok("ab*").ast.to_string(), "ab*");
        assert_eq!(ok("a+").ast.to_string(), "a+");
        assert_eq!(ok("a?").ast.to_string(), "a?");
        assert_eq!(ok("a{3}").ast.to_string(), "a{3}");
        assert_eq!(ok("a{3,}").ast.to_string(), "a{3,}");
        assert_eq!(ok("a{3,5}").ast.to_string(), "a{3,5}");
        // stacked quantifiers parse (rare but legal here)
        assert!(parse("(a+)?").is_ok());
    }

    #[test]
    fn quantifier_errors() {
        fails("*a");
        fails("a{5,3}");
        fails(&format!("a{{{}}}", MAX_REPEAT + 1));
        fails("a{3");
        fails("a{,3}");
    }

    #[test]
    fn dot_and_classes() {
        let p = ok(".");
        assert_eq!(p.ast, Ast::Class(CharClass::ALL));
        let p = ok("[a-c]");
        assert_eq!(p.ast, Ast::Class(CharClass::range(b'a', b'c')));
        let p = ok("[^a]");
        assert_eq!(p.ast, Ast::Class(CharClass::byte(b'a').negate()));
        let p = ok("[abc0-9]");
        assert_eq!(p.ast, Ast::Class(CharClass::of(b"abc").union(&CharClass::range(b'0', b'9'))));
        // ']' first is a literal
        let p = ok("[]a]");
        assert_eq!(p.ast, Ast::Class(CharClass::of(b"]a")));
        // trailing '-' is a literal
        let p = ok("[a-]");
        assert_eq!(p.ast, Ast::Class(CharClass::of(b"a-")));
    }

    #[test]
    fn class_errors() {
        fails("[a");
        fails("[z-a]");
        fails("[^\\x00-\\xff]"); // empty after negation
    }

    #[test]
    fn escapes() {
        assert_eq!(ok("\\n").ast, Ast::Class(CharClass::byte(b'\n')));
        assert_eq!(ok("\\x41").ast, Ast::Class(CharClass::byte(b'A')));
        assert_eq!(ok("\\d").ast, Ast::Class(CharClass::range(b'0', b'9')));
        assert_eq!(ok("\\.").ast, Ast::Class(CharClass::byte(b'.')));
        assert_eq!(ok("\\\\").ast, Ast::Class(CharClass::byte(b'\\')));
        let w = ok("\\w").ast;
        if let Ast::Class(c) = w {
            assert!(c.contains(b'_') && c.contains(b'Z') && !c.contains(b'-'));
        } else {
            panic!("\\w not a class");
        }
        fails("\\q");
        fails("\\x4");
        fails("\\");
    }

    #[test]
    fn classes_in_brackets() {
        let p = ok("[\\d_]");
        assert_eq!(p.ast, Ast::Class(CharClass::range(b'0', b'9').union(&CharClass::byte(b'_'))));
        fails("[\\d-z]"); // multi-symbol escape cannot open a range
    }

    #[test]
    fn groups() {
        assert_eq!(ok("(?:ab)+").ast.to_string(), "(ab)+");
        fails("(ab");
        fails("ab)");
        fails("(?=a)"); // lookahead unsupported
    }

    #[test]
    fn anchors_inside_rejected() {
        fails("a^b");
        fails("ab$");
    }

    #[test]
    fn case_insensitive_flag() {
        use crate::engine::{Engine, SparseEngine};
        use crate::regex::compile_pattern;
        let nfa = compile_pattern("(?i)AbC[x-z]").unwrap();
        let mut eng = SparseEngine::new(&nfa);
        assert_eq!(eng.run(b"abcx").len(), 1);
        assert_eq!(eng.run(b"ABCZ").len(), 1);
        assert_eq!(eng.run(b"aBcY").len(), 1);
        assert_eq!(eng.run(b"abd").len(), 0);
        // digits unaffected
        let nfa = compile_pattern("(?i)a1").unwrap();
        assert_eq!(SparseEngine::new(&nfa).run(b"A1").len(), 1);
        assert_eq!(SparseEngine::new(&nfa).run(b"A2").len(), 0);
    }

    #[test]
    fn case_flag_with_anchor_in_either_order() {
        let a = ok("(?i)^ab");
        let b = ok("^(?i)ab");
        assert!(a.anchored && b.anchored);
        assert_eq!(a.ast, b.ast);
        // folded class contains both cases
        if let Ast::Class(c) = &a.ast {
            panic!("unexpected single class {c}");
        }
        if let Ast::Concat(parts) = &a.ast {
            assert_eq!(parts[0], Ast::Class(CharClass::of(b"aA")));
        } else {
            panic!("expected concat");
        }
    }

    #[test]
    fn fold_helper_covers_letters_only() {
        let folded = fold_ascii_case(CharClass::of(b"aZ09_"));
        assert_eq!(folded, CharClass::of(b"aAzZ09_"));
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let e = fails("ab[q");
        if let Error::ParseRegex { offset, .. } = e {
            assert_eq!(offset, 4);
        } else {
            panic!("wrong error kind: {e:?}")
        }
    }
}
