//! 256-bit symbol classes.
//!
//! A [`CharClass`] is the set of 8-bit input symbols a state-transition
//! element (STE) matches. In the Cache Automaton architecture each STE is
//! stored as a 256-bit one-hot column of an SRAM array (one bit per symbol of
//! the extended-ASCII alphabet); `CharClass` is the software image of that
//! column.

use std::fmt;

/// A set of 8-bit symbols, stored as a 256-bit bitmap.
///
/// This is the label alphabet for homogeneous (ANML-style) automata: each
/// state matches exactly the symbols contained in its class.
///
/// # Examples
///
/// ```
/// use ca_automata::CharClass;
///
/// let digits = CharClass::range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct CharClass {
    bits: [u64; 4],
}

impl CharClass {
    /// The empty class (matches no symbol).
    pub const EMPTY: CharClass = CharClass { bits: [0; 4] };

    /// The full class (matches every symbol); the regex `.` when dot-all.
    pub const ALL: CharClass = CharClass { bits: [u64::MAX; 4] };

    /// Creates an empty class.
    pub fn new() -> CharClass {
        CharClass::EMPTY
    }

    /// Creates a class containing a single symbol.
    ///
    /// ```
    /// use ca_automata::CharClass;
    /// assert!(CharClass::byte(b'x').contains(b'x'));
    /// ```
    pub fn byte(b: u8) -> CharClass {
        let mut c = CharClass::EMPTY;
        c.insert(b);
        c
    }

    /// Creates a class containing the inclusive range `lo..=hi`.
    ///
    /// Bounds are swapped if given in reverse order, so `range(b'9', b'0')`
    /// equals `range(b'0', b'9')`.
    pub fn range(lo: u8, hi: u8) -> CharClass {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut c = CharClass::EMPTY;
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// Creates a class from every byte of `bytes`.
    pub fn of(bytes: &[u8]) -> CharClass {
        let mut c = CharClass::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// Adds a symbol to the class. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, b: u8) -> bool {
        let (w, m) = (b as usize / 64, 1u64 << (b % 64));
        let fresh = self.bits[w] & m == 0;
        self.bits[w] |= m;
        fresh
    }

    /// Removes a symbol from the class. Returns `true` if it was present.
    pub fn remove(&mut self, b: u8) -> bool {
        let (w, m) = (b as usize / 64, 1u64 << (b % 64));
        let had = self.bits[w] & m != 0;
        self.bits[w] &= !m;
        had
    }

    /// Tests membership of one symbol.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[b as usize / 64] >> (b % 64) & 1 == 1
    }

    /// Number of symbols in the class.
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` if the class matches no symbol.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// `true` if the class matches every symbol.
    pub fn is_all(&self) -> bool {
        self.bits == [u64::MAX; 4]
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        CharClass { bits }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        CharClass { bits }
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
        CharClass { bits }
    }

    /// Set complement.
    #[must_use]
    pub fn negate(&self) -> CharClass {
        let mut bits = self.bits;
        for a in bits.iter_mut() {
            *a = !*a;
        }
        CharClass { bits }
    }

    /// `true` if `self` and `other` share at least one symbol.
    pub fn intersects(&self, other: &CharClass) -> bool {
        self.bits.iter().zip(other.bits.iter()).any(|(a, b)| a & b != 0)
    }

    /// `true` if every symbol of `self` is in `other`.
    pub fn is_subset(&self, other: &CharClass) -> bool {
        self.bits.iter().zip(other.bits.iter()).all(|(a, b)| a & !b == 0)
    }

    /// The smallest symbol in the class, if any.
    ///
    /// Takes `self` by value (the type is `Copy`) so this inherent method
    /// shadows `Ord::min` rather than colliding with it.
    pub fn min(self) -> Option<u8> {
        self.iter().next()
    }

    /// The largest symbol in the class, if any.
    pub fn max(self) -> Option<u8> {
        self.iter().last()
    }

    /// Iterates over the symbols of the class in ascending order.
    ///
    /// ```
    /// use ca_automata::CharClass;
    /// let c = CharClass::of(b"cab");
    /// let v: Vec<u8> = c.iter().collect();
    /// assert_eq!(v, b"abc");
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { class: self, next: 0 }
    }

    /// The raw 256-bit bitmap, low symbols in low bits of low words.
    ///
    /// This is exactly the one-hot column image loaded into an SRAM array.
    pub fn to_bits(&self) -> [u64; 4] {
        self.bits
    }

    /// Builds a class from a raw 256-bit bitmap (inverse of [`to_bits`]).
    ///
    /// [`to_bits`]: CharClass::to_bits
    pub fn from_bits(bits: [u64; 4]) -> CharClass {
        CharClass { bits }
    }

    /// Returns the inclusive ranges of the class in ascending order.
    ///
    /// ```
    /// use ca_automata::CharClass;
    /// let c = CharClass::of(b"abcxz");
    /// assert_eq!(c.ranges(), vec![(b'a', b'c'), (b'x', b'x'), (b'z', b'z')]);
    /// ```
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in self.iter() {
            match cur {
                Some((lo, hi)) if hi as u16 + 1 == b as u16 => cur = Some((lo, b)),
                Some(r) => {
                    out.push(r);
                    cur = Some((b, b));
                }
                None => cur = Some((b, b)),
            }
        }
        if let Some(r) = cur {
            out.push(r);
        }
        out
    }
}

/// Iterator over the symbols of a [`CharClass`], produced by
/// [`CharClass::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    class: &'a CharClass,
    next: u16,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        while self.next < 256 {
            let b = self.next as u8;
            self.next += 1;
            if self.class.contains(b) {
                return Some(b);
            }
        }
        None
    }
}

impl FromIterator<u8> for CharClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> CharClass {
        let mut c = CharClass::EMPTY;
        for b in iter {
            c.insert(b);
        }
        c
    }
}

impl Extend<u8> for CharClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl From<u8> for CharClass {
    fn from(b: u8) -> CharClass {
        CharClass::byte(b)
    }
}

fn fmt_symbol(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
    match b {
        b'\n' => write!(f, "\\n"),
        b'\r' => write!(f, "\\r"),
        b'\t' => write!(f, "\\t"),
        b'\\' | b'[' | b']' | b'-' | b'^' => write!(f, "\\{}", b as char),
        0x20..=0x7e => write!(f, "{}", b as char),
        _ => write!(f, "\\x{b:02x}"),
    }
}

impl fmt::Display for CharClass {
    /// Formats the class as an ANML/regex-style bracket expression,
    /// e.g. `[a-c]`, `[\x00-\xff]` is shown as `*` (match-all).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_all() {
            return write!(f, "*");
        }
        write!(f, "[")?;
        for (lo, hi) in self.ranges() {
            match hi - lo {
                0 => fmt_symbol(f, lo)?,
                1 => {
                    fmt_symbol(f, lo)?;
                    fmt_symbol(f, hi)?;
                }
                _ => {
                    fmt_symbol(f, lo)?;
                    write!(f, "-")?;
                    fmt_symbol(f, hi)?;
                }
            }
        }
        write!(f, "]")
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharClass({self})")
    }
}

impl std::ops::BitOr for CharClass {
    type Output = CharClass;
    fn bitor(self, rhs: CharClass) -> CharClass {
        self.union(&rhs)
    }
}

impl std::ops::BitAnd for CharClass {
    type Output = CharClass;
    fn bitand(self, rhs: CharClass) -> CharClass {
        self.intersect(&rhs)
    }
}

impl std::ops::Not for CharClass {
    type Output = CharClass;
    fn not(self) -> CharClass {
        self.negate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all() {
        assert!(CharClass::EMPTY.is_empty());
        assert_eq!(CharClass::EMPTY.len(), 0);
        assert!(CharClass::ALL.is_all());
        assert_eq!(CharClass::ALL.len(), 256);
        assert!(CharClass::ALL.contains(0));
        assert!(CharClass::ALL.contains(255));
    }

    #[test]
    fn insert_remove_contains() {
        let mut c = CharClass::new();
        assert!(c.insert(b'q'));
        assert!(!c.insert(b'q'));
        assert!(c.contains(b'q'));
        assert!(c.remove(b'q'));
        assert!(!c.remove(b'q'));
        assert!(c.is_empty());
    }

    #[test]
    fn range_swaps_bounds() {
        assert_eq!(CharClass::range(b'9', b'0'), CharClass::range(b'0', b'9'));
        assert_eq!(CharClass::range(b'a', b'a'), CharClass::byte(b'a'));
    }

    #[test]
    fn range_spans_word_boundaries() {
        // 63..=65 crosses the first u64 word boundary.
        let c = CharClass::range(63, 65);
        assert_eq!(c.len(), 3);
        assert!(c.contains(63) && c.contains(64) && c.contains(65));
        assert!(!c.contains(62) && !c.contains(66));
    }

    #[test]
    fn set_algebra() {
        let a = CharClass::range(b'a', b'm');
        let b = CharClass::range(b'h', b'z');
        assert_eq!(a.union(&b), CharClass::range(b'a', b'z'));
        assert_eq!(a.intersect(&b), CharClass::range(b'h', b'm'));
        assert_eq!(a.difference(&b), CharClass::range(b'a', b'g'));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&CharClass::byte(b'z')));
        assert!(CharClass::range(b'c', b'e').is_subset(&a));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn negate_roundtrip() {
        let a = CharClass::of(b"hello");
        assert_eq!(a.negate().negate(), a);
        assert_eq!(a.union(&a.negate()), CharClass::ALL);
        assert!(a.intersect(&a.negate()).is_empty());
    }

    #[test]
    fn operators_match_methods() {
        let a = CharClass::of(b"abc");
        let b = CharClass::of(b"bcd");
        assert_eq!(a | b, a.union(&b));
        assert_eq!(a & b, a.intersect(&b));
        assert_eq!(!a, a.negate());
    }

    #[test]
    fn min_max_iter() {
        let c = CharClass::of(b"zax");
        assert_eq!(c.min(), Some(b'a'));
        assert_eq!(c.max(), Some(b'z'));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![b'a', b'x', b'z']);
        assert_eq!(CharClass::EMPTY.min(), None);
        assert_eq!(CharClass::EMPTY.max(), None);
    }

    #[test]
    fn bits_roundtrip() {
        let c = CharClass::of(b"The quick brown fox");
        assert_eq!(CharClass::from_bits(c.to_bits()), c);
    }

    #[test]
    fn ranges_and_display() {
        let c = CharClass::of(b"abcxz");
        assert_eq!(c.ranges(), vec![(b'a', b'c'), (b'x', b'x'), (b'z', b'z')]);
        assert_eq!(c.to_string(), "[a-cxz]");
        assert_eq!(CharClass::ALL.to_string(), "*");
        assert_eq!(CharClass::byte(b'\n').to_string(), "[\\n]");
        assert_eq!(CharClass::byte(0x01).to_string(), "[\\x01]");
        assert_eq!(CharClass::of(b"ab").to_string(), "[ab]");
    }

    #[test]
    fn from_iterator_and_extend() {
        let c: CharClass = (b'0'..=b'9').collect();
        assert_eq!(c, CharClass::range(b'0', b'9'));
        let mut d = CharClass::byte(b'a');
        d.extend(b"bc".iter().copied());
        assert_eq!(d, CharClass::range(b'a', b'c'));
    }

    #[test]
    fn full_byte_space() {
        let c = CharClass::range(0, 255);
        assert!(c.is_all());
        let lo = CharClass::range(0, 127);
        let hi = CharClass::range(128, 255);
        assert_eq!(lo.union(&hi), CharClass::ALL);
        assert!(!lo.intersects(&hi));
    }
}
