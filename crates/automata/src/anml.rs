//! ANML (Automata Network Markup Language) subset: parse and serialize.
//!
//! ANML is Micron's XML dialect for homogeneous automata and the input
//! format of the Cache Automaton compiler ("the compiler takes as input an
//! NFA described in a compact XML-like format (ANML)", §3). We implement
//! the subset the benchmark suites use:
//!
//! ```xml
//! <anml-network id="example">
//!   <state-transition-element id="s0" symbol-set="[bc]" start="all-input">
//!     <activate-on-match element="s1"/>
//!   </state-transition-element>
//!   <state-transition-element id="s1" symbol-set="a">
//!     <report-on-match reportcode="0"/>
//!   </state-transition-element>
//! </anml-network>
//! ```
//!
//! The parser is hand-rolled (no XML dependency): ANML documents produced
//! by this workspace and by ANMLZoo use only plain tags, double-quoted
//! attributes and XML comments, all of which are handled.

use crate::error::{Error, Result};
use crate::homogeneous::{HomNfa, ReportCode, StartKind, StateId};
use crate::regex::parse_symbol_set;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes an automaton to ANML text.
///
/// State ids are written as `s<N>`; the output round-trips through
/// [`parse_anml`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::compile_pattern;
/// use ca_automata::anml::{to_anml, parse_anml};
///
/// let nfa = compile_pattern("ab")?;
/// let text = to_anml(&nfa, "demo");
/// let back = parse_anml(&text)?;
/// assert_eq!(back.len(), nfa.len());
/// # Ok(())
/// # }
/// ```
pub fn to_anml(nfa: &HomNfa, network_id: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<anml-network id=\"{network_id}\">");
    for (id, st) in nfa.iter() {
        let start_attr = match st.start {
            StartKind::None => String::new(),
            StartKind::StartOfData => " start=\"start-of-data\"".into(),
            StartKind::AllInput => " start=\"all-input\"".into(),
        };
        let _ = write!(
            out,
            "  <state-transition-element id=\"s{}\" symbol-set=\"{}\"{}",
            id.0,
            escape_attr(&st.label.to_string()),
            start_attr
        );
        let succ = nfa.successors(id);
        if succ.is_empty() && st.report.is_none() {
            let _ = writeln!(out, "/>");
            continue;
        }
        let _ = writeln!(out, ">");
        for t in succ {
            let _ = writeln!(out, "    <activate-on-match element=\"s{}\"/>", t.0);
        }
        if let Some(code) = st.report {
            let _ = writeln!(out, "    <report-on-match reportcode=\"{}\"/>", code.0);
        }
        let _ = writeln!(out, "  </state-transition-element>");
    }
    out.push_str("</anml-network>\n");
    out
}

fn escape_attr(s: &str) -> String {
    s.replace('&', "&amp;").replace('"', "&quot;").replace('<', "&lt;").replace('>', "&gt;")
}

fn unescape_attr(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

/// A scanned tag: name, attributes, and whether it self-closes or closes.
#[derive(Debug)]
struct Tag {
    name: String,
    attrs: Vec<(String, String)>,
    closing: bool,
    self_closing: bool,
    line: usize,
}

impl Tag {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn err(&self, reason: impl Into<String>) -> Error {
        Error::ParseAnml { line: self.line, reason: reason.into() }
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'\n' {
                    self.line += 1;
                }
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.bytes[self.pos..].starts_with(b"<!--") {
                match find(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => {
                        self.line += count_newlines(&self.bytes[self.pos..end]);
                        self.pos = end + 3;
                    }
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.bytes[self.pos..].starts_with(b"<?") {
                match find(self.bytes, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn next_tag(&mut self) -> Result<Option<Tag>> {
        self.skip_ws_and_comments()?;
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        if self.bytes[self.pos] != b'<' {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let closing = self.bytes.get(self.pos) == Some(&b'/');
        if closing {
            self.pos += 1;
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a tag name"));
        }
        let name = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        let mut attrs = Vec::new();
        let line = self.line;
        loop {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'\n' {
                    self.line += 1;
                }
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            match self.bytes.get(self.pos) {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Some(Tag { name, attrs, closing, self_closing: false, line }));
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    return Ok(Some(Tag { name, attrs, closing, self_closing: true, line }));
                }
                Some(_) => {
                    let kstart = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
                    {
                        self.pos += 1;
                    }
                    if kstart == self.pos {
                        return Err(self.err("expected an attribute name"));
                    }
                    let key = String::from_utf8_lossy(&self.bytes[kstart..self.pos]).into_owned();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err(format!("attribute '{key}' missing '='")));
                    }
                    self.pos += 1;
                    if self.bytes.get(self.pos) != Some(&b'"') {
                        return Err(self.err(format!("attribute '{key}' value must be quoted")));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'"') {
                        if self.bytes[self.pos] == b'\n' {
                            self.line += 1;
                        }
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = String::from_utf8_lossy(&self.bytes[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((key, unescape_attr(&value)));
                }
                None => return Err(self.err("unterminated tag")),
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

/// Parses an ANML document into a homogeneous NFA.
///
/// State ids in the document are arbitrary strings; they are mapped to
/// dense [`StateId`]s in document order.
///
/// # Errors
///
/// Returns [`Error::ParseAnml`] with a line number for malformed documents,
/// unknown tags, undefined element references or invalid symbol sets.
pub fn parse_anml(text: &str) -> Result<HomNfa> {
    let mut scanner = Scanner { bytes: text.as_bytes(), pos: 0, line: 1 };
    let root = scanner.next_tag()?.ok_or_else(|| scanner.err("empty document"))?;
    if root.name != "anml-network" || root.closing {
        return Err(scanner.err("expected <anml-network> root"));
    }

    struct PendingState {
        label: crate::charclass::CharClass,
        start: StartKind,
        report: Option<ReportCode>,
        targets: Vec<String>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut states: HashMap<String, PendingState> = HashMap::new();
    let mut current: Option<String> = None;

    loop {
        let Some(tag) = scanner.next_tag()? else {
            return Err(scanner.err("missing </anml-network>"));
        };
        match (tag.name.as_str(), tag.closing) {
            ("anml-network", true) => break,
            ("state-transition-element", false) => {
                if current.is_some() {
                    return Err(Error::ParseAnml {
                        line: tag.line,
                        reason: "nested state-transition-element".into(),
                    });
                }
                let id = tag
                    .attr("id")
                    .ok_or(Error::ParseAnml {
                        line: tag.line,
                        reason: "state-transition-element missing id".into(),
                    })?
                    .to_string();
                if states.contains_key(&id) {
                    return Err(Error::ParseAnml {
                        line: tag.line,
                        reason: format!("duplicate element id '{id}'"),
                    });
                }
                let set = tag.attr("symbol-set").ok_or(Error::ParseAnml {
                    line: tag.line,
                    reason: format!("element '{id}' missing symbol-set"),
                })?;
                let label = parse_symbol_set(set).map_err(|e| Error::ParseAnml {
                    line: tag.line,
                    reason: format!("bad symbol-set for '{id}': {e}"),
                })?;
                let start = match tag.attr("start") {
                    None => StartKind::None,
                    Some("all-input") => StartKind::AllInput,
                    Some("start-of-data") => StartKind::StartOfData,
                    Some(other) => {
                        return Err(Error::ParseAnml {
                            line: tag.line,
                            reason: format!("unknown start kind '{other}'"),
                        })
                    }
                };
                order.push(id.clone());
                states.insert(
                    id.clone(),
                    PendingState { label, start, report: None, targets: Vec::new() },
                );
                if !tag.self_closing {
                    current = Some(id);
                }
            }
            ("state-transition-element", true) => {
                if current.take().is_none() {
                    return Err(Error::ParseAnml {
                        line: tag.line,
                        reason: "unmatched </state-transition-element>".into(),
                    });
                }
            }
            ("activate-on-match", false) => {
                let cur = current.as_ref().ok_or(Error::ParseAnml {
                    line: tag.line,
                    reason: "activate-on-match outside an element".into(),
                })?;
                let target = tag.attr("element").ok_or(Error::ParseAnml {
                    line: tag.line,
                    reason: "activate-on-match missing element attribute".into(),
                })?;
                states.get_mut(cur).expect("current exists").targets.push(target.to_string());
                if !tag.self_closing {
                    return Err(Error::ParseAnml {
                        line: tag.line,
                        reason: "activate-on-match must self-close".into(),
                    });
                }
            }
            ("report-on-match", false) => {
                let cur = current.as_ref().ok_or(Error::ParseAnml {
                    line: tag.line,
                    reason: "report-on-match outside an element".into(),
                })?;
                let code = tag.attr("reportcode").unwrap_or("0").parse::<u32>().map_err(|_| {
                    Error::ParseAnml {
                        line: tag.line,
                        reason: "reportcode must be an integer".into(),
                    }
                })?;
                states.get_mut(cur).expect("current exists").report = Some(ReportCode(code));
                if !tag.self_closing {
                    return Err(Error::ParseAnml {
                        line: tag.line,
                        reason: "report-on-match must self-close".into(),
                    });
                }
            }
            (other, _) => {
                return Err(Error::ParseAnml {
                    line: tag.line,
                    reason: format!("unexpected tag '{other}'"),
                })
            }
        }
    }

    // Materialize in document order.
    let mut nfa = HomNfa::with_capacity(order.len());
    let mut ids: HashMap<&str, StateId> = HashMap::new();
    for name in &order {
        let p = &states[name];
        let id = nfa.add_state_full(p.label, p.start, p.report);
        ids.insert(name.as_str(), id);
    }
    for name in &order {
        let from = ids[name.as_str()];
        for target in &states[name].targets {
            let to = *ids.get(target.as_str()).ok_or_else(|| Error::ParseAnml {
                line: 0,
                reason: format!("element '{name}' activates undefined element '{target}'"),
            })?;
            nfa.add_edge(from, to);
        }
    }
    Ok(nfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SparseEngine};
    use crate::regex::compile_patterns;

    #[test]
    fn roundtrip_preserves_automaton() {
        let nfa = compile_patterns(&["ca[rt]", "a.*b", "^x{2,3}"]).unwrap();
        let text = to_anml(&nfa, "t");
        let back = parse_anml(&text).unwrap();
        assert_eq!(back, nfa);
    }

    #[test]
    fn roundtrip_preserves_language() {
        let nfa = compile_patterns(&["hel+o", "[0-9]+z"]).unwrap();
        let back = parse_anml(&to_anml(&nfa, "t")).unwrap();
        for input in [b"hello world".as_slice(), b"123z", b"hzo"] {
            assert_eq!(SparseEngine::new(&nfa).run(input), SparseEngine::new(&back).run(input));
        }
    }

    #[test]
    fn parses_handwritten_document() {
        let text = r#"
            <?xml version="1.0"?>
            <!-- tiny example -->
            <anml-network id="demo">
              <state-transition-element id="start" symbol-set="[bc]" start="all-input">
                <activate-on-match element="end"/>
              </state-transition-element>
              <state-transition-element id="end" symbol-set="a">
                <report-on-match reportcode="5"/>
              </state-transition-element>
            </anml-network>
        "#;
        let nfa = parse_anml(text).unwrap();
        assert_eq!(nfa.len(), 2);
        let ev = SparseEngine::new(&nfa).run(b"zzba");
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].code, ReportCode(5));
    }

    #[test]
    fn self_closing_element_allowed() {
        let text = r#"<anml-network id="x">
            <state-transition-element id="a" symbol-set="q" start="all-input"/>
            <state-transition-element id="b" symbol-set="r" start="all-input">
              <report-on-match reportcode="1"/>
            </state-transition-element>
        </anml-network>"#;
        let nfa = parse_anml(text).unwrap();
        assert_eq!(nfa.len(), 2);
        assert_eq!(nfa.edge_count(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "<anml-network id=\"x\">\n<bogus-tag/>\n</anml-network>";
        let err = parse_anml(text).unwrap_err();
        match err {
            Error::ParseAnml { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("bogus-tag"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn undefined_target_rejected() {
        let text = r#"<anml-network id="x">
            <state-transition-element id="a" symbol-set="q" start="all-input">
              <activate-on-match element="ghost"/>
            </state-transition-element>
        </anml-network>"#;
        let err = parse_anml(text).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let text = r#"<anml-network id="x">
            <state-transition-element id="a" symbol-set="q"/>
            <state-transition-element id="a" symbol-set="r"/>
        </anml-network>"#;
        assert!(parse_anml(text).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn bad_symbol_set_rejected() {
        let text = r#"<anml-network id="x">
            <state-transition-element id="a" symbol-set="[z-a]"/>
        </anml-network>"#;
        assert!(parse_anml(text).is_err());
    }

    #[test]
    fn escaped_attributes_roundtrip() {
        use crate::charclass::CharClass;
        use crate::homogeneous::{HomNfa, StartKind};
        let mut nfa = HomNfa::new();
        // label containing '<', '>', '&' and '"'
        nfa.add_state_full(CharClass::of(b"<>&\""), StartKind::AllInput, Some(ReportCode(0)));
        let back = parse_anml(&to_anml(&nfa, "esc")).unwrap();
        assert_eq!(back, nfa);
    }
}
