//! Classical (edge-labelled) NFAs with ε-transitions.
//!
//! This is the target of the Thompson construction and the source of the
//! classical → homogeneous transform ([`crate::homogenize`]). States are
//! unlabelled; transitions carry a [`CharClass`] or are ε.

use crate::charclass::CharClass;
use crate::error::{Error, Result};
use crate::homogeneous::ReportCode;
use std::collections::BTreeSet;
use std::fmt;

/// A classical NFA with optional ε-transitions.
///
/// # Examples
///
/// ```
/// use ca_automata::{ClassicalNfa, CharClass, ReportCode};
///
/// // Accepts "ab"
/// let mut nfa = ClassicalNfa::new();
/// let s0 = nfa.add_state();
/// let s1 = nfa.add_state();
/// let s2 = nfa.add_state();
/// nfa.add_start(s0);
/// nfa.set_accept(s2, ReportCode(0));
/// nfa.add_transition(s0, CharClass::byte(b'a'), s1);
/// nfa.add_transition(s1, CharClass::byte(b'b'), s2);
/// assert!(nfa.accepts(b"ab"));
/// assert!(!nfa.accepts(b"aa"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassicalNfa {
    /// transitions[q] = list of (class, target)
    trans: Vec<Vec<(CharClass, u32)>>,
    /// eps[q] = ε-successors of q
    eps: Vec<Vec<u32>>,
    accept: Vec<Option<ReportCode>>,
    starts: Vec<u32>,
}

impl ClassicalNfa {
    /// Creates an empty NFA.
    pub fn new() -> ClassicalNfa {
        ClassicalNfa::default()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// `true` if there are no states.
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// Number of non-ε transitions.
    pub fn edge_count(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// Number of ε-transitions.
    pub fn eps_count(&self) -> usize {
        self.eps.iter().map(Vec::len).sum()
    }

    /// Adds a state; returns its index.
    pub fn add_state(&mut self) -> u32 {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.accept.push(None);
        (self.trans.len() - 1) as u32
    }

    /// Marks `q` as a start state.
    pub fn add_start(&mut self, q: u32) {
        if !self.starts.contains(&q) {
            self.starts.push(q);
        }
    }

    /// The start states.
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Marks `q` accepting with the given report code.
    pub fn set_accept(&mut self, q: u32, code: ReportCode) {
        self.accept[q as usize] = Some(code);
    }

    /// The report code of `q`, if accepting.
    pub fn accept_code(&self, q: u32) -> Option<ReportCode> {
        self.accept[q as usize]
    }

    /// Adds a transition on `class` from `from` to `to`.
    pub fn add_transition(&mut self, from: u32, class: CharClass, to: u32) {
        self.trans[from as usize].push((class, to));
    }

    /// Adds an ε-transition from `from` to `to`.
    pub fn add_epsilon(&mut self, from: u32, to: u32) {
        if from != to && !self.eps[from as usize].contains(&to) {
            self.eps[from as usize].push(to);
        }
    }

    /// The labelled transitions out of `q`.
    pub fn transitions(&self, q: u32) -> &[(CharClass, u32)] {
        &self.trans[q as usize]
    }

    /// The ε-successors of `q`.
    pub fn epsilons(&self, q: u32) -> &[u32] {
        &self.eps[q as usize]
    }

    /// ε-closure of a set of states (the set itself plus everything
    /// reachable through ε edges alone), as a sorted set.
    pub fn eps_closure(&self, set: impl IntoIterator<Item = u32>) -> BTreeSet<u32> {
        let mut out: BTreeSet<u32> = BTreeSet::new();
        let mut stack: Vec<u32> = set.into_iter().collect();
        while let Some(q) = stack.pop() {
            if out.insert(q) {
                for &t in &self.eps[q as usize] {
                    if !out.contains(&t) {
                        stack.push(t);
                    }
                }
            }
        }
        out
    }

    /// Produces an equivalent NFA with no ε-transitions.
    ///
    /// Standard closure construction: each state gains the labelled
    /// transitions and acceptance of its ε-closure. Start-state closures are
    /// folded into the start set. Unreachable states are retained (callers
    /// may prune); ε edges are dropped.
    #[must_use]
    pub fn without_epsilon(&self) -> ClassicalNfa {
        let mut out = ClassicalNfa::new();
        for _ in 0..self.len() {
            out.add_state();
        }
        for q in 0..self.len() as u32 {
            let closure = self.eps_closure([q]);
            for &c in &closure {
                // inherit acceptance from anything in the closure
                if out.accept[q as usize].is_none() {
                    if let Some(code) = self.accept[c as usize] {
                        out.accept[q as usize] = Some(code);
                    }
                }
                for &(class, to) in &self.trans[c as usize] {
                    out.add_transition(q, class, to);
                }
            }
        }
        for &s in &self.starts {
            out.add_start(s);
        }
        debug_assert_eq!(out.eps_count(), 0);
        out
    }

    /// Reference executor: runs the NFA over `input` and returns, for each
    /// position `i`, the set of report codes accepted after consuming
    /// `input[..=i]`.
    ///
    /// Quadratic and allocation-heavy by design — this is the trusted oracle
    /// the fast engines are tested against, not a production path.
    pub fn run_reference(&self, input: &[u8]) -> Vec<Vec<ReportCode>> {
        let mut events: Vec<Vec<ReportCode>> = Vec::with_capacity(input.len());
        // Unanchored semantics: the start set is re-seeded at every position,
        // matching homogeneous AllInput starts. Anchoring is expressed
        // structurally by the front-end before reaching this executor.
        let seed: BTreeSet<u32> = self.eps_closure(self.starts.iter().copied());
        let mut current: BTreeSet<u32> = seed.clone();
        for &b in input {
            let mut next: BTreeSet<u32> = BTreeSet::new();
            for &q in &current {
                for &(class, to) in &self.trans[q as usize] {
                    if class.contains(b) {
                        next.insert(to);
                    }
                }
            }
            let next = self.eps_closure(next);
            let mut codes: BTreeSet<ReportCode> = BTreeSet::new();
            for &q in &next {
                if let Some(code) = self.accept[q as usize] {
                    codes.insert(code);
                }
            }
            events.push(codes.into_iter().collect());
            current = next.union(&seed).copied().collect();
        }
        events
    }

    /// `true` if some prefix scan of `input` reaches an accepting state at
    /// its final position (unanchored containment test).
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.run_reference(input).iter().any(|v| !v.is_empty())
    }

    /// Checks structural invariants (edges in range, starts in range).
    ///
    /// # Errors
    ///
    /// Returns [`Error::StateOutOfRange`] or [`Error::InvalidAutomaton`].
    pub fn validate(&self) -> Result<()> {
        let n = self.len();
        for q in 0..n {
            for &(class, to) in &self.trans[q] {
                if to as usize >= n {
                    return Err(Error::StateOutOfRange { state: to, len: n });
                }
                if class.is_empty() {
                    return Err(Error::InvalidAutomaton(format!(
                        "transition out of state {q} has an empty class"
                    )));
                }
            }
            for &to in &self.eps[q] {
                if to as usize >= n {
                    return Err(Error::StateOutOfRange { state: to, len: n });
                }
            }
        }
        for &s in &self.starts {
            if s as usize >= n {
                return Err(Error::StateOutOfRange { state: s, len: n });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ClassicalNfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ClassicalNfa({} states, {} edges, {} eps)",
            self.len(),
            self.edge_count(),
            self.eps_count()
        )?;
        for q in 0..self.len() as u32 {
            let start = if self.starts.contains(&q) { ">" } else { " " };
            let acc = self.accept[q as usize].map(|c| format!(" !{c}")).unwrap_or_default();
            write!(f, " {start}q{q}{acc}:")?;
            for &(class, to) in &self.trans[q as usize] {
                write!(f, " {class}->q{to}")?;
            }
            for &to in &self.eps[q as usize] {
                write!(f, " eps->q{to}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a(b|c)*d` via explicit ε edges.
    fn sample() -> ClassicalNfa {
        let mut n = ClassicalNfa::new();
        let q: Vec<u32> = (0..5).map(|_| n.add_state()).collect();
        n.add_start(q[0]);
        n.add_transition(q[0], CharClass::byte(b'a'), q[1]);
        n.add_epsilon(q[1], q[2]);
        n.add_transition(q[2], CharClass::of(b"bc"), q[3]);
        n.add_epsilon(q[3], q[2]);
        n.add_epsilon(q[1], q[4]);
        n.add_epsilon(q[3], q[4]);
        // q4 --d--> accept (reuse q0 slot? no: add a fresh accept state)
        let acc = n.add_state();
        n.add_transition(q[4], CharClass::byte(b'd'), acc);
        n.set_accept(acc, ReportCode(1));
        n
    }

    #[test]
    fn closure_contains_self_and_transitive() {
        let n = sample();
        let c = n.eps_closure([1]);
        assert!(c.contains(&1) && c.contains(&2) && c.contains(&4));
        assert!(!c.contains(&3));
    }

    #[test]
    fn reference_run_accepts_language() {
        let n = sample();
        assert!(n.accepts(b"ad"));
        assert!(n.accepts(b"abcd"));
        assert!(n.accepts(b"abbbccd"));
        assert!(!n.accepts(b"a"));
        assert!(!n.accepts(b"bd"));
        // unanchored: embedded occurrence matches
        assert!(n.accepts(b"xxabdxx"));
    }

    #[test]
    fn epsilon_elimination_preserves_language() {
        let n = sample();
        let ne = n.without_epsilon();
        assert_eq!(ne.eps_count(), 0);
        for input in [b"ad".as_slice(), b"abcd", b"abbbccd", b"a", b"bd", b"xxabdxx", b"", b"dddd"]
        {
            assert_eq!(n.run_reference(input), ne.run_reference(input), "input {input:?}");
        }
    }

    #[test]
    fn report_positions_are_exact() {
        let n = sample();
        let ev = n.run_reference(b"xadx");
        assert!(ev[0].is_empty());
        assert!(ev[1].is_empty());
        assert_eq!(ev[2], vec![ReportCode(1)]); // 'd' consumed at index 2
        assert!(ev[3].is_empty());
    }

    #[test]
    fn validation_catches_bad_edges() {
        let mut n = ClassicalNfa::new();
        let q = n.add_state();
        n.add_start(q);
        n.trans[0].push((CharClass::byte(b'a'), 9));
        assert!(matches!(n.validate(), Err(Error::StateOutOfRange { state: 9, .. })));
    }

    #[test]
    fn empty_class_rejected() {
        let mut n = ClassicalNfa::new();
        let a = n.add_state();
        let b = n.add_state();
        n.add_transition(a, CharClass::EMPTY, b);
        assert!(n.validate().is_err());
    }

    #[test]
    fn self_epsilon_ignored() {
        let mut n = ClassicalNfa::new();
        let a = n.add_state();
        n.add_epsilon(a, a);
        assert_eq!(n.eps_count(), 0);
    }

    #[test]
    fn display_smoke() {
        let s = sample().to_string();
        assert!(s.contains("ClassicalNfa"));
        assert!(s.contains("eps->"));
    }
}
