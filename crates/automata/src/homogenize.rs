//! Classical → homogeneous NFA transform.
//!
//! An ε-free classical NFA labels *edges*; a homogeneous (ANML) NFA labels
//! *states*. The transform splits every classical state into one homogeneous
//! state per distinct incoming symbol class — the standard technique (cf.
//! Roy et al., "Programming Techniques for the Automata Processor") the
//! Cache Automaton compiler relies on. The worked example of the paper
//! (Figure 1) splits state `S1` into `S1_a`, `S1_b`, `S1_c` in exactly this
//! way.

use crate::charclass::CharClass;
use crate::error::{Error, Result};
use crate::homogeneous::{HomNfa, StartKind};
use crate::nfa::ClassicalNfa;
use std::collections::HashMap;

/// Converts an ε-free classical NFA into an equivalent homogeneous NFA.
///
/// `start_kind` selects how the classical start set is expressed: the
/// successors of classical start states become homogeneous start states of
/// this kind ([`StartKind::AllInput`] for unanchored scanning,
/// [`StartKind::StartOfData`] for anchored patterns).
///
/// # Errors
///
/// * [`Error::InvalidAutomaton`] if the input still has ε-transitions
///   (call [`ClassicalNfa::without_epsilon`] first) or if a start state is
///   accepting (an empty match is unrepresentable in homogeneous form).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::{ClassicalNfa, CharClass, ReportCode, StartKind};
/// use ca_automata::homogenize::homogenize;
///
/// // S0 --a--> S1 --b--> S2(accept), plus S0 --b--> S1:
/// // S1 splits into S1_a and S1_b.
/// let mut c = ClassicalNfa::new();
/// let s0 = c.add_state();
/// let s1 = c.add_state();
/// let s2 = c.add_state();
/// c.add_start(s0);
/// c.add_transition(s0, CharClass::byte(b'a'), s1);
/// c.add_transition(s0, CharClass::byte(b'b'), s1);
/// c.add_transition(s1, CharClass::byte(b'b'), s2);
/// c.set_accept(s2, ReportCode(0));
///
/// let h = homogenize(&c, StartKind::AllInput)?;
/// assert_eq!(h.len(), 3); // S1_a, S1_b, S2_b
/// # Ok(())
/// # }
/// ```
pub fn homogenize(nfa: &ClassicalNfa, start_kind: StartKind) -> Result<HomNfa> {
    if nfa.eps_count() != 0 {
        return Err(Error::InvalidAutomaton(
            "homogenize requires an epsilon-free NFA; call without_epsilon() first".into(),
        ));
    }
    for &s in nfa.starts() {
        if nfa.accept_code(s).is_some() {
            return Err(Error::InvalidAutomaton(
                "a start state is accepting: empty matches are unrepresentable".into(),
            ));
        }
    }

    // Collect the distinct incoming classes of every classical state.
    let mut incoming: Vec<Vec<CharClass>> = vec![Vec::new(); nfa.len()];
    for q in 0..nfa.len() as u32 {
        for &(class, to) in nfa.transitions(q) {
            let list = &mut incoming[to as usize];
            if !list.contains(&class) {
                list.push(class);
            }
        }
    }

    // One homogeneous state per (classical state, incoming class) pair.
    let mut out = HomNfa::new();
    let mut index: HashMap<(u32, CharClass), crate::homogeneous::StateId> = HashMap::new();
    for (q, classes) in incoming.iter().enumerate() {
        for &class in classes {
            let id = out.add_state_full(class, StartKind::None, nfa.accept_code(q as u32));
            index.insert((q as u32, class), id);
        }
    }

    // Mark start copies: successors of classical start states self-enable.
    for &s in nfa.starts() {
        for &(class, to) in nfa.transitions(s) {
            let id = index[&(to, class)];
            out.state_mut(id).start = start_kind;
        }
    }

    // Edges: every copy of p inherits p's outgoing transitions; the target
    // copy is selected by the transition's class.
    for p in 0..nfa.len() as u32 {
        for &copy_class in &incoming[p as usize] {
            let from = index[&(p, copy_class)];
            for &(class, to) in nfa.transitions(p) {
                let target = index[&(to, class)];
                out.add_edge(from, target);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SparseEngine};
    use crate::homogeneous::ReportCode;

    /// Figure 1 of the paper: patterns {bat, bar, bart, ar, at, art,
    /// car, cat, cart} expressed as a classical NFA, homogenized.
    fn figure1_classical() -> ClassicalNfa {
        let mut n = ClassicalNfa::new();
        let s0 = n.add_state(); // virtual start
        let s1 = n.add_state(); // after b/c or directly a
        let s2 = n.add_state(); // 'a' seen
        let s3 = n.add_state(); // 't' accept
        let s4 = n.add_state(); // 'r' accept
        let s5 = n.add_state(); // 't' after r, accept
        n.add_start(s0);
        n.add_transition(s0, CharClass::byte(b'b'), s1);
        n.add_transition(s0, CharClass::byte(b'c'), s1);
        n.add_transition(s0, CharClass::byte(b'a'), s2);
        n.add_transition(s1, CharClass::byte(b'a'), s2);
        n.add_transition(s2, CharClass::byte(b't'), s3);
        n.add_transition(s2, CharClass::byte(b'r'), s4);
        n.add_transition(s4, CharClass::byte(b't'), s5);
        n.set_accept(s3, ReportCode(0));
        n.set_accept(s4, ReportCode(1));
        n.set_accept(s5, ReportCode(2));
        n
    }

    #[test]
    fn splits_states_per_incoming_class() {
        let c = figure1_classical();
        let h = homogenize(&c, StartKind::AllInput).unwrap();
        // s1 has incoming {b},{c} -> 2 copies; s2 has {a} -> 1; s3,s4,s5 1 each.
        assert_eq!(h.len(), 6);
        assert!(h.validate().is_ok());
    }

    #[test]
    fn language_is_preserved() {
        let c = figure1_classical();
        let h = homogenize(&c, StartKind::AllInput).unwrap();
        let mut eng = SparseEngine::new(&h);
        for (input, expect) in [
            (b"bat".as_slice(), true),
            (b"bart", true),
            (b"car", true),
            (b"cart", true),
            (b"art", true),
            (b"xxatxx", true),
            (b"b", false),
            (b"ba", false),
            (b"rt", false),
        ] {
            let got = !eng.run(input).is_empty();
            let want = c.accepts(input);
            assert_eq!(want, expect, "oracle drifted on {input:?}");
            assert_eq!(got, want, "input {input:?}");
        }
    }

    #[test]
    fn merged_classes_do_not_split() {
        // Two edges with the *same* class into one state -> one copy.
        let mut c = ClassicalNfa::new();
        let s0 = c.add_state();
        let s1 = c.add_state();
        let s2 = c.add_state();
        c.add_start(s0);
        c.add_transition(s0, CharClass::byte(b'a'), s2);
        c.add_transition(s1, CharClass::byte(b'a'), s2);
        c.add_transition(s0, CharClass::byte(b'x'), s1);
        c.set_accept(s2, ReportCode(0));
        let h = homogenize(&c, StartKind::AllInput).unwrap();
        // copies: s1_x, s2_a -> 2 states
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn rejects_epsilon_input() {
        let mut c = ClassicalNfa::new();
        let a = c.add_state();
        let b = c.add_state();
        c.add_start(a);
        c.add_epsilon(a, b);
        assert!(homogenize(&c, StartKind::AllInput).is_err());
    }

    #[test]
    fn rejects_accepting_start() {
        let mut c = ClassicalNfa::new();
        let a = c.add_state();
        c.add_start(a);
        c.set_accept(a, ReportCode(0));
        assert!(homogenize(&c, StartKind::AllInput).is_err());
    }

    #[test]
    fn anchored_start_kind_applied() {
        let mut c = ClassicalNfa::new();
        let s0 = c.add_state();
        let s1 = c.add_state();
        c.add_start(s0);
        c.add_transition(s0, CharClass::byte(b'a'), s1);
        c.set_accept(s1, ReportCode(0));
        let h = homogenize(&c, StartKind::StartOfData).unwrap();
        assert_eq!(h.state(h.start_states()[0]).start, StartKind::StartOfData);
    }
}
