//! Homogeneous (ANML-style) non-deterministic finite automata.
//!
//! In a *homogeneous* NFA every transition entering a state carries the same
//! symbol class, so the class can be attached to the state itself — Micron's
//! ANML representation, and the form Cache Automaton maps onto SRAM arrays
//! (one state = one *state-transition element*, STE).
//!
//! Execution semantics (per input symbol, both phases of the paper):
//!
//! 1. **state-match** — every *enabled* state whose [`CharClass`] label
//!    contains the current symbol *matches*;
//! 2. **state-transition** — matching states enable their successors for the
//!    next symbol; matching states with a report code emit a
//!    [`MatchEvent`](crate::engine::MatchEvent).
//!
//! States with [`StartKind::AllInput`] are enabled before every symbol;
//! states with [`StartKind::StartOfData`] only before the first.

use crate::charclass::CharClass;
use crate::error::{Error, Result};
use std::fmt;

/// Identifier of a state within a [`HomNfa`].
///
/// Plain index newtype; only meaningful relative to the automaton that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for StateId {
    fn from(v: u32) -> StateId {
        StateId(v)
    }
}

/// Report code attached to an accepting state.
///
/// Typically identifies which of many patterns matched, mirroring ANML's
/// `report-on-match` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReportCode(pub u32);

impl fmt::Display for ReportCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// When a state is self-enabled (independent of predecessor activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StartKind {
    /// Never self-enabled; enabled only by a matching predecessor.
    #[default]
    None,
    /// Enabled before the first input symbol only (anchored `^...`).
    StartOfData,
    /// Enabled before every input symbol (unanchored patterns).
    AllInput,
}

impl StartKind {
    /// `true` for either start flavour.
    pub fn is_start(self) -> bool {
        !matches!(self, StartKind::None)
    }
}

/// One homogeneous state (one STE).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Symbols this state matches.
    pub label: CharClass,
    /// Self-enabling behaviour.
    pub start: StartKind,
    /// Report code emitted when this state matches, if it is accepting.
    pub report: Option<ReportCode>,
}

impl State {
    /// A plain, non-start, non-reporting state with the given label.
    pub fn new(label: CharClass) -> State {
        State { label, start: StartKind::None, report: None }
    }
}

/// A homogeneous NFA: the central automaton type of this workspace.
///
/// Construction is incremental ([`add_state`], [`add_edge`]); most callers
/// obtain one from the regex front-end
/// ([`compile_pattern`](crate::regex::compile_pattern)) or the ANML parser.
///
/// # Examples
///
/// Build `a(b|c)` by hand and inspect it:
///
/// ```
/// use ca_automata::{CharClass, HomNfa, StartKind, ReportCode};
///
/// let mut nfa = HomNfa::new();
/// let a = nfa.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, None);
/// let bc = nfa.add_state_full(CharClass::of(b"bc"), StartKind::None, Some(ReportCode(0)));
/// nfa.add_edge(a, bc);
/// assert_eq!(nfa.len(), 2);
/// assert_eq!(nfa.successors(a), &[bc]);
/// ```
///
/// [`add_state`]: HomNfa::add_state
/// [`add_edge`]: HomNfa::add_edge
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HomNfa {
    states: Vec<State>,
    succ: Vec<Vec<StateId>>,
}

impl HomNfa {
    /// Creates an empty automaton.
    pub fn new() -> HomNfa {
        HomNfa::default()
    }

    /// Creates an empty automaton with room for `n` states.
    pub fn with_capacity(n: usize) -> HomNfa {
        HomNfa { states: Vec::with_capacity(n), succ: Vec::with_capacity(n) }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of transitions.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Adds a plain state with the given label; returns its id.
    pub fn add_state(&mut self, label: CharClass) -> StateId {
        self.add_state_full(label, StartKind::None, None)
    }

    /// Adds a state with full control over start kind and report code.
    pub fn add_state_full(
        &mut self,
        label: CharClass,
        start: StartKind,
        report: Option<ReportCode>,
    ) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(State { label, start, report });
        self.succ.push(Vec::new());
        id
    }

    /// Adds a transition `from -> to`. Duplicate edges are kept out.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_edge(&mut self, from: StateId, to: StateId) {
        assert!(from.index() < self.states.len(), "edge source {from} out of range");
        assert!(to.index() < self.states.len(), "edge target {to} out of range");
        let list = &mut self.succ[from.index()];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// Shared view of a state.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Mutable view of a state.
    pub fn state_mut(&mut self, id: StateId) -> &mut State {
        &mut self.states[id.index()]
    }

    /// The successors of `id`, in insertion order.
    pub fn successors(&self, id: StateId) -> &[StateId] {
        &self.succ[id.index()]
    }

    /// Iterates over `(id, &state)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &State)> {
        self.states.iter().enumerate().map(|(i, s)| (StateId(i as u32), s))
    }

    /// Ids of all start states (either kind).
    pub fn start_states(&self) -> Vec<StateId> {
        self.iter().filter(|(_, s)| s.start.is_start()).map(|(i, _)| i).collect()
    }

    /// Ids of all reporting states.
    pub fn reporting_states(&self) -> Vec<StateId> {
        self.iter().filter(|(_, s)| s.report.is_some()).map(|(i, _)| i).collect()
    }

    /// Computes the predecessor lists (inverse adjacency).
    pub fn predecessors(&self) -> Vec<Vec<StateId>> {
        let mut pred = vec![Vec::new(); self.len()];
        for (i, succ) in self.succ.iter().enumerate() {
            for &t in succ {
                pred[t.index()].push(StateId(i as u32));
            }
        }
        pred
    }

    /// Appends all states and edges of `other`, remapping its ids.
    ///
    /// Returns the id offset: state `s` of `other` becomes
    /// `StateId(s.0 + offset)` in `self`. Used to assemble multi-pattern
    /// automata (each pattern one connected component).
    pub fn append(&mut self, other: &HomNfa) -> u32 {
        let offset = self.states.len() as u32;
        self.states.extend(other.states.iter().cloned());
        for list in &other.succ {
            self.succ.push(list.iter().map(|s| StateId(s.0 + offset)).collect());
        }
        offset
    }

    /// Builds the union of many automata, shifting each pattern's report
    /// codes by its index when `renumber_reports` is set.
    pub fn union_all<'a, I>(parts: I, renumber_reports: bool) -> HomNfa
    where
        I: IntoIterator<Item = &'a HomNfa>,
    {
        let mut out = HomNfa::new();
        for (k, part) in parts.into_iter().enumerate() {
            let offset = out.append(part);
            if renumber_reports {
                for i in 0..part.len() {
                    let id = StateId(offset + i as u32);
                    if out.state(id).report.is_some() {
                        out.state_mut(id).report = Some(ReportCode(k as u32));
                    }
                }
            }
        }
        out
    }

    /// Checks structural invariants: every edge in range, at least one start
    /// state and one reporting state when the automaton is non-empty, no
    /// empty labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAutomaton`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        for (i, list) in self.succ.iter().enumerate() {
            for t in list {
                if t.index() >= self.len() {
                    return Err(Error::InvalidAutomaton(format!(
                        "edge s{i} -> {t} points past the last state"
                    )));
                }
            }
        }
        if self.is_empty() {
            return Ok(());
        }
        for (id, s) in self.iter() {
            if s.label.is_empty() {
                return Err(Error::InvalidAutomaton(format!("state {id} has an empty label")));
            }
        }
        if self.start_states().is_empty() {
            return Err(Error::InvalidAutomaton("no start state".into()));
        }
        if self.reporting_states().is_empty() {
            return Err(Error::InvalidAutomaton("no reporting state".into()));
        }
        Ok(())
    }

    /// Keeps exactly the states for which `keep` is true, dropping all
    /// edges touching removed states. Returns the old-id → new-id map.
    pub fn retain_states(&mut self, keep: &[bool]) -> Vec<Option<StateId>> {
        assert_eq!(keep.len(), self.len(), "keep mask length mismatch");
        let mut map: Vec<Option<StateId>> = vec![None; self.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                map[i] = Some(StateId(next));
                next += 1;
            }
        }
        let mut states = Vec::with_capacity(next as usize);
        let mut succ = Vec::with_capacity(next as usize);
        for (i, &k) in keep.iter().enumerate() {
            if k {
                states.push(self.states[i].clone());
                succ.push(self.succ[i].iter().filter_map(|t| map[t.index()]).collect::<Vec<_>>());
            }
        }
        self.states = states;
        self.succ = succ;
        map
    }

    /// Average out-degree (fan-out) across states.
    pub fn avg_out_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.edge_count() as f64 / self.len() as f64
    }

    /// Maximum in-degree (fan-in) across states.
    pub fn max_in_degree(&self) -> usize {
        self.predecessors().iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl fmt::Display for HomNfa {
    /// A compact multi-line listing: one state per line with flags and
    /// successor ids. Intended for debugging small automata.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "HomNfa({} states, {} edges)", self.len(), self.edge_count())?;
        for (id, s) in self.iter() {
            let start = match s.start {
                StartKind::None => "",
                StartKind::StartOfData => " ^",
                StartKind::AllInput => " ^*",
            };
            let rep = s.report.map(|r| format!(" !{r}")).unwrap_or_default();
            let succ: Vec<String> = self.successors(id).iter().map(|t| t.to_string()).collect();
            writeln!(f, "  {id} {}{start}{rep} -> [{}]", s.label, succ.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> HomNfa {
        // a -> b -> c(report)
        let mut n = HomNfa::new();
        let a = n.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, None);
        let b = n.add_state(CharClass::byte(b'b'));
        let c = n.add_state_full(CharClass::byte(b'c'), StartKind::None, Some(ReportCode(7)));
        n.add_edge(a, b);
        n.add_edge(b, c);
        n
    }

    #[test]
    fn build_and_query() {
        let n = abc();
        assert_eq!(n.len(), 3);
        assert_eq!(n.edge_count(), 2);
        assert_eq!(n.start_states(), vec![StateId(0)]);
        assert_eq!(n.reporting_states(), vec![StateId(2)]);
        assert_eq!(n.successors(StateId(0)), &[StateId(1)]);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut n = abc();
        n.add_edge(StateId(0), StateId(1));
        assert_eq!(n.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_target_out_of_range_panics() {
        let mut n = abc();
        n.add_edge(StateId(0), StateId(99));
    }

    #[test]
    fn predecessors_invert_successors() {
        let n = abc();
        let pred = n.predecessors();
        assert!(pred[0].is_empty());
        assert_eq!(pred[1], vec![StateId(0)]);
        assert_eq!(pred[2], vec![StateId(1)]);
    }

    #[test]
    fn append_remaps_ids() {
        let mut n = abc();
        let off = n.append(&abc());
        assert_eq!(off, 3);
        assert_eq!(n.len(), 6);
        assert_eq!(n.successors(StateId(3)), &[StateId(4)]);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn union_all_renumbers_reports() {
        let u = HomNfa::union_all([&abc(), &abc(), &abc()], true);
        assert_eq!(u.len(), 9);
        let codes: Vec<u32> =
            u.reporting_states().iter().map(|&s| u.state(s).report.unwrap().0).collect();
        assert_eq!(codes, vec![0, 1, 2]);
        // Without renumbering the original codes persist.
        let u = HomNfa::union_all([&abc(), &abc()], false);
        assert!(u.reporting_states().iter().all(|&s| u.state(s).report == Some(ReportCode(7))));
    }

    #[test]
    fn validate_rejects_defects() {
        let mut n = HomNfa::new();
        n.add_state(CharClass::byte(b'a'));
        // no start, no report
        assert!(n.validate().is_err());

        let mut n = HomNfa::new();
        n.add_state_full(CharClass::EMPTY, StartKind::AllInput, Some(ReportCode(0)));
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("empty label"), "{err}");
    }

    #[test]
    fn retain_states_compacts() {
        let mut n = abc();
        let map = n.retain_states(&[true, false, true]);
        assert_eq!(n.len(), 2);
        assert_eq!(map[0], Some(StateId(0)));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(StateId(1)));
        // edge a->b dropped with b; c keeps no preds
        assert_eq!(n.edge_count(), 0);
    }

    #[test]
    fn degree_statistics() {
        let n = abc();
        assert!((n.avg_out_degree() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(n.max_in_degree(), 1);
        assert_eq!(HomNfa::new().avg_out_degree(), 0.0);
    }

    #[test]
    fn display_lists_states() {
        let s = abc().to_string();
        assert!(s.contains("3 states"));
        assert!(s.contains("s0"));
        assert!(s.contains("!r7"));
    }
}
