//! NFA toolchain for the Cache Automaton reproduction.
//!
//! This crate is the software substrate the paper's architecture operates
//! on: symbol classes, regular-expression and ANML front-ends, homogeneous
//! (STE-per-state) automata, structural analyses, the prefix-merging
//! optimizer used by the space-optimized design, and three independent CPU
//! reference engines.
//!
//! # Quick tour
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ca_automata::regex::compile_patterns;
//! use ca_automata::engine::{Engine, SparseEngine};
//! use ca_automata::analysis::connected_components;
//!
//! // Compile a small dictionary into one multi-pattern NFA.
//! let nfa = compile_patterns(&["bat", "bar.?t", "ca[rt]t?"])?;
//! assert_eq!(connected_components(&nfa).len(), 3);
//!
//! // Scan a stream; each event carries the pattern index and end offset.
//! let events = SparseEngine::new(&nfa).run(b"a bart in a cart");
//! assert!(!events.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! # Modules
//!
//! * [`charclass`] — 256-bit symbol classes (the STE column image).
//! * [`regex`] — pattern parser plus Glushkov and Thompson compilers.
//! * [`homogeneous`] — the central [`HomNfa`] automaton type.
//! * [`nfa`] / [`homogenize`] — classical ε-NFAs and the homogenization
//!   transform.
//! * [`anml`] — ANML parse/serialize.
//! * [`analysis`] — connected components and summary statistics.
//! * [`build`] — combinator API for programmatic pattern construction.
//! * [`optimize`] — prefix merging and dead-state removal (CA_S flow).
//! * [`engine`] — sparse, bit-parallel and lazy-DFA reference engines.
//! * [`stride`] — Impala-style 4-bit symbol transform (extension).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod anml;
pub mod build;
pub mod charclass;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod homogeneous;
pub mod homogenize;
pub mod nfa;
pub mod optimize;
pub mod regex;
pub mod stride;

pub use charclass::CharClass;
pub use error::{Error, Result};
pub use fingerprint::{Fingerprint, StableHasher};
pub use homogeneous::{HomNfa, ReportCode, StartKind, State, StateId};
pub use nfa::ClassicalNfa;
