//! CPU reference engines for homogeneous NFAs.
//!
//! Three independent implementations with identical observable behaviour
//! (tested against each other and against the hardware fabric simulator):
//!
//! * [`SparseEngine`] — VASim-style sparse active-set interpreter; fast when
//!   few states are active. This is the paper's CPU baseline and the
//!   simulator used for its evaluation.
//! * [`BitsetEngine`] — dense bit-parallel interpreter whose per-symbol
//!   match rows are exactly the SRAM images the hardware reads; the
//!   software twin of the fabric.
//! * [`DfaEngine`] — lazy subset construction; an oracle for differential
//!   testing on small automata.
//!
//! All engines implement unanchored ANML semantics: `all-input` start states
//! are enabled before every symbol, `start-of-data` states only before the
//! first, and a reporting state emits its code at the position of the symbol
//! it matched.

mod bitset;
mod dfa;
mod sparse;

pub use bitset::BitsetEngine;
pub use dfa::{DfaEngine, DfaLimitExceeded};
pub use sparse::SparseEngine;

use crate::homogeneous::ReportCode;
use std::fmt;

/// One reported match: pattern `code` matched ending at input offset `pos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchEvent {
    /// Byte offset of the input symbol whose consumption triggered the
    /// report (0-based; the match ends *at* this symbol).
    pub pos: u64,
    /// Report code of the accepting state (usually the pattern index).
    pub code: ReportCode,
}

impl MatchEvent {
    /// Creates a match event.
    pub fn new(pos: u64, code: ReportCode) -> MatchEvent {
        MatchEvent { pos, code }
    }
}

impl fmt::Display for MatchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.code, self.pos)
    }
}

/// Aggregate activity statistics of an engine run.
///
/// `matched` counts states whose label matched the input symbol while
/// enabled — the quantity the paper's Table 1 reports as *Avg. Active
/// States* and the driver of the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Symbols processed.
    pub cycles: u64,
    /// Sum over cycles of the number of matched states.
    pub total_matched: u64,
    /// Maximum matched states in any one cycle.
    pub max_matched: u64,
    /// Sum over cycles of enabled (non-start-driven) states entering the cycle.
    pub total_enabled: u64,
    /// Reports emitted.
    pub reports: u64,
}

impl EngineStats {
    /// Mean matched states per cycle (the paper's "Avg. Active States").
    pub fn avg_active(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_matched as f64 / self.cycles as f64
        }
    }
}

/// Common interface of the reference engines.
///
/// Engines are stateless between `run` calls (each call starts a fresh
/// scan); `&mut self` only grants access to internal scratch buffers.
pub trait Engine {
    /// Scans `input` and returns all match events in position order,
    /// deduplicated per `(position, code)`.
    fn run(&mut self, input: &[u8]) -> Vec<MatchEvent>;

    /// Scans `input`, returning events plus activity statistics.
    fn run_stats(&mut self, input: &[u8]) -> (Vec<MatchEvent>, EngineStats);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_display_and_order() {
        let a = MatchEvent::new(3, ReportCode(1));
        let b = MatchEvent::new(3, ReportCode(2));
        let c = MatchEvent::new(4, ReportCode(0));
        assert_eq!(a.to_string(), "r1@3");
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn stats_avg() {
        let s = EngineStats { cycles: 4, total_matched: 6, ..Default::default() };
        assert!((s.avg_active() - 1.5).abs() < 1e-12);
        assert_eq!(EngineStats::default().avg_active(), 0.0);
    }
}
