//! Sparse active-set interpreter (VASim-style).

use super::{Engine, EngineStats, MatchEvent};
use crate::charclass::CharClass;
use crate::homogeneous::{HomNfa, ReportCode, StartKind};

/// Sparse active-set engine: tracks only the enabled states, so cost per
/// symbol is proportional to automaton *activity*, not size.
///
/// This mirrors how VASim (the paper's simulator) executes NFAs and is the
/// measured CPU baseline of `ca-baselines`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::compile_patterns;
/// use ca_automata::engine::{Engine, SparseEngine};
///
/// let nfa = compile_patterns(&["cat", "car"])?;
/// let mut eng = SparseEngine::new(&nfa);
/// let hits = eng.run(b"a cat in a cart");
/// assert_eq!(hits.len(), 2); // "cat" at 4, "car" at 13
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseEngine {
    labels: Vec<CharClass>,
    report: Vec<Option<ReportCode>>,
    /// CSR adjacency: successors of state `i` are
    /// `succ_flat[succ_off[i]..succ_off[i+1]]`.
    succ_off: Vec<u32>,
    succ_flat: Vec<u32>,
    all_input: Vec<u32>,
    start_of_data: Vec<u32>,
    // scratch (reset on every run)
    stamp: Vec<u64>,
    enabled_mark: Vec<u64>,
    tick: u64,
    enabled: Vec<u32>,
    next: Vec<u32>,
}

impl SparseEngine {
    /// Compiles `nfa` into CSR form ready for scanning.
    pub fn new(nfa: &HomNfa) -> SparseEngine {
        let n = nfa.len();
        let mut labels = Vec::with_capacity(n);
        let mut report = Vec::with_capacity(n);
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_flat = Vec::new();
        let mut all_input = Vec::new();
        let mut start_of_data = Vec::new();
        succ_off.push(0);
        for (id, st) in nfa.iter() {
            labels.push(st.label);
            report.push(st.report);
            match st.start {
                StartKind::AllInput => all_input.push(id.0),
                StartKind::StartOfData => start_of_data.push(id.0),
                StartKind::None => {}
            }
            succ_flat.extend(nfa.successors(id).iter().map(|s| s.0));
            succ_off.push(succ_flat.len() as u32);
        }
        SparseEngine {
            labels,
            report,
            succ_off,
            succ_flat,
            all_input,
            start_of_data,
            stamp: vec![0; n],
            enabled_mark: vec![0; n],
            tick: 0,
            enabled: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Number of states in the compiled automaton.
    pub fn state_count(&self) -> usize {
        self.labels.len()
    }

    fn scan(
        &mut self,
        input: &[u8],
        mut on_cycle: impl FnMut(u64, usize, usize),
    ) -> Vec<MatchEvent> {
        let mut events = Vec::new();
        self.enabled.clear();
        self.enabled.extend_from_slice(&self.start_of_data);

        let mut seen_code_pos: Vec<MatchEvent> = Vec::new();
        for (pos, &b) in input.iter().enumerate() {
            let pos = pos as u64;
            self.next.clear();
            // Monotonic tick: stamps from earlier cycles/runs can never
            // collide with the current one.
            self.tick += 1;
            let tick = self.tick;
            let mut matched = 0usize;
            seen_code_pos.clear();
            let enabled_len = self.enabled.len();
            // Enabled set plus the always-enabled all-input starts.
            for idx in 0..enabled_len + self.all_input.len() {
                let s = if idx < enabled_len {
                    let s = self.enabled[idx];
                    // Mark enabled states so the all-input pass skips dups.
                    self.enabled_mark[s as usize] = tick;
                    s
                } else {
                    let s = self.all_input[idx - enabled_len];
                    // An all-input start may also be in `enabled` via an
                    // incoming edge; visit it once.
                    if self.enabled_mark[s as usize] == tick {
                        continue;
                    }
                    s
                };
                if !self.labels[s as usize].contains(b) {
                    continue;
                }
                matched += 1;
                if let Some(code) = self.report[s as usize] {
                    let ev = MatchEvent::new(pos, code);
                    if !seen_code_pos.contains(&ev) {
                        seen_code_pos.push(ev);
                        events.push(ev);
                    }
                }
                let (lo, hi) =
                    (self.succ_off[s as usize] as usize, self.succ_off[s as usize + 1] as usize);
                for i in lo..hi {
                    let t = self.succ_flat[i];
                    if self.stamp[t as usize] != tick {
                        self.stamp[t as usize] = tick;
                        self.next.push(t);
                    }
                }
            }
            on_cycle(pos, matched, enabled_len);
            std::mem::swap(&mut self.enabled, &mut self.next);
        }
        events
    }
}

impl Engine for SparseEngine {
    fn run(&mut self, input: &[u8]) -> Vec<MatchEvent> {
        self.scan(input, |_, _, _| {})
    }

    fn run_stats(&mut self, input: &[u8]) -> (Vec<MatchEvent>, EngineStats) {
        let mut stats = EngineStats::default();
        let events = self.scan(input, |_, matched, enabled| {
            stats.cycles += 1;
            stats.total_matched += matched as u64;
            stats.max_matched = stats.max_matched.max(matched as u64);
            stats.total_enabled += enabled as u64;
        });
        stats.reports = events.len() as u64;
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::{compile_pattern, compile_patterns};

    fn events(pattern: &str, input: &[u8]) -> Vec<MatchEvent> {
        let nfa = compile_pattern(pattern).unwrap();
        SparseEngine::new(&nfa).run(input)
    }

    #[test]
    fn literal_positions() {
        let ev = events("cat", b"cat catcat");
        let positions: Vec<u64> = ev.iter().map(|e| e.pos).collect();
        assert_eq!(positions, vec![2, 6, 9]);
    }

    #[test]
    fn overlapping_matches_all_report() {
        let ev = events("aa", b"aaaa");
        assert_eq!(ev.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn anchored_only_at_start() {
        let ev = events("^ab", b"abab");
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].pos, 1);
    }

    #[test]
    fn dotstar_gap() {
        let ev = events("a.*b", b"a..b..b");
        // reports at both b's
        assert_eq!(ev.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![3, 6]);
    }

    #[test]
    fn multi_pattern_codes() {
        let nfa = compile_patterns(&["cat", "dog"]).unwrap();
        let ev = SparseEngine::new(&nfa).run(b"dog cat");
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].code, ReportCode(1));
        assert_eq!(ev[1].code, ReportCode(0));
    }

    #[test]
    fn duplicate_reports_deduped() {
        // Two alternatives matching the same text with one code.
        let ev = events("ab|[a-b]b", b"zab");
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn stats_count_activity() {
        let nfa = compile_pattern("ab").unwrap();
        let (ev, stats) = SparseEngine::new(&nfa).run_stats(b"abab");
        assert_eq!(stats.cycles, 4);
        assert_eq!(stats.reports, ev.len() as u64);
        // 'a' matches at 0 and 2; 'b' matches at 1 and 3 -> 4 matched total
        assert_eq!(stats.total_matched, 4);
        assert_eq!(stats.max_matched, 1);
        assert!((stats.avg_active() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn engine_reusable_across_runs() {
        let nfa = compile_pattern("ab").unwrap();
        let mut eng = SparseEngine::new(&nfa);
        let first = eng.run(b"ab");
        let second = eng.run(b"ab");
        assert_eq!(first, second);
        assert_eq!(eng.run(b"zz").len(), 0);
    }

    #[test]
    fn empty_input_no_events() {
        let nfa = compile_pattern("a").unwrap();
        let (ev, stats) = SparseEngine::new(&nfa).run_stats(b"");
        assert!(ev.is_empty());
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn all_input_start_with_self_edge_not_double_counted() {
        // a+ : start state has a self-loop back to itself; ensure one match
        // count per cycle even when enabled both ways.
        let nfa = compile_pattern("a+").unwrap();
        let (_, stats) = SparseEngine::new(&nfa).run_stats(b"aaa");
        // cycle 0: start matches (1). cycles 1-2: start + loop state... the
        // exact count depends on structure; just assert sanity bounds.
        assert!(stats.total_matched >= 3);
        assert!(stats.max_matched <= nfa.len() as u64);
    }
}
