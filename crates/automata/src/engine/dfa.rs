//! Lazy-DFA oracle engine (subset construction).

use super::{Engine, EngineStats, MatchEvent};
use crate::homogeneous::{HomNfa, ReportCode, StartKind};
use std::collections::HashMap;
use std::fmt;

/// Returned when subset construction exceeds the configured state budget.
///
/// NFAs with many `.*`-style self loops can blow up exponentially under
/// determinization — the very reason the paper targets NFAs in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfaLimitExceeded {
    /// The state budget that was exhausted.
    pub limit: usize,
}

impl fmt::Display for DfaLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lazy DFA exceeded the {}-state budget", self.limit)
    }
}

impl std::error::Error for DfaLimitExceeded {}

/// Lazily determinized engine.
///
/// DFA states are sets of enabled NFA states; transitions are built on
/// demand and memoized, with report codes recorded per transition (reports
/// fire on symbol consumption). Used as a third independent oracle in
/// differential tests; construction is bounded by a state budget.
#[derive(Debug)]
pub struct DfaEngine {
    labels_nfa: HomNfa,
    limit: usize,
    /// interned DFA states: sorted enabled-set -> id
    interned: HashMap<Vec<u32>, u32>,
    sets: Vec<Vec<u32>>,
    /// trans[state][byte] -> (next, codes) (built lazily)
    trans: Vec<HashMap<u8, (u32, Vec<ReportCode>)>>,
    start: u32,
    all_input: Vec<u32>,
    /// transient flag: a run hit the limit
    overflowed: bool,
}

impl DfaEngine {
    /// Default budget on materialized DFA states.
    pub const DEFAULT_LIMIT: usize = 1 << 16;

    /// Creates an engine over `nfa` with the default state budget.
    pub fn new(nfa: &HomNfa) -> DfaEngine {
        DfaEngine::with_limit(nfa, DfaEngine::DEFAULT_LIMIT)
    }

    /// Creates an engine with an explicit state budget.
    pub fn with_limit(nfa: &HomNfa, limit: usize) -> DfaEngine {
        let mut all_input = Vec::new();
        let mut seed = Vec::new();
        for (id, st) in nfa.iter() {
            match st.start {
                StartKind::AllInput => {
                    all_input.push(id.0);
                    seed.push(id.0);
                }
                StartKind::StartOfData => seed.push(id.0),
                StartKind::None => {}
            }
        }
        seed.sort_unstable();
        seed.dedup();
        let mut engine = DfaEngine {
            labels_nfa: nfa.clone(),
            limit,
            interned: HashMap::new(),
            sets: Vec::new(),
            trans: Vec::new(),
            start: 0,
            all_input,
            overflowed: false,
        };
        engine.start = engine.intern(seed).expect("first state is within any limit");
        engine
    }

    /// Number of DFA states materialized so far.
    pub fn materialized_states(&self) -> usize {
        self.sets.len()
    }

    /// `true` if any run hit the state budget (results incomplete).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn intern(&mut self, set: Vec<u32>) -> Result<u32, DfaLimitExceeded> {
        if let Some(&id) = self.interned.get(&set) {
            return Ok(id);
        }
        if self.sets.len() >= self.limit {
            return Err(DfaLimitExceeded { limit: self.limit });
        }
        let id = self.sets.len() as u32;
        self.interned.insert(set.clone(), id);
        self.sets.push(set);
        self.trans.push(HashMap::new());
        Ok(id)
    }

    fn step(&mut self, state: u32, b: u8) -> Result<(u32, Vec<ReportCode>), DfaLimitExceeded> {
        if let Some(hit) = self.trans[state as usize].get(&b) {
            return Ok(hit.clone());
        }
        let set = self.sets[state as usize].clone();
        let mut next: Vec<u32> = self.all_input.clone();
        let mut codes: Vec<ReportCode> = Vec::new();
        for &s in &set {
            let id = crate::homogeneous::StateId(s);
            let st = self.labels_nfa.state(id);
            if !st.label.contains(b) {
                continue;
            }
            if let Some(code) = st.report {
                if !codes.contains(&code) {
                    codes.push(code);
                }
            }
            next.extend(self.labels_nfa.successors(id).iter().map(|t| t.0));
        }
        next.sort_unstable();
        next.dedup();
        codes.sort_unstable();
        let next_id = self.intern(next)?;
        self.trans[state as usize].insert(b, (next_id, codes.clone()));
        Ok((next_id, codes))
    }

    /// Runs and reports whether the budget was respected.
    ///
    /// # Errors
    ///
    /// Returns [`DfaLimitExceeded`] if determinization outgrew the budget;
    /// events collected so far are discarded.
    pub fn try_run(&mut self, input: &[u8]) -> Result<Vec<MatchEvent>, DfaLimitExceeded> {
        let mut events = Vec::new();
        let mut state = self.start;
        for (pos, &b) in input.iter().enumerate() {
            let (next, codes) = self.step(state, b)?;
            for code in codes {
                events.push(MatchEvent::new(pos as u64, code));
            }
            state = next;
        }
        Ok(events)
    }
}

impl Engine for DfaEngine {
    /// Runs the engine; on budget overflow returns the events gathered so
    /// far and records the overflow (see [`DfaEngine::overflowed`]).
    fn run(&mut self, input: &[u8]) -> Vec<MatchEvent> {
        match self.try_run(input) {
            Ok(ev) => ev,
            Err(_) => {
                self.overflowed = true;
                Vec::new()
            }
        }
    }

    fn run_stats(&mut self, input: &[u8]) -> (Vec<MatchEvent>, EngineStats) {
        let events = self.run(input);
        let stats = EngineStats {
            cycles: input.len() as u64,
            reports: events.len() as u64,
            ..Default::default()
        };
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SparseEngine;
    use super::*;
    use crate::regex::{compile_pattern, compile_patterns};

    #[test]
    fn agrees_with_sparse() {
        for (patterns, input) in [
            (vec!["cat", "car"], b"a cat in a cart".as_slice()),
            (vec!["a.*b"], b"a..b..b"),
            (vec!["^ab", "b+c"], b"abbbc ab"),
            (vec!["[ab]{2,3}x"], b"ababxaax"),
        ] {
            let nfa = compile_patterns(&patterns).unwrap();
            let mut sparse = SparseEngine::new(&nfa);
            let mut dfa = DfaEngine::new(&nfa);
            let mut s = sparse.run(input);
            let mut d = dfa.try_run(input).unwrap();
            s.sort();
            d.sort();
            assert_eq!(s, d, "patterns {patterns:?}");
        }
    }

    #[test]
    fn memoization_reuses_states() {
        let nfa = compile_pattern("ab").unwrap();
        let mut dfa = DfaEngine::new(&nfa);
        dfa.try_run(b"abababab").unwrap();
        let states_after_first = dfa.materialized_states();
        dfa.try_run(b"abab").unwrap();
        assert_eq!(dfa.materialized_states(), states_after_first);
        assert!(states_after_first <= 4);
    }

    #[test]
    fn limit_is_enforced() {
        // Many dotstar patterns force exponential-ish subset growth.
        let patterns: Vec<String> = (0..10).map(|i| format!("a.*{i}.*b")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        let mut dfa = DfaEngine::with_limit(&nfa, 4);
        // Each digit switches on another persistent `.*` stage, so every
        // prefix of this input is a distinct subset: guaranteed blowup.
        let input = b"a0123456789";
        assert!(dfa.try_run(input).is_err());
        assert!(!dfa.overflowed()); // try_run does not set the flag
        let _ = dfa.run(input);
        assert!(dfa.overflowed());
    }

    #[test]
    fn anchored_pattern_not_reseeded() {
        let nfa = compile_pattern("^aa").unwrap();
        let mut dfa = DfaEngine::new(&nfa);
        let ev = dfa.try_run(b"aaaa").unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].pos, 1);
    }
}
