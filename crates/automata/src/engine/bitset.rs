//! Dense bit-parallel interpreter.

use super::{Engine, EngineStats, MatchEvent};
use crate::homogeneous::{HomNfa, ReportCode, StartKind};

/// Dense bit-parallel engine.
///
/// For every input symbol it keeps one 256-entry table of *match rows* —
/// `match_rows[b]` has bit `s` set iff state `s`'s label contains byte `b`.
/// This table is precisely the transposed SRAM image the Cache Automaton
/// hardware reads (one row per symbol, one column per STE), which makes this
/// engine the software twin of the fabric simulator.
///
/// Cost per symbol is `O(states/64 + activity)`: a word-wise AND for the
/// state-match phase and a per-set-bit successor scatter for the
/// state-transition phase.
#[derive(Debug, Clone)]
pub struct BitsetEngine {
    words: usize,
    /// `match_rows[b * words ..][..words]`: bitmask of states matching `b`.
    match_rows: Vec<u64>,
    report_mask: Vec<u64>,
    all_input_mask: Vec<u64>,
    start_of_data_mask: Vec<u64>,
    report: Vec<Option<ReportCode>>,
    succ_off: Vec<u32>,
    succ_flat: Vec<u32>,
    // scratch
    enabled: Vec<u64>,
    matched: Vec<u64>,
    next: Vec<u64>,
}

impl BitsetEngine {
    /// Compiles `nfa` into dense row form.
    pub fn new(nfa: &HomNfa) -> BitsetEngine {
        let n = nfa.len();
        let words = n.div_ceil(64);
        let mut match_rows = vec![0u64; 256 * words];
        let mut report_mask = vec![0u64; words];
        let mut all_input_mask = vec![0u64; words];
        let mut start_of_data_mask = vec![0u64; words];
        let mut report = vec![None; n];
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_flat = Vec::new();
        succ_off.push(0u32);
        for (id, st) in nfa.iter() {
            let (w, m) = (id.index() / 64, 1u64 << (id.index() % 64));
            for b in st.label.iter() {
                match_rows[b as usize * words + w] |= m;
            }
            if st.report.is_some() {
                report_mask[w] |= m;
                report[id.index()] = st.report;
            }
            match st.start {
                StartKind::AllInput => all_input_mask[w] |= m,
                StartKind::StartOfData => start_of_data_mask[w] |= m,
                StartKind::None => {}
            }
            succ_flat.extend(nfa.successors(id).iter().map(|s| s.0));
            succ_off.push(succ_flat.len() as u32);
        }
        BitsetEngine {
            words,
            match_rows,
            report_mask,
            all_input_mask,
            start_of_data_mask,
            report,
            succ_off,
            succ_flat,
            enabled: vec![0; words],
            matched: vec![0; words],
            next: vec![0; words],
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.report.len()
    }

    /// Approximate resident size of the compiled tables in bytes (the
    /// "cache image" of the automaton).
    pub fn table_bytes(&self) -> usize {
        (self.match_rows.len() + self.report_mask.len() * 3) * 8
            + self.succ_flat.len() * 4
            + self.succ_off.len() * 4
    }

    fn scan(
        &mut self,
        input: &[u8],
        mut on_cycle: impl FnMut(u64, usize, usize),
    ) -> Vec<MatchEvent> {
        let words = self.words;
        let mut events = Vec::new();
        if words == 0 {
            return events;
        }
        for (w, dst) in self.enabled.iter_mut().enumerate() {
            *dst = self.start_of_data_mask[w] | self.all_input_mask[w];
        }
        let mut codes_this_pos: Vec<ReportCode> = Vec::new();
        for (pos, &b) in input.iter().enumerate() {
            let pos = pos as u64;
            let row = &self.match_rows[b as usize * words..(b as usize + 1) * words];
            let mut matched_count = 0usize;
            let mut enabled_count = 0usize;
            let mut any_report = 0u64;
            for (w, &row_w) in row.iter().enumerate() {
                let m = self.enabled[w] & row_w;
                self.matched[w] = m;
                matched_count += m.count_ones() as usize;
                enabled_count += self.enabled[w].count_ones() as usize;
                any_report |= m & self.report_mask[w];
                self.next[w] = self.all_input_mask[w];
            }
            if any_report != 0 {
                codes_this_pos.clear();
                for w in 0..words {
                    let mut m = self.matched[w] & self.report_mask[w];
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let s = w * 64 + bit;
                        let code = self.report[s].expect("report mask bit without code");
                        if !codes_this_pos.contains(&code) {
                            codes_this_pos.push(code);
                            events.push(MatchEvent::new(pos, code));
                        }
                    }
                }
            }
            // state-transition phase
            for w in 0..words {
                let mut m = self.matched[w];
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let s = w * 64 + bit;
                    let (lo, hi) = (self.succ_off[s] as usize, self.succ_off[s + 1] as usize);
                    for i in lo..hi {
                        let t = self.succ_flat[i] as usize;
                        self.next[t / 64] |= 1u64 << (t % 64);
                    }
                }
            }
            on_cycle(pos, matched_count, enabled_count);
            std::mem::swap(&mut self.enabled, &mut self.next);
        }
        events
    }
}

impl Engine for BitsetEngine {
    fn run(&mut self, input: &[u8]) -> Vec<MatchEvent> {
        self.scan(input, |_, _, _| {})
    }

    fn run_stats(&mut self, input: &[u8]) -> (Vec<MatchEvent>, EngineStats) {
        let mut stats = EngineStats::default();
        let events = self.scan(input, |_, matched, enabled| {
            stats.cycles += 1;
            stats.total_matched += matched as u64;
            stats.max_matched = stats.max_matched.max(matched as u64);
            stats.total_enabled += enabled as u64;
        });
        stats.reports = events.len() as u64;
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SparseEngine;
    use super::*;
    use crate::regex::{compile_pattern, compile_patterns};

    fn both(patterns: &[&str], input: &[u8]) -> (Vec<MatchEvent>, Vec<MatchEvent>) {
        let nfa = compile_patterns(patterns).unwrap();
        let mut sparse = SparseEngine::new(&nfa);
        let mut dense = BitsetEngine::new(&nfa);
        (sparse.run(input), dense.run(input))
    }

    #[test]
    fn agrees_with_sparse_engine() {
        for (patterns, input) in [
            (vec!["cat", "car"], b"a cat in a cart".as_slice()),
            (vec!["a.*b"], b"a..b..b"),
            (vec!["^ab", "b+c"], b"abbbc ab"),
            (vec!["[0-9]{3}"], b"abc123456xyz"),
            (vec!["x"], b""),
        ] {
            let (s, d) = both(&patterns, input);
            let (mut s, mut d) = (s, d);
            s.sort();
            d.sort();
            assert_eq!(s, d, "patterns {patterns:?}");
        }
    }

    #[test]
    fn stats_match_sparse_matched_counts() {
        let nfa = compile_pattern("ab").unwrap();
        let (_, ss) = SparseEngine::new(&nfa).run_stats(b"ababab");
        let (_, ds) = BitsetEngine::new(&nfa).run_stats(b"ababab");
        assert_eq!(ss.cycles, ds.cycles);
        assert_eq!(ss.total_matched, ds.total_matched);
        assert_eq!(ss.reports, ds.reports);
    }

    #[test]
    fn word_boundary_states() {
        // Force > 64 states so multiple words are exercised.
        let patterns: Vec<String> = (0..30).map(|i| format!("x{i:02}y")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        assert!(nfa.len() > 64);
        let mut dense = BitsetEngine::new(&nfa);
        let ev = dense.run(b"zz x07y zz x29y");
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].code, ReportCode(7));
        assert_eq!(ev[1].code, ReportCode(29));
    }

    #[test]
    fn table_bytes_nonzero() {
        let nfa = compile_pattern("abc").unwrap();
        let dense = BitsetEngine::new(&nfa);
        assert!(dense.table_bytes() > 0);
        assert_eq!(dense.state_count(), 3);
    }
}
