//! Canonical automaton fingerprints: stable cache keys for compiled
//! programs.
//!
//! Deploying a rule set reconfigures the fabric — far more expensive than
//! scanning — so compiled automata are cached and shipped as artifacts.
//! That requires a key with two properties the standard library's
//! [`Hash`](std::hash::Hash)/[`Hasher`](std::hash::Hasher) pair does not
//! guarantee:
//!
//! 1. **Stability** — the same automaton must hash to the same value across
//!    processes, builds and platforms (no randomized hasher state, no
//!    pointer- or layout-dependent input).
//! 2. **Canonical form** — incidental construction order must not leak into
//!    the key: successor lists are hashed in sorted order, so two automata
//!    that differ only in edge-insertion order fingerprint identically.
//!
//! State *numbering* is part of the identity: automata that differ by a
//! state renumbering are mapped to different placements by the compiler, so
//! they are legitimately distinct keys.
//!
//! # Examples
//!
//! ```
//! use ca_automata::{CharClass, HomNfa, StartKind, ReportCode};
//!
//! let mut a = HomNfa::new();
//! let s0 = a.add_state_full(CharClass::byte(b'x'), StartKind::AllInput, None);
//! let s1 = a.add_state_full(CharClass::byte(b'y'), StartKind::None, Some(ReportCode(0)));
//! let s2 = a.add_state_full(CharClass::byte(b'z'), StartKind::None, Some(ReportCode(1)));
//! let mut b = a.clone();
//! // same edges, opposite insertion order -> same fingerprint
//! a.add_edge(s0, s1);
//! a.add_edge(s0, s2);
//! b.add_edge(s0, s2);
//! b.add_edge(s0, s1);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! ```

use crate::homogeneous::{HomNfa, StartKind};
use std::fmt;

/// A 128-bit stable digest of an automaton (or any byte stream fed through
/// a [`StableHasher`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The digest as 16 little-endian bytes (for embedding in artifacts).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Rebuilds a fingerprint from its byte form.
    pub fn from_bytes(bytes: [u8; 16]) -> Fingerprint {
        Fingerprint(u128::from_le_bytes(bytes))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A deterministic, platform-independent hasher (two independent FNV-1a
/// streams, combined into 128 bits).
///
/// Not collision-resistant against adversarial inputs — it keys an
/// in-process compilation cache and tags artifacts, where inputs are the
/// operator's own rule sets.
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second stream (FNV offset xored with a constant) so
/// the two 64-bit halves evolve independently.
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the standard offset basis.
    pub fn new() -> StableHasher {
        StableHasher { lo: FNV_OFFSET, hi: FNV_OFFSET_HI }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint((u128::from(self.hi) << 64) | u128::from(self.lo))
    }
}

/// Computes the canonical fingerprint of an automaton.
///
/// The normalized form hashed is: state count, then per state (in id
/// order) the 256-bit label bitmap, the start-kind discriminant, the
/// report code (or a sentinel), and the successor ids in **sorted** order.
pub fn fingerprint(nfa: &HomNfa) -> Fingerprint {
    let mut h = StableHasher::new();
    // Lengths are hashed as u64 — never at platform width — so 32- and
    // 64-bit builds produce identical fingerprints.
    h.write_u64(nfa.len() as u64);
    for (id, state) in nfa.iter() {
        for w in state.label.to_bits() {
            h.write_u64(w);
        }
        h.write_u8(match state.start {
            StartKind::None => 0,
            StartKind::StartOfData => 1,
            StartKind::AllInput => 2,
        });
        match state.report {
            Some(code) => {
                h.write_u8(1);
                h.write_u32(code.0);
            }
            None => h.write_u8(0),
        }
        let mut succ: Vec<u32> = nfa.successors(id).iter().map(|s| s.0).collect();
        succ.sort_unstable();
        h.write_u64(succ.len() as u64);
        for s in succ {
            h.write_u32(s);
        }
    }
    h.finish()
}

impl HomNfa {
    /// Canonical fingerprint of this automaton (see [`fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charclass::CharClass;
    use crate::homogeneous::ReportCode;
    use crate::regex::compile_patterns;

    #[test]
    fn identical_automata_agree() {
        let a = compile_patterns(&["rain", "sp[ai]n"]).unwrap();
        let b = compile_patterns(&["rain", "sp[ai]n"]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_field_matters() {
        let base = compile_patterns(&["abc"]).unwrap();
        let fp = base.fingerprint();

        // label
        let mut m = base.clone();
        m.state_mut(crate::StateId(0)).label = CharClass::byte(b'z');
        assert_ne!(m.fingerprint(), fp);

        // start kind
        let mut m = base.clone();
        m.state_mut(crate::StateId(0)).start = StartKind::StartOfData;
        assert_ne!(m.fingerprint(), fp);

        // report code
        let mut m = base.clone();
        let last = crate::StateId(m.len() as u32 - 1);
        m.state_mut(last).report = Some(ReportCode(9));
        assert_ne!(m.fingerprint(), fp);

        // extra edge
        let mut m = base.clone();
        m.add_edge(crate::StateId(2), crate::StateId(0));
        assert_ne!(m.fingerprint(), fp);

        // extra state
        let mut m = base.clone();
        m.add_state(CharClass::byte(b'q'));
        assert_ne!(m.fingerprint(), fp);
    }

    #[test]
    fn edge_insertion_order_is_canonicalized() {
        let mk = |order: &[(u32, u32)]| {
            let mut n = HomNfa::new();
            for _ in 0..4 {
                n.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, Some(ReportCode(0)));
            }
            for &(s, t) in order {
                n.add_edge(crate::StateId(s), crate::StateId(t));
            }
            n
        };
        let a = mk(&[(0, 1), (0, 2), (0, 3)]);
        let b = mk(&[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn stable_across_runs() {
        // A pinned value: if this changes, the artifact/cache key format
        // changed and cached programs from older builds must be invalidated
        // (bump the artifact version when that is intentional).
        let nfa = compile_patterns(&["cache"]).unwrap();
        let again = compile_patterns(&["cache"]).unwrap().fingerprint();
        assert_eq!(nfa.fingerprint(), again);
        assert_eq!(nfa.fingerprint().to_string().len(), 32);
    }

    #[test]
    fn pinned_hasher_and_fingerprint_values() {
        // Pinned values computed on x86-64. Any platform — 32- or 64-bit,
        // any endianness — must reproduce them exactly; if this test fails
        // after an intentional format change, bump the artifact version and
        // re-pin (stale cached programs must be invalidated).
        let mut h = StableHasher::new();
        h.write_bytes(b"cache automaton");
        h.write_u8(0x5a);
        h.write_u32(0xdead_beef);
        h.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(format!("{}", h.finish()), "29202c036fe9d756ccd60a49f4fc15b1");

        let mut nfa = HomNfa::new();
        let s0 =
            nfa.add_state_full(crate::charclass::CharClass::byte(b'a'), StartKind::AllInput, None);
        let s1 = nfa.add_state_full(
            crate::charclass::CharClass::byte(b'b'),
            StartKind::None,
            Some(ReportCode(7)),
        );
        nfa.add_edge(s0, s1);
        assert_eq!(format!("{}", nfa.fingerprint()), "7c95b515a2db7da0c38ba8ad0f81aa47");
    }

    #[test]
    fn byte_roundtrip() {
        let fp = compile_patterns(&["x"]).unwrap().fingerprint();
        assert_eq!(Fingerprint::from_bytes(fp.to_bytes()), fp);
    }

    #[test]
    fn empty_automaton_has_a_fingerprint() {
        let a = HomNfa::new().fingerprint();
        let b = HomNfa::new().fingerprint();
        assert_eq!(a, b);
        assert_ne!(a, compile_patterns(&["x"]).unwrap().fingerprint());
    }
}
