//! Combinator API for building automata programmatically.
//!
//! Workload generators and applications often assemble patterns
//! structurally rather than via regex strings (the entity-resolution and
//! edit-distance automata of `ca-workloads` are examples). This module
//! provides a small expression algebra over [`CharClass`]es that compiles
//! through the same Glushkov construction as the regex front-end:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ca_automata::build::{alt, lit, seq, Expr};
//! use ca_automata::engine::{Engine, SparseEngine};
//! use ca_automata::ReportCode;
//!
//! // (cat|car) t?  ==  "cat", "car", "catt", "cart"... built structurally
//! let expr = seq([alt([lit(b"cat"), lit(b"car")]), lit(b"t").opt()]);
//! let nfa = expr.compile(ReportCode(0))?;
//! assert_eq!(SparseEngine::new(&nfa).run(b"a cart!").len(), 2); // car, cart
//! # Ok(())
//! # }
//! ```

use crate::charclass::CharClass;
use crate::error::Result;
use crate::homogeneous::{HomNfa, ReportCode};
use crate::regex::{compile_ast, Ast, Pattern};

/// A pattern expression; compile with [`Expr::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr(Ast);

/// A literal byte string.
pub fn lit(bytes: &[u8]) -> Expr {
    Expr(Ast::Concat(bytes.iter().map(|&b| Ast::Class(CharClass::byte(b))).collect()))
}

/// A single symbol class.
pub fn sym(class: CharClass) -> Expr {
    Expr(Ast::Class(class))
}

/// Any symbol (`.`).
pub fn any() -> Expr {
    Expr(Ast::Class(CharClass::ALL))
}

/// Sequence of sub-expressions.
pub fn seq<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
    Expr(Ast::Concat(parts.into_iter().map(|e| e.0).collect()))
}

/// Alternation between sub-expressions.
///
/// # Panics
///
/// Panics on an empty alternative list (it would match nothing).
pub fn alt<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
    let parts: Vec<Ast> = parts.into_iter().map(|e| e.0).collect();
    assert!(!parts.is_empty(), "alt of nothing matches nothing");
    Expr(Ast::Alt(parts))
}

impl Expr {
    /// Zero or more repetitions (`*`).
    pub fn star(self) -> Expr {
        Expr(Ast::Repeat { node: Box::new(self.0), min: 0, max: None })
    }

    /// One or more repetitions (`+`).
    pub fn plus(self) -> Expr {
        Expr(Ast::Repeat { node: Box::new(self.0), min: 1, max: None })
    }

    /// Zero or one occurrence (`?`).
    pub fn opt(self) -> Expr {
        Expr(Ast::Repeat { node: Box::new(self.0), min: 0, max: Some(1) })
    }

    /// Between `min` and `max` repetitions (`{min,max}`); `None` = unbounded.
    pub fn repeat(self, min: u32, max: Option<u32>) -> Expr {
        Expr(Ast::Repeat { node: Box::new(self.0), min, max })
    }

    /// Concatenates another expression after this one.
    #[must_use]
    pub fn then(self, next: Expr) -> Expr {
        seq([self, next])
    }

    /// Alternates with another expression.
    #[must_use]
    pub fn or(self, other: Expr) -> Expr {
        alt([self, other])
    }

    /// Compiles to a homogeneous NFA with unanchored (all-input) starts.
    ///
    /// # Errors
    ///
    /// Fails for expressions that match the empty string
    /// ([`Error::NullableRegex`](crate::Error::NullableRegex)).
    pub fn compile(&self, code: ReportCode) -> Result<HomNfa> {
        compile_ast(&Pattern { anchored: false, ast: self.0.clone() }, code)
    }

    /// Compiles anchored to the start of data (`^...`).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Expr::compile`].
    pub fn compile_anchored(&self, code: ReportCode) -> Result<HomNfa> {
        compile_ast(&Pattern { anchored: true, ast: self.0.clone() }, code)
    }

    /// The regex rendering of this expression (parses back to the same
    /// automaton via the string front-end).
    pub fn to_regex(&self) -> String {
        self.0.to_string()
    }
}

/// Compiles many expressions into one multi-pattern automaton; expression
/// `i` reports with code `i` (one connected component each, like
/// [`compile_patterns`](crate::regex::compile_patterns)).
///
/// # Errors
///
/// Fails on the first nullable expression.
pub fn compile_exprs(exprs: &[Expr]) -> Result<HomNfa> {
    let mut out = HomNfa::new();
    for (i, e) in exprs.iter().enumerate() {
        let one = e.compile(ReportCode(i as u32))?;
        out.append(&one);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SparseEngine};
    use crate::regex::{compile_pattern, parse};

    fn hits(nfa: &HomNfa, input: &[u8]) -> usize {
        SparseEngine::new(nfa).run(input).len()
    }

    #[test]
    fn literal_sequence() {
        let nfa = lit(b"cat").compile(ReportCode(0)).unwrap();
        assert_eq!(hits(&nfa, b"a cat sat"), 1);
        assert_eq!(hits(&nfa, b"dog"), 0);
    }

    #[test]
    fn combinators_compose() {
        // ab(c|d)+e?
        let expr = lit(b"ab").then(alt([lit(b"c"), lit(b"d")]).plus()).then(lit(b"e").opt());
        let nfa = expr.compile(ReportCode(0)).unwrap();
        assert!(hits(&nfa, b"abc") > 0);
        assert!(hits(&nfa, b"abdcdce") > 0);
        assert_eq!(hits(&nfa, b"abe"), 0);
    }

    #[test]
    fn builder_equals_regex_front_end() {
        let expr =
            seq([lit(b"a"), any().star(), sym(CharClass::range(b'0', b'9')).repeat(2, Some(3))]);
        let via_builder = expr.compile(ReportCode(0)).unwrap();
        let via_regex = compile_pattern("a.*[0-9]{2,3}").unwrap();
        for input in [b"a12".as_slice(), b"axx123", b"a1", b"zzz"] {
            assert_eq!(
                SparseEngine::new(&via_builder).run(input),
                SparseEngine::new(&via_regex).run(input),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn to_regex_round_trips() {
        let expr = lit(b"ab").then(alt([lit(b"c"), lit(b"d")]).star());
        let rendered = expr.to_regex();
        let reparsed = parse(&rendered).unwrap();
        let via_string = compile_ast(&reparsed, ReportCode(0)).unwrap();
        let direct = expr.compile(ReportCode(0)).unwrap();
        assert_eq!(via_string, direct);
    }

    #[test]
    fn anchoring() {
        let nfa = lit(b"ab").compile_anchored(ReportCode(0)).unwrap();
        assert_eq!(hits(&nfa, b"abab"), 1);
    }

    #[test]
    fn nullable_rejected() {
        assert!(lit(b"a").star().compile(ReportCode(0)).is_err());
        assert!(lit(b"a").opt().compile(ReportCode(0)).is_err());
    }

    #[test]
    fn multi_expression_codes() {
        let nfa = compile_exprs(&[lit(b"one"), lit(b"two")]).unwrap();
        let ev = SparseEngine::new(&nfa).run(b"two one");
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].code, ReportCode(1));
        assert_eq!(ev[1].code, ReportCode(0));
    }

    #[test]
    #[should_panic(expected = "alt of nothing")]
    fn empty_alt_panics() {
        alt([]);
    }
}
