//! Automaton optimizations for the space-optimized (CA_S) flow.
//!
//! The paper's space-optimized design first runs "state-merging algorithms
//! ... that merge common prefixes across patterns" (§3.1) before mapping.
//! Two states can be merged whenever they are *activation-equivalent*: same
//! label, same start kind and identical predecessor sets imply they are
//! enabled in exactly the same cycles, so one copy (with the union of the
//! out-edges) behaves identically. Iterating this to a fixpoint collapses
//! shared prefixes such as `art`/`artifact` exactly as the paper describes.

use crate::homogeneous::{HomNfa, StateId};
use std::collections::HashMap;

/// Result of an optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// States before the pass.
    pub states_before: usize,
    /// States after the pass.
    pub states_after: usize,
    /// Fixpoint iterations performed.
    pub rounds: usize,
}

impl OptimizeStats {
    /// Fraction of states removed (0 when nothing merged).
    pub fn reduction(&self) -> f64 {
        if self.states_before == 0 {
            0.0
        } else {
            1.0 - self.states_after as f64 / self.states_before as f64
        }
    }
}

/// Merges activation-equivalent states to a fixpoint (common-prefix
/// merging). Returns the rewritten automaton and pass statistics.
///
/// Reporting states are only merged with states carrying the *same* report
/// code, so the observable match stream is preserved exactly.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ca_automata::regex::compile_patterns;
/// use ca_automata::optimize::merge_common_prefixes;
///
/// // "art" and "artifact" share the prefix "art".
/// let nfa = compile_patterns(&["artifact", "article"])?;
/// let (merged, stats) = merge_common_prefixes(&nfa);
/// assert!(merged.len() < nfa.len());
/// assert!(stats.reduction() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn merge_common_prefixes(nfa: &HomNfa) -> (HomNfa, OptimizeStats) {
    let mut current = nfa.clone();
    let before = nfa.len();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (next, merged_any) = merge_round(&current);
        current = next;
        if !merged_any || rounds > 64 {
            break;
        }
    }
    let stats = OptimizeStats { states_before: before, states_after: current.len(), rounds };
    (current, stats)
}

/// Merge-candidate buckets keyed by activation signature:
/// (label bits, start kind, report, sorted neighbour ids).
type SignatureGroups = HashMap<([u64; 4], u8, Option<u32>, Vec<u32>), Vec<StateId>>;

/// One merge round: groups states by activation signature and rebuilds.
fn merge_round(nfa: &HomNfa) -> (HomNfa, bool) {
    let pred = nfa.predecessors();
    // signature: (label bits, start kind, report, sorted predecessor ids)
    let mut groups: SignatureGroups = HashMap::new();
    for (id, st) in nfa.iter() {
        // Self-loops are replaced by a sentinel so two states that differ
        // only in *which* state they self-loop on (their own) can merge:
        // with equal labels, starts and non-self predecessors, their
        // activation recurrences are identical by induction.
        let mut p: Vec<u32> =
            pred[id.index()].iter().map(|s| if *s == id { u32::MAX } else { s.0 }).collect();
        p.sort_unstable();
        p.dedup();
        let key = (
            st.label.to_bits(),
            match st.start {
                crate::homogeneous::StartKind::None => 0u8,
                crate::homogeneous::StartKind::StartOfData => 1,
                crate::homogeneous::StartKind::AllInput => 2,
            },
            st.report.map(|r| r.0),
            p,
        );
        groups.entry(key).or_default().push(id);
    }
    let mut merged_any = false;
    // representative map: every state -> the smallest id in its group,
    // but only for groups whose predecessor sets contain no group members
    // (self-referential groups are handled conservatively: merging states
    // whose predecessor lists differ only by intra-group ids is deferred to
    // later rounds once their predecessors have merged).
    let mut repr: Vec<StateId> = (0..nfa.len() as u32).map(StateId).collect();
    for members in groups.values() {
        if members.len() > 1 {
            merged_any = true;
            let keep = members[0];
            for &m in &members[1..] {
                repr[m.index()] = keep;
            }
        }
    }
    if !merged_any {
        return (nfa.clone(), false);
    }
    // Rebuild with representatives only.
    let mut new_id: Vec<Option<StateId>> = vec![None; nfa.len()];
    let mut out = HomNfa::new();
    for (id, st) in nfa.iter() {
        if repr[id.index()] == id {
            new_id[id.index()] = Some(out.add_state_full(st.label, st.start, st.report));
        }
    }
    for (id, _) in nfa.iter() {
        let from = new_id[repr[id.index()].index()].expect("representative exists");
        for &t in nfa.successors(id) {
            let to = new_id[repr[t.index()].index()].expect("representative exists");
            out.add_edge(from, to);
        }
    }
    (out, true)
}

/// Merges *observation-equivalent* states to a fixpoint (common-suffix
/// merging): two states with the same label, the same report code and
/// identical successor sets behave identically downstream, so their
/// in-edges can be pooled onto one copy.
///
/// This is the dual of [`merge_common_prefixes`] and goes beyond the
/// paper's CA_S flow (which cites prefix merging only); it is offered as
/// an extension and exercised by the `experiments ablation` harness.
/// Start kinds must also match: an all-input start is re-enabled every
/// cycle, so merging it with a non-start would change activations.
pub fn merge_common_suffixes(nfa: &HomNfa) -> (HomNfa, OptimizeStats) {
    let mut current = nfa.clone();
    let before = nfa.len();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (next, merged_any) = suffix_round(&current);
        current = next;
        if !merged_any || rounds > 64 {
            break;
        }
    }
    let stats = OptimizeStats { states_before: before, states_after: current.len(), rounds };
    (current, stats)
}

fn suffix_round(nfa: &HomNfa) -> (HomNfa, bool) {
    // signature: (label, start, report, sorted successors with self-loops
    // mapped to a sentinel — the same soundness argument as prefix merging,
    // run over the reversed automaton)
    let mut groups: SignatureGroups = HashMap::new();
    for (id, st) in nfa.iter() {
        let mut succ: Vec<u32> =
            nfa.successors(id).iter().map(|t| if *t == id { u32::MAX } else { t.0 }).collect();
        succ.sort_unstable();
        succ.dedup();
        let key = (
            st.label.to_bits(),
            match st.start {
                crate::homogeneous::StartKind::None => 0u8,
                crate::homogeneous::StartKind::StartOfData => 1,
                crate::homogeneous::StartKind::AllInput => 2,
            },
            st.report.map(|r| r.0),
            succ,
        );
        groups.entry(key).or_default().push(id);
    }
    let mut merged_any = false;
    let mut repr: Vec<StateId> = (0..nfa.len() as u32).map(StateId).collect();
    for members in groups.values() {
        if members.len() > 1 {
            merged_any = true;
            let keep = members[0];
            for &m in &members[1..] {
                repr[m.index()] = keep;
            }
        }
    }
    if !merged_any {
        return (nfa.clone(), false);
    }
    let mut new_id: Vec<Option<StateId>> = vec![None; nfa.len()];
    let mut out = HomNfa::new();
    for (id, st) in nfa.iter() {
        if repr[id.index()] == id {
            new_id[id.index()] = Some(out.add_state_full(st.label, st.start, st.report));
        }
    }
    for (id, _) in nfa.iter() {
        let from = new_id[repr[id.index()].index()].expect("representative exists");
        for &t in nfa.successors(id) {
            let to = new_id[repr[t.index()].index()].expect("representative exists");
            out.add_edge(from, to);
        }
    }
    (out, true)
}

/// Both merges iterated jointly to a fixpoint (prefix merging can expose
/// new suffix merges and vice versa). An extension beyond the paper's CA_S
/// flow; see [`merge_common_suffixes`].
pub fn merge_bidirectional(nfa: &HomNfa) -> (HomNfa, OptimizeStats) {
    let before = nfa.len();
    let mut current = nfa.clone();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let len_before = current.len();
        current = merge_common_prefixes(&current).0;
        current = merge_common_suffixes(&current).0;
        if current.len() == len_before || rounds > 16 {
            break;
        }
    }
    let stats = OptimizeStats { states_before: before, states_after: current.len(), rounds };
    (current, stats)
}

/// Removes states that are unreachable from a start state or cannot reach a
/// reporting state. Returns the pruned automaton and pass statistics.
pub fn remove_dead_states(nfa: &HomNfa) -> (HomNfa, OptimizeStats) {
    let n = nfa.len();
    // forward reachability from starts
    let mut fwd = vec![false; n];
    let mut stack: Vec<StateId> = nfa.start_states();
    for s in &stack {
        fwd[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for &t in nfa.successors(s) {
            if !fwd[t.index()] {
                fwd[t.index()] = true;
                stack.push(t);
            }
        }
    }
    // backward reachability from reports
    let pred = nfa.predecessors();
    let mut bwd = vec![false; n];
    let mut stack: Vec<StateId> = nfa.reporting_states();
    for s in &stack {
        bwd[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for &t in &pred[s.index()] {
            if !bwd[t.index()] {
                bwd[t.index()] = true;
                stack.push(t);
            }
        }
    }
    let keep: Vec<bool> = (0..n).map(|i| fwd[i] && bwd[i]).collect();
    let mut out = nfa.clone();
    out.retain_states(&keep);
    let stats = OptimizeStats { states_before: n, states_after: out.len(), rounds: 1 };
    (out, stats)
}

/// The full space-optimization pipeline used for CA_S automata:
/// dead-state removal followed by prefix merging to fixpoint.
pub fn space_optimize(nfa: &HomNfa) -> (HomNfa, OptimizeStats) {
    let before = nfa.len();
    let (pruned, _) = remove_dead_states(nfa);
    let (merged, m) = merge_common_prefixes(&pruned);
    let stats =
        OptimizeStats { states_before: before, states_after: merged.len(), rounds: m.rounds };
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SparseEngine};
    use crate::regex::compile_patterns;

    fn assert_same_language(a: &HomNfa, b: &HomNfa, inputs: &[&[u8]]) {
        for input in inputs {
            let mut ea = SparseEngine::new(a).run(input);
            let mut eb = SparseEngine::new(b).run(input);
            ea.sort();
            eb.sort();
            assert_eq!(ea, eb, "diverged on {input:?}");
        }
    }

    #[test]
    fn shared_prefixes_merge() {
        let nfa = compile_patterns(&["artifact", "article", "artisan"]).unwrap();
        let (merged, stats) = merge_common_prefixes(&nfa);
        // "arti" x3 -> one copy saves 2*4=8 states... minus diverging tails.
        assert!(merged.len() < nfa.len());
        assert!(stats.reduction() > 0.2, "reduction {}", stats.reduction());
        assert_same_language(
            &nfa,
            &merged,
            &[b"artifact!", b"an article", b"artisan", b"artist", b"art"],
        );
    }

    #[test]
    fn distinct_reports_do_not_merge() {
        // Identical patterns with different codes must both report.
        let nfa = compile_patterns(&["abc", "abc"]).unwrap();
        let (merged, _) = merge_common_prefixes(&nfa);
        let ev = SparseEngine::new(&merged).run(b"abc");
        assert_eq!(ev.len(), 2, "both report codes must fire");
        // prefixes a,b merge; the two reporting c's stay apart
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn no_merge_when_nothing_shared() {
        let nfa = compile_patterns(&["ab", "cd"]).unwrap();
        let (merged, stats) = merge_common_prefixes(&nfa);
        assert_eq!(merged.len(), nfa.len());
        assert_eq!(stats.reduction(), 0.0);
    }

    #[test]
    fn merge_reduces_component_count() {
        use crate::analysis::connected_components;
        let nfa = compile_patterns(&["share1", "share2", "share3"]).unwrap();
        assert_eq!(connected_components(&nfa).len(), 3);
        let (merged, _) = merge_common_prefixes(&nfa);
        // merged "share" prefix joins all three patterns into one CC
        assert_eq!(connected_components(&merged).len(), 1);
        assert_same_language(&nfa, &merged, &[b"share1 share3", b"share", b"share2"]);
    }

    #[test]
    fn dead_state_removal() {
        use crate::charclass::CharClass;
        use crate::homogeneous::{ReportCode, StartKind};
        let mut n = HomNfa::new();
        let a = n.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, None);
        let b = n.add_state_full(CharClass::byte(b'b'), StartKind::None, Some(ReportCode(0)));
        let dead1 = n.add_state(CharClass::byte(b'x')); // unreachable
        let dead2 = n.add_state(CharClass::byte(b'y')); // reachable, no report path
        n.add_edge(a, b);
        n.add_edge(a, dead2);
        n.add_edge(dead1, b);
        let (pruned, stats) = remove_dead_states(&n);
        assert_eq!(pruned.len(), 2);
        assert_eq!(stats.states_before, 4);
        assert_same_language(&n, &pruned, &[b"ab", b"ay", b"xb"]);
    }

    #[test]
    fn space_optimize_pipeline_preserves_language() {
        let patterns: Vec<String> = (0..20).map(|i| format!("prefix{}", i % 5)).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        let (opt, stats) = space_optimize(&nfa);
        assert!(stats.reduction() > 0.5);
        assert_same_language(&nfa, &opt, &[b"prefix0", b"prefix4", b"prefix9", b"prefix"]);
    }

    #[test]
    fn shared_suffixes_merge() {
        // "xing", "ying", "zing": the "ing" tails merge backward from the
        // reporting state (same code required, so use duplicate patterns'
        // renumber=false style via identical codes).
        use crate::homogeneous::{ReportCode, StartKind};
        let mut nfa = HomNfa::new();
        for head in [b'x', b'y', b'z'] {
            let mut prev = nfa.add_state_full(
                crate::charclass::CharClass::byte(head),
                StartKind::AllInput,
                None,
            );
            for (i, &c) in b"ing".iter().enumerate() {
                let report = if i == 2 { Some(ReportCode(0)) } else { None };
                let id = nfa.add_state_full(
                    crate::charclass::CharClass::byte(c),
                    StartKind::None,
                    report,
                );
                nfa.add_edge(prev, id);
                prev = id;
            }
        }
        assert_eq!(nfa.len(), 12);
        let (merged, stats) = merge_common_suffixes(&nfa);
        // the three "g"(report) merge, then "n", then "i": 12 -> 6
        assert_eq!(merged.len(), 6, "suffix cascade");
        assert!(stats.reduction() > 0.4);
        assert_same_language(&nfa, &merged, &[b"xing", b"zing!", b"ing", b"xyzing"]);
    }

    #[test]
    fn suffix_merge_respects_reports_and_starts() {
        // different report codes must not merge
        let nfa = compile_patterns(&["ab", "cb"]).unwrap();
        let (merged, _) = merge_common_suffixes(&nfa);
        assert_eq!(merged.len(), nfa.len(), "distinct codes stay apart");
        assert_same_language(&nfa, &merged, &[b"ab cb", b"bb"]);
    }

    #[test]
    fn bidirectional_merging_beats_either_alone() {
        // diamond dictionary: shared prefix "pre", shared suffix "post"
        let patterns: Vec<String> =
            (0..6).map(|i| format!("pre{}post", (b'a' + i) as char)).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        // same report code everywhere so suffixes may merge
        let one_code: HomNfa = {
            let mut nfa = compile_patterns(&refs).unwrap();
            for s in nfa.reporting_states() {
                nfa.state_mut(s).report = Some(crate::homogeneous::ReportCode(0));
            }
            nfa
        };
        let (p, _) = merge_common_prefixes(&one_code);
        let (s, _) = merge_common_suffixes(&one_code);
        let (b, stats) = merge_bidirectional(&one_code);
        assert!(b.len() < p.len(), "bidirectional {} !< prefix {}", b.len(), p.len());
        assert!(b.len() < s.len(), "bidirectional {} !< suffix {}", b.len(), s.len());
        assert!(stats.rounds >= 1);
        assert_same_language(&one_code, &b, &[b"preapost", b"prefpost", b"prepost"]);
    }

    #[test]
    fn self_loops_survive_merging() {
        let nfa = compile_patterns(&["a.*z", "a.*z"]).unwrap();
        let (merged, _) = merge_common_prefixes(&nfa);
        assert_same_language(&nfa, &merged, &[b"a--z", b"az", b"a..z..z"]);
    }
}
