//! Error types for the automata toolchain.

use std::fmt;

/// Errors produced while building, parsing or transforming automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A regular expression failed to parse.
    ///
    /// Carries the byte offset in the pattern and a human-readable reason.
    ParseRegex {
        /// Byte offset into the pattern at which parsing failed.
        offset: usize,
        /// Reason for the failure.
        reason: String,
    },
    /// A regular expression matches the empty string.
    ///
    /// Homogeneous (ANML) automata report on symbol consumption, so a
    /// pattern that can accept zero symbols has no representation; the
    /// Cache Automaton benchmark suites contain no such pattern.
    NullableRegex,
    /// An ANML document failed to parse.
    ParseAnml {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Reason for the failure.
        reason: String,
    },
    /// An automaton failed validation (dangling edge, missing start, ...).
    InvalidAutomaton(String),
    /// A state id was out of range for the automaton it was used with.
    StateOutOfRange {
        /// Offending state id.
        state: u32,
        /// Number of states in the automaton.
        len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ParseRegex { offset, reason } => {
                write!(f, "regex parse error at byte {offset}: {reason}")
            }
            Error::NullableRegex => {
                write!(
                    f,
                    "pattern matches the empty string, which homogeneous automata cannot report"
                )
            }
            Error::ParseAnml { line, reason } => {
                write!(f, "ANML parse error at line {line}: {reason}")
            }
            Error::InvalidAutomaton(reason) => write!(f, "invalid automaton: {reason}"),
            Error::StateOutOfRange { state, len } => {
                write!(f, "state id {state} out of range for automaton with {len} states")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ParseRegex { offset: 3, reason: "unbalanced )".into() };
        assert_eq!(e.to_string(), "regex parse error at byte 3: unbalanced )");
        let e = Error::ParseAnml { line: 7, reason: "unknown tag".into() };
        assert_eq!(e.to_string(), "ANML parse error at line 7: unknown tag");
        let e = Error::StateOutOfRange { state: 9, len: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        assert!(!Error::NullableRegex.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
