//! Property-based tests for the automata toolchain.
//!
//! The heart of the suite is *differential testing*: the Glushkov and
//! Thompson compilation routes, and the sparse / bit-parallel / lazy-DFA
//! engines, are all independent implementations that must agree exactly on
//! randomly generated patterns, automata and inputs.

use ca_automata::analysis::connected_components;
use ca_automata::anml::{parse_anml, to_anml};
use ca_automata::charclass::CharClass;
use ca_automata::engine::{BitsetEngine, DfaEngine, Engine, MatchEvent, SparseEngine};
use ca_automata::homogeneous::{HomNfa, ReportCode, StartKind};
use ca_automata::optimize::{merge_common_prefixes, space_optimize};
use ca_automata::regex::{compile_pattern, compile_pattern_thompson, parse};
use proptest::prelude::*;

// ---------------------------------------------------------------- strategies

/// A random pattern string over a tiny alphabet, biased toward collisions.
fn pattern_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        4 => prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(str::to_string),
        1 => Just(".".to_string()),
        1 => Just("[ab]".to_string()),
        1 => Just("[^a]".to_string()),
        1 => Just("[b-d]".to_string()),
    ];
    let unit = leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // concatenation
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.concat()),
            // alternation
            prop::collection::vec(inner.clone(), 2..4).prop_map(|v| format!("({})", v.join("|"))),
            // quantifiers applied to a parenthesized body
            (inner.clone(), prop::sample::select(vec!["*", "+", "?", "{2}", "{1,3}", "{2,}"]))
                .prop_map(|(body, q)| format!("({body}){q}")),
        ]
    });
    // Prefix with a mandatory literal so the pattern is never nullable.
    (prop::sample::select(vec!["a", "b", "c"]), unit)
        .prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// Random input over a alphabet that overlaps the pattern alphabet.
fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abcde".to_vec()), 0..60)
}

/// A random well-formed homogeneous NFA.
fn nfa_strategy() -> impl Strategy<Value = HomNfa> {
    let state = (
        prop::collection::vec(prop::sample::select(b"abcd".to_vec()), 1..4),
        0..3u8,                     // start kind selector
        prop::bool::weighted(0.25), // reporting?
    );
    prop::collection::vec(state, 1..24).prop_flat_map(|specs| {
        let n = specs.len();
        let edges = prop::collection::vec((0..n, 0..n), 0..n * 3);
        (Just(specs), edges).prop_map(|(specs, edges)| {
            let mut nfa = HomNfa::new();
            for (i, (bytes, start_sel, report)) in specs.iter().enumerate() {
                let start = match start_sel {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let report = if *report { Some(ReportCode(i as u32)) } else { None };
                nfa.add_state_full(CharClass::of(bytes), start, report);
            }
            for (a, b) in edges {
                nfa.add_edge(ca_automata::StateId(a as u32), ca_automata::StateId(b as u32));
            }
            // Guarantee at least one start and one report so runs are
            // meaningful.
            let s0 = ca_automata::StateId(0);
            if nfa.start_states().is_empty() {
                nfa.state_mut(s0).start = StartKind::AllInput;
            }
            if nfa.reporting_states().is_empty() {
                nfa.state_mut(s0).report = Some(ReportCode(999));
            }
            nfa
        })
    })
}

fn sorted(mut ev: Vec<MatchEvent>) -> Vec<MatchEvent> {
    ev.sort();
    ev
}

// ------------------------------------------------------------------ charclass

proptest! {
    #[test]
    fn charclass_union_commutes(a in prop::collection::vec(any::<u8>(), 0..12),
                                b in prop::collection::vec(any::<u8>(), 0..12)) {
        let (ca, cb) = (CharClass::of(&a), CharClass::of(&b));
        prop_assert_eq!(ca.union(&cb), cb.union(&ca));
        prop_assert_eq!(ca.intersect(&cb), cb.intersect(&ca));
    }

    #[test]
    fn charclass_demorgan(a in prop::collection::vec(any::<u8>(), 0..12),
                          b in prop::collection::vec(any::<u8>(), 0..12)) {
        let (ca, cb) = (CharClass::of(&a), CharClass::of(&b));
        prop_assert_eq!(ca.union(&cb).negate(), ca.negate().intersect(&cb.negate()));
        prop_assert_eq!(ca.intersect(&cb).negate(), ca.negate().union(&cb.negate()));
    }

    #[test]
    fn charclass_difference_consistent(a in prop::collection::vec(any::<u8>(), 0..12),
                                       b in prop::collection::vec(any::<u8>(), 0..12)) {
        let (ca, cb) = (CharClass::of(&a), CharClass::of(&b));
        prop_assert_eq!(ca.difference(&cb), ca.intersect(&cb.negate()));
        prop_assert!(ca.difference(&cb).is_subset(&ca));
    }

    #[test]
    fn charclass_iter_matches_contains(a in prop::collection::vec(any::<u8>(), 0..20)) {
        let c = CharClass::of(&a);
        let via_iter: Vec<u8> = c.iter().collect();
        prop_assert_eq!(via_iter.len() as u32, c.len());
        for b in &via_iter {
            prop_assert!(c.contains(*b));
        }
        // ranges() covers exactly the members
        let mut from_ranges = CharClass::new();
        for (lo, hi) in c.ranges() {
            from_ranges = from_ranges.union(&CharClass::range(lo, hi));
        }
        prop_assert_eq!(from_ranges, c);
    }
}

// ----------------------------------------------------------------- compilers

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Glushkov and Thompson+homogenize accept identical languages.
    #[test]
    fn glushkov_equals_thompson(pattern in pattern_strategy(), input in input_strategy()) {
        let g = compile_pattern(&pattern).unwrap();
        let t = compile_pattern_thompson(&pattern).unwrap();
        let eg = sorted(SparseEngine::new(&g).run(&input));
        let et = sorted(SparseEngine::new(&t).run(&input));
        prop_assert_eq!(eg, et, "pattern {} diverged", pattern);
    }

    /// The canonical Display of a parsed pattern re-parses to the same AST.
    #[test]
    fn display_reparses(pattern in pattern_strategy()) {
        let first = parse(&pattern).unwrap();
        let rendered = first.to_string();
        let second = parse(&rendered).unwrap();
        prop_assert_eq!(first.ast, second.ast, "via {}", rendered);
    }
}

// ------------------------------------------------------------------- engines

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sparse, bitset and lazy-DFA engines agree on random automata.
    #[test]
    fn engines_agree(nfa in nfa_strategy(), input in input_strategy()) {
        let es = sorted(SparseEngine::new(&nfa).run(&input));
        let eb = sorted(BitsetEngine::new(&nfa).run(&input));
        prop_assert_eq!(&es, &eb, "sparse vs bitset");
        let mut dfa = DfaEngine::new(&nfa);
        if let Ok(ed) = dfa.try_run(&input) {
            prop_assert_eq!(&es, &sorted(ed), "sparse vs dfa");
        }
    }

    /// Engine activity statistics are consistent between implementations.
    #[test]
    fn engine_stats_agree(nfa in nfa_strategy(), input in input_strategy()) {
        let (_, ss) = SparseEngine::new(&nfa).run_stats(&input);
        let (_, bs) = BitsetEngine::new(&nfa).run_stats(&input);
        prop_assert_eq!(ss.cycles, bs.cycles);
        prop_assert_eq!(ss.total_matched, bs.total_matched);
        prop_assert_eq!(ss.max_matched, bs.max_matched);
        prop_assert_eq!(ss.reports, bs.reports);
    }
}

// ------------------------------------------------------------- optimizations

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Prefix merging never changes the match stream.
    #[test]
    fn prefix_merge_preserves_language(nfa in nfa_strategy(), input in input_strategy()) {
        let (merged, stats) = merge_common_prefixes(&nfa);
        prop_assert!(merged.len() <= nfa.len());
        prop_assert_eq!(stats.states_after, merged.len());
        let before = sorted(SparseEngine::new(&nfa).run(&input));
        let after = sorted(SparseEngine::new(&merged).run(&input));
        prop_assert_eq!(before, after);
    }

    /// Suffix merging never changes the match stream.
    #[test]
    fn suffix_merge_preserves_language(nfa in nfa_strategy(), input in input_strategy()) {
        let (merged, stats) = ca_automata::optimize::merge_common_suffixes(&nfa);
        prop_assert!(merged.len() <= nfa.len());
        prop_assert_eq!(stats.states_after, merged.len());
        let before = sorted(SparseEngine::new(&nfa).run(&input));
        let after = sorted(SparseEngine::new(&merged).run(&input));
        prop_assert_eq!(before, after);
    }

    /// Bidirectional merging never changes the match stream and never does
    /// worse than prefix merging alone.
    #[test]
    fn bidirectional_merge_preserves_language(nfa in nfa_strategy(), input in input_strategy()) {
        let (both, _) = ca_automata::optimize::merge_bidirectional(&nfa);
        let (prefix_only, _) = merge_common_prefixes(&nfa);
        prop_assert!(both.len() <= prefix_only.len());
        let before = sorted(SparseEngine::new(&nfa).run(&input));
        let after = sorted(SparseEngine::new(&both).run(&input));
        prop_assert_eq!(before, after);
    }

    /// The full space-optimization pipeline preserves the match stream.
    #[test]
    fn space_optimize_preserves_language(nfa in nfa_strategy(), input in input_strategy()) {
        let (opt, _) = space_optimize(&nfa);
        let before = sorted(SparseEngine::new(&nfa).run(&input));
        let after = sorted(SparseEngine::new(&opt).run(&input));
        prop_assert_eq!(before, after);
    }

    /// Merging cannot *increase* the number of connected components.
    #[test]
    fn merge_does_not_fragment(nfa in nfa_strategy()) {
        let (merged, _) = merge_common_prefixes(&nfa);
        let before = connected_components(&nfa).len();
        let after = connected_components(&merged).len();
        prop_assert!(after <= before);
    }
}

// -------------------------------------------------------------------- stride

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The 4-bit stride transform preserves the match stream exactly
    /// (positions mapped back to byte offsets).
    #[test]
    fn nibble_transform_preserves_language(nfa in nfa_strategy(), input in input_strategy()) {
        use ca_automata::stride::{byte_position, to_nibble_nfa, to_nibble_stream};
        let nibble = to_nibble_nfa(&nfa);
        prop_assert!(nibble.validate().is_ok() || nibble.is_empty());
        let mut transformed = SparseEngine::new(&nibble).run(&to_nibble_stream(&input));
        for e in transformed.iter_mut() {
            e.pos = byte_position(e.pos);
        }
        let expect = sorted(SparseEngine::new(&nfa).run(&input));
        prop_assert_eq!(expect, sorted(transformed));
    }

    /// Inflation is bounded by 32x (two states per rectangle, <= 16
    /// rectangles per state).
    #[test]
    fn nibble_inflation_bounded(nfa in nfa_strategy()) {
        use ca_automata::stride::to_nibble_nfa_with_stats;
        let (_, stats) = to_nibble_nfa_with_stats(&nfa);
        prop_assert!(stats.states_after <= 32 * stats.states_before);
        prop_assert!(stats.max_rectangles <= 16);
        prop_assert!(stats.inflation() >= 2.0 || stats.states_before == 0);
    }
}

// --------------------------------------------------------------------- anml

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ANML serialization round-trips structurally.
    #[test]
    fn anml_roundtrip(nfa in nfa_strategy()) {
        let text = to_anml(&nfa, "prop");
        let back = parse_anml(&text).unwrap();
        prop_assert_eq!(back, nfa);
    }
}

// ------------------------------------------------------------------ patterns

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// compile_pattern output is always a valid automaton whose reported
    /// matches dedupe per (pos, code).
    #[test]
    fn compiled_patterns_validate(pattern in pattern_strategy(), input in input_strategy()) {
        let nfa = compile_pattern(&pattern).unwrap();
        prop_assert!(nfa.validate().is_ok());
        let ev = SparseEngine::new(&nfa).run(&input);
        let mut dedup = ev.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), ev.len(), "duplicate events for {}", pattern);
    }
}
