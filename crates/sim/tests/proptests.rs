//! Property tests for the fabric simulator substrate.

use ca_automata::{CharClass, ReportCode};
use ca_sim::{
    emit_pages, load_pages, Bitstream, CacheGeometry, DesignKind, Fabric, Mask256, PartitionImage,
    PartitionLocation, Route, RouteVia,
};
use proptest::prelude::*;

/// Random mask as a set of bit indices.
fn mask_strategy() -> impl Strategy<Value = Mask256> {
    prop::collection::vec(any::<u8>(), 0..12).prop_map(|v| v.into_iter().collect())
}

/// A random valid single-way bitstream: 2-4 partitions in way 0 with
/// arbitrary labels, local switches and G1 routes.
fn bitstream_strategy() -> impl Strategy<Value = Bitstream> {
    let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
    let partition = (
        1usize..12,                                             // STE count
        prop::collection::vec(any::<u8>(), 1..4),               // label alphabet
        prop::collection::vec((0usize..12, 0usize..12), 0..20), // local edges
        prop::bool::ANY,                                        // has start
    );
    (
        prop::collection::vec(partition, 2..4),
        prop::collection::vec((0usize..4, 0u8..12, 0usize..4), 0..6),
    )
        .prop_map(move |(parts, raw_routes)| {
            let mut partitions = Vec::new();
            for (i, (n, alphabet, edges, start)) in parts.iter().enumerate() {
                let mut p = PartitionImage::new(PartitionLocation::from_index(&geometry, i));
                for k in 0..*n {
                    p.labels.push(CharClass::of(&[alphabet[k % alphabet.len()]]));
                    p.local.push(Mask256::ZERO);
                }
                for &(a, b) in edges {
                    if a < *n && b < *n {
                        p.local[a].set(b as u8);
                    }
                }
                if *start || i == 0 {
                    p.start_all.set(0);
                }
                p.reports.push(((n - 1) as u8, ReportCode(i as u32)));
                partitions.push(p);
            }
            let mut routes = Vec::new();
            for (ri, &(src, ste, dst)) in raw_routes.iter().enumerate() {
                let (src, dst) = (src % partitions.len(), dst % partitions.len());
                if src == dst {
                    continue;
                }
                let ste = ste % partitions[src].labels.len() as u8;
                let port = partitions[dst].import_dest.len() as u8;
                let mut dest = Mask256::ZERO;
                dest.set((ri % partitions[dst].labels.len()) as u8);
                partitions[dst].import_dest.push(dest);
                routes.push(Route {
                    src_partition: src as u32,
                    src_ste: ste,
                    via: RouteVia::G1,
                    dst_partition: dst as u32,
                    dst_port: port,
                });
            }
            Bitstream { design: DesignKind::Performance, geometry, partitions, routes }
        })
        .prop_filter("valid", |bs| bs.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Configuration pages round-trip losslessly and the reloaded fabric
    /// behaves identically.
    #[test]
    fn pages_roundtrip_preserves_behaviour(
        bs in bitstream_strategy(),
        input in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let image = emit_pages(&bs);
        let back = load_pages(&image).expect("roundtrip");
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.ste_count(), bs.ste_count());
        let a = Fabric::new(&bs).expect("valid").run(&input);
        let b = Fabric::new(&back).expect("valid").run(&input);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.stats.matched_total, b.stats.matched_total);
    }

    /// Truncating any page makes loading fail (no silent corruption).
    #[test]
    fn truncated_pages_never_load(bs in bitstream_strategy(), which in any::<prop::sample::Index>()) {
        let mut image = emit_pages(&bs);
        let idx = which.index(image.pages.len());
        let len = image.pages[idx].bytes.len();
        if len > 0 {
            image.pages[idx].bytes.truncate(len / 2);
            // either an error, or (for in-page truncation that still parses
            // a prefix) a size-mismatch error — never a silent success with
            // different content
            if let Ok(back) = load_pages(&image) {
                prop_assert_eq!(back, load_pages(&emit_pages(&bs)).unwrap());
            }
        }
    }

    /// Suspend/resume at an arbitrary split point is transparent (§2.9).
    #[test]
    fn suspend_resume_transparent(
        bs in bitstream_strategy(),
        input in prop::collection::vec(any::<u8>(), 0..64),
        split in any::<prop::sample::Index>(),
    ) {
        let full = Fabric::new(&bs).expect("valid").run(&input);
        let at = split.index(input.len() + 1);
        let mut fabric = Fabric::new(&bs).expect("valid");
        let first = fabric.run(&input[..at]);
        let second = fabric.run_with(
            &input[at..],
            &ca_sim::RunOptions { resume: first.snapshot.clone(), ..Default::default() },
        ).expect("snapshot from the same fabric");
        let mut stitched = first.events.clone();
        stitched.extend(second.events.iter().copied());
        prop_assert_eq!(stitched, full.events);
        prop_assert_eq!(
            first.stats.matched_total + second.stats.matched_total,
            full.stats.matched_total
        );
    }

    /// The worklist scan is bit-identical to the dense reference loop:
    /// same events, same stats (every counter), same exit snapshot.
    #[test]
    fn sparse_loop_agrees_with_dense_reference(
        bs in bitstream_strategy(),
        input in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let sparse = Fabric::new(&bs).expect("valid").run(&input);
        let dense = Fabric::new(&bs)
            .expect("valid")
            .run_dense(&input, &ca_sim::RunOptions::default())
            .expect("fresh run");
        prop_assert_eq!(sparse, dense);
    }

    /// Mask set/iter agreement under arbitrary operations.
    #[test]
    fn mask_algebra(a in mask_strategy(), b in mask_strategy()) {
        let or = a.or(&b);
        let and = a.and(&b);
        for bit in 0..=255u8 {
            prop_assert_eq!(or.get(bit), a.get(bit) || b.get(bit));
            prop_assert_eq!(and.get(bit), a.get(bit) && b.get(bit));
        }
        prop_assert_eq!(or.count() + and.count(), a.count() + b.count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary artifacts round-trip losslessly: decode(encode(bs)) is the
    /// identical bitstream, re-encoding is byte-stable, and the reloaded
    /// fabric behaves identically on arbitrary input.
    #[test]
    fn artifact_roundtrip_preserves_behaviour(
        bs in bitstream_strategy(),
        input in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let bytes = bs.encode();
        let back = Bitstream::decode(&bytes).expect("roundtrip");
        prop_assert_eq!(&back, &bs);
        prop_assert_eq!(back.encode(), bytes.clone());
        let a = Fabric::new(&bs).expect("valid").run(&input);
        let b = Fabric::new(&back).expect("valid").run(&input);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.stats.matched_total, b.stats.matched_total);
    }

    /// Any single-byte corruption of an artifact is rejected — the header
    /// checks catch header damage, the checksum catches payload damage.
    #[test]
    fn corrupted_artifacts_never_decode(
        bs in bitstream_strategy(),
        which in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = bs.encode();
        let idx = which.index(bytes.len());
        bytes[idx] ^= flip;
        if let Ok(back) = Bitstream::decode(&bytes) {
            // the only byte whose flip may go unnoticed is none: magic,
            // version, design, reserved and checksum are all pinned, and
            // the payload is checksummed — decoding success means the flip
            // produced an equal artifact, which xor with flip != 0 forbids
            prop_assert_eq!(back, bs, "corrupted artifact decoded to something else");
            prop_assert!(false, "flipped byte {} yet decode succeeded", idx);
        }
    }

    /// Truncated artifacts are always rejected.
    #[test]
    fn truncated_artifacts_never_decode(
        bs in bitstream_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = bs.encode();
        let at = cut.index(bytes.len());
        prop_assert!(Bitstream::decode(&bytes[..at]).is_err());
    }
}
