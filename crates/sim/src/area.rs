//! Area, reachability and design-space models (paper §5.4, Figure 10).
//!
//! *Reachability* is the average number of states reachable from a state in
//! one transition — the paper's scalability metric. It follows directly
//! from the switch topology: every state reaches its own 256-STE partition
//! through the local switch; the 16 G1-ported states additionally reach
//! every STE of the other partitions in their way; the 8 G4-ported states
//! (space design) reach the other three ways of their G4 group.

use crate::geometry::{CacheGeometry, DesignKind, STES_PER_PARTITION};
use crate::switch_model::SwitchSpec;
use crate::timing::{design_timing, state_match_ps, TimingParams, WireLayer};

/// Area roll-up for a given STE capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Local switches (one per partition).
    pub lswitch_count: usize,
    /// Per-way global switches.
    pub g1_count: usize,
    /// Cross-way global switches.
    pub g4_count: usize,
    /// Local-switch area, mm^2.
    pub lswitch_mm2: f64,
    /// G1 area, mm^2.
    pub g1_mm2: f64,
    /// G4 area, mm^2.
    pub g4_mm2: f64,
}

impl AreaReport {
    /// Total switch-area overhead, mm^2.
    pub fn total_mm2(&self) -> f64 {
        self.lswitch_mm2 + self.g1_mm2 + self.g4_mm2
    }
}

/// Switch-area overhead to support `stes` STEs (Figure 10 uses 32 K).
pub fn area_for_stes(design: DesignKind, stes: usize) -> AreaReport {
    let per_slice = CacheGeometry::for_design(design, 1);
    let stes_per_slice = per_slice.partitions_per_slice() * STES_PER_PARTITION;
    let slices = stes.div_ceil(stes_per_slice).max(1);
    let geom = CacheGeometry::for_design(design, slices);
    let partitions = stes.div_ceil(STES_PER_PARTITION);
    let (g1, g4) = match design {
        DesignKind::Performance => (SwitchSpec::G1_PERF, None),
        DesignKind::Space => (SwitchSpec::G1_SPACE, Some(SwitchSpec::G4_SPACE)),
    };
    let g1_count = geom.g1_switch_count();
    let g4_count = if g4.is_some() { geom.g4_switch_count() } else { 0 };
    AreaReport {
        lswitch_count: partitions,
        g1_count,
        g4_count,
        lswitch_mm2: partitions as f64 * SwitchSpec::LOCAL.area_mm2(),
        g1_mm2: g1_count as f64 * g1.area_mm2(),
        g4_mm2: g4.map_or(0.0, |s| g4_count as f64 * s.area_mm2()),
    }
}

/// Average one-hop reachability of a state under a design's topology.
pub fn reachability(design: DesignKind) -> f64 {
    let geom = CacheGeometry::for_design(design, 1);
    let local = STES_PER_PARTITION as f64;
    let ppw = geom.partitions_per_way() as f64;
    let g1_share = geom.g1_ports as f64 / local;
    let mut r = local + g1_share * (ppw - 1.0) * local;
    if geom.gswitch4_ways > 1 {
        let g4_share = geom.g4_ports as f64 / local;
        let other_ways = (geom.gswitch4_ways - 1) as f64;
        r += g4_share * other_ways * ppw * local;
    }
    r
}

/// One point of the Figure 10 design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Human-readable name.
    pub name: String,
    /// Average one-hop reachability.
    pub reachability: f64,
    /// Operating frequency, GHz.
    pub freq_ghz: f64,
    /// Switch-area overhead at 32 K STEs, mm^2.
    pub area_mm2_32k: f64,
    /// Maximum incoming transitions per state (fan-in).
    pub max_fan_in: usize,
}

/// The Figure 10 design-space sweep: local-only through CA_S, plus the
/// DRAM Automata Processor reference point.
pub fn design_space() -> Vec<DesignPoint> {
    let params = TimingParams::default();
    let mut points = Vec::new();

    // Highly performance-optimized: 64-STE partitions, local switch only.
    // One column-mux chunk per match; no G-switch stage.
    let match_ps = state_match_ps(&params, 1, true);
    let l64 = SwitchSpec::new(64, 64);
    let lswitch_ps = params.wire_mm_perf * WireLayer::GlobalMetal.ps_per_mm() + l64.delay_ps();
    let clock = match_ps.max(lswitch_ps);
    points.push(DesignPoint {
        name: "CA local-only (64-STE)".into(),
        reachability: 64.0,
        freq_ghz: (1000.0 / clock * 2.0).round() / 2.0,
        area_mm2_32k: (32 * 1024 / 64) as f64 * l64.area_mm2(),
        max_fan_in: 64,
    });

    for design in [DesignKind::Performance, DesignKind::Space] {
        points.push(DesignPoint {
            name: design.abbrev().into(),
            reachability: reachability(design),
            freq_ghz: design_timing(design).operating_freq_ghz(),
            area_mm2_32k: area_for_stes(design, 32 * 1024).total_mm2(),
            max_fan_in: STES_PER_PARTITION,
        });
    }

    // Micron AP reference (paper-quoted numbers).
    points.push(DesignPoint {
        name: "Micron AP".into(),
        reachability: 230.5,
        freq_ghz: 0.133,
        area_mm2_32k: 38.0,
        max_fan_in: 16,
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_matches_paper_ballpark() {
        // Paper: CA_P 361, CA_S 936. The closed-form topology model lands
        // within ~7%.
        let p = reachability(DesignKind::Performance);
        assert!((p - 361.0).abs() / 361.0 < 0.05, "CA_P reachability {p}");
        let s = reachability(DesignKind::Space);
        assert!((s - 936.0).abs() / 936.0 < 0.08, "CA_S reachability {s}");
        assert!(s > p);
    }

    #[test]
    fn area_matches_figure10() {
        // Paper: CA_P 4.3 mm^2, CA_S 4.6 mm^2 at 32K STEs; AP 38 mm^2.
        let p = area_for_stes(DesignKind::Performance, 32 * 1024).total_mm2();
        assert!((p - 4.3).abs() < 0.15, "CA_P area {p}");
        let s = area_for_stes(DesignKind::Space, 32 * 1024).total_mm2();
        assert!((s - 4.6).abs() < 0.2, "CA_S area {s}");
        assert!(s > p);
    }

    #[test]
    fn area_counts_are_consistent() {
        let r = area_for_stes(DesignKind::Space, 32 * 1024);
        assert_eq!(r.lswitch_count, 128);
        assert_eq!(r.g1_count, 8);
        assert_eq!(r.g4_count, 2);
        assert!(r.total_mm2() > 0.0);
    }

    #[test]
    fn small_capacity_rounds_up_to_one_partition() {
        let r = area_for_stes(DesignKind::Performance, 10);
        assert_eq!(r.lswitch_count, 1);
    }

    #[test]
    fn design_space_shape() {
        let pts = design_space();
        assert_eq!(pts.len(), 4);
        // local-only point: ~4 GHz, reachability 64 (paper Figure 10)
        assert_eq!(pts[0].reachability, 64.0);
        assert!((pts[0].freq_ghz - 4.0).abs() < 0.26, "{}", pts[0].freq_ghz);
        // frequency decreases as reachability grows across CA points
        assert!(pts[0].freq_ghz > pts[1].freq_ghz);
        assert!(pts[1].freq_ghz > pts[2].freq_ghz);
        assert!(pts[1].reachability < pts[2].reachability);
        // AP: highest area, lowest frequency
        let ap = &pts[3];
        assert_eq!(ap.area_mm2_32k, 38.0);
        assert!(pts.iter().all(|p| p.freq_ghz >= ap.freq_ghz));
        // CA supports 256 fan-in vs AP's 16 (paper Section 5.4)
        assert_eq!(pts[1].max_fan_in, 256);
        assert_eq!(ap.max_fan_in, 16);
    }
}
