//! Pipeline timing model (paper §2.5–2.6, Tables 3 and 4).
//!
//! The three pipeline stages are state-match (SRAM read), G-switch
//! propagation and L-switch propagation; the clock period is the slowest
//! stage. Constants are calibrated so the canonical configurations
//! reproduce the published stage delays exactly:
//!
//! | design | state-match | G-switch | L-switch | max freq | operated |
//! |--------|------------|----------|----------|----------|----------|
//! | CA_P   | 438 ps     | 227 ps   | 263 ps   | ~2.3 GHz | 2.0 GHz  |
//! | CA_S   | 687 ps     | 468 ps   | 304 ps   | ~1.4 GHz | 1.2 GHz  |
//!
//! and the Table 4 ablations (no sense-amp cycling → 1 GHz / 500 MHz;
//! H-Bus wires → 1.5 GHz / 1 GHz) fall out of the same formulas.

use crate::geometry::{CacheGeometry, DesignKind};
use crate::switch_model::SwitchSpec;
use std::fmt;

/// Wire layer used between arrays and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireLayer {
    /// Repeated 4X global metal (66 ps/mm) — the proposed design.
    #[default]
    GlobalMetal,
    /// Reusing the slice's H-Bus interconnect (300 ps/mm) — Table 4
    /// alternative.
    HBus,
}

impl WireLayer {
    /// Signal velocity in ps per mm.
    pub fn ps_per_mm(self) -> f64 {
        match self {
            WireLayer::GlobalMetal => 66.0,
            WireLayer::HBus => 300.0,
        }
    }
}

/// Technology and floorplan constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Full SRAM array read cycle at the 4 GHz array limit (ps).
    pub array_cycle_ps: f64,
    /// Fixed portion of an optimized read: decode + pre-charge + RWL (ps).
    pub match_base_ps: f64,
    /// Per-chunk sense time under sense-amp cycling (ps).
    pub sense_ps: f64,
    /// Array-to-G-switch distance for the performance design (mm),
    /// from the 3.19 mm x 3 mm slice floorplan.
    pub wire_mm_perf: f64,
    /// Array-to-G-switch distance for the space design (mm); longer because
    /// routes span up to 4 ways.
    pub wire_mm_space: f64,
}

impl Default for TimingParams {
    fn default() -> TimingParams {
        TimingParams {
            array_cycle_ps: 256.0,
            match_base_ps: 189.0,
            sense_ps: 62.25,
            wire_mm_perf: 1.5,
            wire_mm_space: 2.13,
        }
    }
}

/// Resolved delays of the three pipeline stages for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTiming {
    /// Which design the timing describes.
    pub design: DesignKind,
    /// Whether the sense-amp cycling optimization is enabled.
    pub sa_cycling: bool,
    /// Wire layer assumed for switch interconnect.
    pub wire: WireLayer,
    /// Stage 1: state-match (SRAM read of all column-muxed bits), ps.
    pub state_match_ps: f64,
    /// Stage 2: G-switch traversal including array-to-switch wire, ps.
    pub gswitch_ps: f64,
    /// Stage 3: L-switch traversal including switch-to-array wire, ps.
    pub lswitch_ps: f64,
}

impl PipelineTiming {
    /// Clock period: the slowest pipeline stage, ps.
    pub fn clock_ps(&self) -> f64 {
        self.state_match_ps.max(self.gswitch_ps).max(self.lswitch_ps)
    }

    /// Maximum operating frequency in GHz.
    pub fn max_freq_ghz(&self) -> f64 {
        1000.0 / self.clock_ps()
    }

    /// The frequency the design is operated at.
    ///
    /// The paper derates the canonical designs to round figures (CA_P
    /// 2.3 → 2.0 GHz, CA_S 1.4 → 1.2 GHz); ablation variants are quoted to
    /// the nearest 0.5 GHz (Table 4), which the same rule reproduces.
    pub fn operating_freq_ghz(&self) -> f64 {
        if self.sa_cycling && self.wire == WireLayer::GlobalMetal {
            return match self.design {
                DesignKind::Performance => 2.0,
                DesignKind::Space => 1.2,
            };
        }
        (self.max_freq_ghz() * 2.0).round() / 2.0
    }

    /// Sustained throughput in Gbit/s: one 8-bit symbol per cycle.
    pub fn throughput_gbps(&self) -> f64 {
        self.operating_freq_ghz() * 8.0
    }

    /// Cycle time at the operating frequency, in picoseconds.
    pub fn operating_clock_ps(&self) -> f64 {
        1000.0 / self.operating_freq_ghz()
    }
}

impl fmt::Display for PipelineTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: match {:.0} ps | G {:.0} ps | L {:.0} ps -> {:.1} GHz (op {:.1})",
            self.design,
            self.state_match_ps,
            self.gswitch_ps,
            self.lswitch_ps,
            self.max_freq_ghz(),
            self.operating_freq_ghz()
        )
    }
}

/// State-match delay for `chunks`-deep column multiplexing.
pub fn state_match_ps(params: &TimingParams, chunks: u32, sa_cycling: bool) -> f64 {
    if sa_cycling {
        // parallel pre-charge, then cycle the sense amplifiers
        params.match_base_ps + chunks as f64 * params.sense_ps
    } else {
        // one full array cycle per column-mux step
        chunks as f64 * params.array_cycle_ps
    }
}

/// Computes the pipeline timing of a design configuration.
pub fn pipeline_timing(
    design: DesignKind,
    params: &TimingParams,
    sa_cycling: bool,
    wire: WireLayer,
) -> PipelineTiming {
    let geom = CacheGeometry::for_design(design, 1);
    let (gswitch, wire_mm) = match design {
        DesignKind::Performance => (SwitchSpec::G1_PERF, params.wire_mm_perf),
        DesignKind::Space => (SwitchSpec::G4_SPACE, params.wire_mm_space),
    };
    let wire_ps = wire_mm * wire.ps_per_mm();
    PipelineTiming {
        design,
        sa_cycling,
        wire,
        state_match_ps: state_match_ps(params, geom.match_chunks, sa_cycling),
        gswitch_ps: wire_ps + gswitch.delay_ps(),
        lswitch_ps: wire_ps + SwitchSpec::LOCAL.delay_ps(),
    }
}

/// The canonical timing of a design (SA cycling on, global metal).
pub fn design_timing(design: DesignKind) -> PipelineTiming {
    pipeline_timing(design, &TimingParams::default(), true, WireLayer::GlobalMetal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table3_stage_delays() {
        let p = design_timing(DesignKind::Performance);
        assert!(close(p.state_match_ps, 438.0, 1.0), "{p}");
        assert!(close(p.gswitch_ps, 227.0, 1.0), "{p}");
        assert!(close(p.lswitch_ps, 263.0, 1.0), "{p}");
        assert_eq!(p.operating_freq_ghz(), 2.0);
        assert!(close(p.max_freq_ghz(), 2.3, 0.05), "max {}", p.max_freq_ghz());

        let s = design_timing(DesignKind::Space);
        assert!(close(s.state_match_ps, 687.0, 1.0), "{s}");
        assert!(close(s.gswitch_ps, 468.0, 2.0), "{s}");
        assert!(close(s.lswitch_ps, 304.0, 1.0), "{s}");
        assert_eq!(s.operating_freq_ghz(), 1.2);
        assert!(close(s.max_freq_ghz(), 1.45, 0.05), "max {}", s.max_freq_ghz());
    }

    #[test]
    fn table4_no_sa_cycling() {
        let params = TimingParams::default();
        let p = pipeline_timing(DesignKind::Performance, &params, false, WireLayer::GlobalMetal);
        assert_eq!(p.operating_freq_ghz(), 1.0);
        let s = pipeline_timing(DesignKind::Space, &params, false, WireLayer::GlobalMetal);
        assert_eq!(s.operating_freq_ghz(), 0.5);
    }

    #[test]
    fn table4_hbus() {
        let params = TimingParams::default();
        let p = pipeline_timing(DesignKind::Performance, &params, true, WireLayer::HBus);
        assert_eq!(p.operating_freq_ghz(), 1.5);
        let s = pipeline_timing(DesignKind::Space, &params, true, WireLayer::HBus);
        assert_eq!(s.operating_freq_ghz(), 1.0);
    }

    #[test]
    fn throughput_speedups_over_ap() {
        // AP: 133 MHz, 1 symbol/cycle -> 1.064 Gb/s.
        let ap_gbps = 0.133 * 8.0;
        let p = design_timing(DesignKind::Performance).throughput_gbps();
        let s = design_timing(DesignKind::Space).throughput_gbps();
        assert!(close(p / ap_gbps, 15.0, 0.1), "CA_P speedup {}", p / ap_gbps);
        assert!(close(s / ap_gbps, 9.0, 0.1), "CA_S speedup {}", s / ap_gbps);
    }

    #[test]
    fn clock_is_slowest_stage() {
        let t = design_timing(DesignKind::Performance);
        assert_eq!(t.clock_ps(), t.state_match_ps);
        assert!(t.operating_clock_ps() >= t.clock_ps());
    }

    #[test]
    fn hbus_slower_than_global_metal() {
        assert!(WireLayer::HBus.ps_per_mm() > WireLayer::GlobalMetal.ps_per_mm());
    }

    #[test]
    fn display_smoke() {
        let s = design_timing(DesignKind::Space).to_string();
        assert!(s.contains("CA_S"));
        assert!(s.contains("GHz"));
    }
}
