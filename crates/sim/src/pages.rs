//! Configuration model: binary pages and initialization timing (§2.10).
//!
//! The paper's compiler "creates binary pages which consist of STEs stored
//! in the order in which they need to be mapped to cache arrays", loads
//! them like code pages (huge pages so the low 16 address bits survive
//! virtual→physical translation), and writes switch configurations through
//! I/O-mapped load/stores. This module reproduces that artifact: a
//! [`Bitstream`] serializes into ordered [`ConfigPage`]s — SRAM images,
//! switch enable bits, start/report vectors — and deserializes back
//! losslessly. The timing model reproduces §2.10's initialization claim
//! (~0.2 ms for the largest benchmark, vs tens of milliseconds for the AP).

use crate::bitstream::{Bitstream, PartitionImage, Route, RouteVia};
use crate::geometry::{CacheGeometry, DesignKind, PartitionLocation, STES_PER_PARTITION};
use crate::mask::Mask256;
use ca_automata::{CharClass, ReportCode};

/// What a configuration page carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// 8 KB of STE columns (one partition's SRAM image).
    SteColumns,
    /// Local-switch cross-point enable bits (280 x 256 / 8 bytes).
    LocalSwitch,
    /// Start vectors, report map and import-port rows for one partition.
    ControlVectors,
    /// Global-switch routes of the whole automaton.
    GlobalRoutes,
}

/// One binary configuration page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPage {
    /// Physical-ordering key: pages are emitted sorted by location so the
    /// loader can stream them with sequential huge-page writes.
    pub location: Option<PartitionLocation>,
    /// Payload classification.
    pub kind: PageKind,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// A fully serialized automaton configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigImage {
    /// Design the image targets.
    pub design: DesignKind,
    /// Geometry the image targets.
    pub geometry: CacheGeometry,
    /// Ordered pages.
    pub pages: Vec<ConfigPage>,
}

impl ConfigImage {
    /// Total bytes across all pages.
    pub fn total_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.bytes.len()).sum()
    }

    /// Initialization-time model: cache-line writes at LLC fill bandwidth.
    ///
    /// With 64-byte lines filled at one line per 1.5 ns (~43 GB/s of
    /// streaming stores into LLC, well within a Xeon's fill bandwidth),
    /// the largest benchmark's ~11 MB of pages configure in ~0.25 ms —
    /// the paper's §2.10 figure ("about 0.2 ms on a Xeon server"). The AP
    /// by contrast reloads through its DDR interface with per-block
    /// routing reconfiguration, taking tens of milliseconds [Roy et al.,
    /// IPDPS'16].
    pub fn config_time_ms(&self) -> f64 {
        let lines = self.total_bytes().div_ceil(64);
        lines as f64 * 1.5e-9 * 1e3
    }
}

fn push_u32(bytes: &mut Vec<u8>, v: u32) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let v = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(v.try_into().expect("4 bytes")))
}

fn mask_bytes(mask: &Mask256) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, w) in mask.to_words().into_iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
    }
    out
}

fn mask_from(bytes: &[u8]) -> Mask256 {
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    }
    Mask256::from_words(words)
}

/// Serializes a bitstream into configuration pages, ordered by physical
/// location (slice, way, sub-array, half) exactly as the loader writes them.
pub fn emit_pages(bitstream: &Bitstream) -> ConfigImage {
    let mut order: Vec<usize> = (0..bitstream.partitions.len()).collect();
    order.sort_by_key(|&i| bitstream.partitions[i].location);
    let mut pages = Vec::new();
    for &i in &order {
        let p = &bitstream.partitions[i];
        // SRAM image: 256 rows x 32 bytes = 8 KB, one row per input symbol.
        let mut ste = Vec::with_capacity(STES_PER_PARTITION * 32);
        for row in p.sram_rows() {
            ste.extend_from_slice(&mask_bytes(&row));
        }
        pages.push(ConfigPage {
            location: Some(p.location),
            kind: PageKind::SteColumns,
            bytes: ste,
        });

        // Local switch: one 32-byte row per occupied source column.
        let mut lsw = Vec::with_capacity(p.local.len() * 32 + 4);
        push_u32(&mut lsw, p.local.len() as u32);
        for row in &p.local {
            lsw.extend_from_slice(&mask_bytes(row));
        }
        pages.push(ConfigPage {
            location: Some(p.location),
            kind: PageKind::LocalSwitch,
            bytes: lsw,
        });

        // Control vectors: labels, starts, reports, import rows.
        let mut ctl = Vec::new();
        push_u32(&mut ctl, p.labels.len() as u32);
        for label in &p.labels {
            for w in label.to_bits() {
                ctl.extend_from_slice(&w.to_le_bytes());
            }
        }
        ctl.extend_from_slice(&mask_bytes(&p.start_all));
        ctl.extend_from_slice(&mask_bytes(&p.start_sod));
        push_u32(&mut ctl, p.reports.len() as u32);
        for &(col, code) in &p.reports {
            push_u32(&mut ctl, col as u32);
            push_u32(&mut ctl, code.0);
        }
        push_u32(&mut ctl, p.import_dest.len() as u32);
        for row in &p.import_dest {
            ctl.extend_from_slice(&mask_bytes(row));
        }
        pages.push(ConfigPage {
            location: Some(p.location),
            kind: PageKind::ControlVectors,
            bytes: ctl,
        });
    }
    // Global routes page (CBOX-side I/O writes). Partition ids are
    // remapped to the physical (location-sorted) order the pages use.
    let mut new_index = vec![0u32; bitstream.partitions.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_index[old] = pos as u32;
    }
    let mut routes = Vec::new();
    push_u32(&mut routes, bitstream.routes.len() as u32);
    for r in &bitstream.routes {
        push_u32(&mut routes, new_index[r.src_partition as usize]);
        routes.push(r.src_ste);
        routes.push(match r.via {
            RouteVia::G1 => 0,
            RouteVia::G4 => 1,
        });
        push_u32(&mut routes, new_index[r.dst_partition as usize]);
        routes.push(r.dst_port);
    }
    pages.push(ConfigPage { location: None, kind: PageKind::GlobalRoutes, bytes: routes });
    ConfigImage { design: bitstream.design, geometry: bitstream.geometry, pages }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageError(pub String);

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed configuration page: {}", self.0)
    }
}

impl std::error::Error for PageError {}

/// Reconstructs a bitstream from configuration pages (inverse of
/// [`emit_pages`]).
///
/// # Errors
///
/// Returns [`PageError`] on truncated or inconsistent pages.
pub fn load_pages(image: &ConfigImage) -> Result<Bitstream, PageError> {
    let err = |s: &str| PageError(s.to_string());
    let mut partitions: Vec<PartitionImage> = Vec::new();
    let mut routes: Vec<Route> = Vec::new();
    let mut i = 0;
    while i < image.pages.len() {
        let page = &image.pages[i];
        match page.kind {
            PageKind::SteColumns => {
                // labels are reconstructed from ControlVectors; the SRAM
                // image page is validated for size and consistency.
                if page.bytes.len() != 256 * 32 {
                    return Err(err("STE page is not 8 KB"));
                }
                let Some(location) = page.location else {
                    return Err(err("STE page missing a location"));
                };
                let lsw = image.pages.get(i + 1).ok_or_else(|| err("missing L-switch page"))?;
                let ctl = image.pages.get(i + 2).ok_or_else(|| err("missing control page"))?;
                if lsw.kind != PageKind::LocalSwitch || ctl.kind != PageKind::ControlVectors {
                    return Err(err("partition pages out of order"));
                }
                let mut p = PartitionImage::new(location);
                // local switch
                let mut at = 0usize;
                let rows = read_u32(&lsw.bytes, &mut at).ok_or_else(|| err("truncated L-switch"))?
                    as usize;
                if lsw.bytes.len() != 4 + rows * 32 {
                    return Err(err("L-switch page size mismatch"));
                }
                for r in 0..rows {
                    p.local.push(mask_from(&lsw.bytes[4 + r * 32..4 + (r + 1) * 32]));
                }
                // control vectors
                let mut at = 0usize;
                let labels = read_u32(&ctl.bytes, &mut at)
                    .ok_or_else(|| err("truncated control page"))?
                    as usize;
                if labels != rows {
                    return Err(err("label/local row count mismatch"));
                }
                for _ in 0..labels {
                    let slice =
                        ctl.bytes.get(at..at + 32).ok_or_else(|| err("truncated labels"))?;
                    let mut words = [0u64; 4];
                    for (k, w) in words.iter_mut().enumerate() {
                        *w = u64::from_le_bytes(
                            slice[k * 8..(k + 1) * 8].try_into().expect("8 bytes"),
                        );
                    }
                    p.labels.push(CharClass::from_bits(words));
                    at += 32;
                }
                let starts =
                    ctl.bytes.get(at..at + 64).ok_or_else(|| err("truncated start vectors"))?;
                p.start_all = mask_from(&starts[0..32]);
                p.start_sod = mask_from(&starts[32..64]);
                at += 64;
                let reports =
                    read_u32(&ctl.bytes, &mut at).ok_or_else(|| err("truncated reports"))? as usize;
                for _ in 0..reports {
                    let col =
                        read_u32(&ctl.bytes, &mut at).ok_or_else(|| err("truncated report"))?;
                    let code =
                        read_u32(&ctl.bytes, &mut at).ok_or_else(|| err("truncated report"))?;
                    p.reports.push((col as u8, ReportCode(code)));
                }
                let imports =
                    read_u32(&ctl.bytes, &mut at).ok_or_else(|| err("truncated imports"))? as usize;
                for _ in 0..imports {
                    let row =
                        ctl.bytes.get(at..at + 32).ok_or_else(|| err("truncated import row"))?;
                    p.import_dest.push(mask_from(row));
                    at += 32;
                }
                // cross-check the SRAM image against the labels
                if page.bytes != sram_bytes(&p) {
                    return Err(err("SRAM image disagrees with labels"));
                }
                partitions.push(p);
                i += 3;
            }
            PageKind::GlobalRoutes => {
                let mut at = 0usize;
                let n =
                    read_u32(&page.bytes, &mut at).ok_or_else(|| err("truncated routes"))? as usize;
                for _ in 0..n {
                    let src =
                        read_u32(&page.bytes, &mut at).ok_or_else(|| err("truncated route"))?;
                    let ste = *page.bytes.get(at).ok_or_else(|| err("truncated route"))?;
                    at += 1;
                    let via = *page.bytes.get(at).ok_or_else(|| err("truncated route"))?;
                    at += 1;
                    let dst =
                        read_u32(&page.bytes, &mut at).ok_or_else(|| err("truncated route"))?;
                    let port = *page.bytes.get(at).ok_or_else(|| err("truncated route"))?;
                    at += 1;
                    routes.push(Route {
                        src_partition: src,
                        src_ste: ste,
                        via: if via == 0 { RouteVia::G1 } else { RouteVia::G4 },
                        dst_partition: dst,
                        dst_port: port,
                    });
                }
                i += 1;
            }
            _ => return Err(err("unexpected page kind at top level")),
        }
    }
    Ok(Bitstream { design: image.design, geometry: image.geometry, partitions, routes })
}

fn sram_bytes(p: &PartitionImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 * 32);
    for row in p.sram_rows() {
        out.extend_from_slice(&mask_bytes(&row));
    }
    out
}

/// Magic bytes of the `.capg` framed page-file format.
pub const CAPG_MAGIC: &[u8; 4] = b"CAPG";

impl ConfigImage {
    /// Serializes the image to the framed `.capg` byte format
    /// (magic, design, geometry, page count, then kind/location/
    /// length-prefixed pages).
    pub fn to_capg_bytes(&self) -> Vec<u8> {
        let mut bytes: Vec<u8> = Vec::with_capacity(self.total_bytes() + 1024);
        bytes.extend_from_slice(CAPG_MAGIC);
        bytes.push(match self.design {
            DesignKind::Performance => 0,
            DesignKind::Space => 1,
        });
        bytes.extend_from_slice(&(self.geometry.slices as u32).to_le_bytes());
        bytes.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for page in &self.pages {
            bytes.push(match page.kind {
                PageKind::SteColumns => 0,
                PageKind::LocalSwitch => 1,
                PageKind::ControlVectors => 2,
                PageKind::GlobalRoutes => 3,
            });
            match page.location {
                Some(loc) => {
                    bytes.push(1);
                    for v in [loc.slice, loc.way, loc.subarray, loc.half] {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                }
                None => bytes.push(0),
            }
            bytes.extend_from_slice(&(page.bytes.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&page.bytes);
        }
        bytes
    }

    /// Parses a `.capg` byte stream (inverse of [`to_capg_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`PageError`] on bad magic, truncation or malformed frames.
    ///
    /// [`to_capg_bytes`]: ConfigImage::to_capg_bytes
    pub fn from_capg_bytes(bytes: &[u8]) -> Result<ConfigImage, PageError> {
        let err = |s: &str| PageError(s.to_string());
        if bytes.get(..4) != Some(CAPG_MAGIC.as_slice()) {
            return Err(err("bad magic (not a .capg file)"));
        }
        let mut at = 4usize;
        let design = match bytes.get(at) {
            Some(0) => DesignKind::Performance,
            Some(1) => DesignKind::Space,
            _ => return Err(err("bad design byte")),
        };
        at += 1;
        let slices = read_u32(bytes, &mut at).ok_or_else(|| err("truncated header"))? as usize;
        if slices == 0 || slices > 64 {
            return Err(err("implausible slice count"));
        }
        let geometry = CacheGeometry::for_design(design, slices);
        let count = read_u32(bytes, &mut at).ok_or_else(|| err("truncated header"))? as usize;
        let mut pages = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let kind = match bytes.get(at) {
                Some(0) => PageKind::SteColumns,
                Some(1) => PageKind::LocalSwitch,
                Some(2) => PageKind::ControlVectors,
                Some(3) => PageKind::GlobalRoutes,
                _ => return Err(err("bad page kind")),
            };
            at += 1;
            let location = match bytes.get(at) {
                Some(0) => {
                    at += 1;
                    None
                }
                Some(1) => {
                    at += 1;
                    let mut vals = [0u32; 4];
                    for v in vals.iter_mut() {
                        *v = read_u32(bytes, &mut at).ok_or_else(|| err("truncated location"))?;
                    }
                    Some(PartitionLocation {
                        slice: vals[0],
                        way: vals[1],
                        subarray: vals[2],
                        half: vals[3],
                    })
                }
                _ => return Err(err("bad location flag")),
            };
            let len =
                read_u32(bytes, &mut at).ok_or_else(|| err("truncated page length"))? as usize;
            let body = bytes.get(at..at + len).ok_or_else(|| err("truncated page body"))?;
            at += len;
            pages.push(ConfigPage { location, kind, bytes: body.to_vec() });
        }
        if at != bytes.len() {
            return Err(err("trailing bytes after last page"));
        }
        Ok(ConfigImage { design, geometry, pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CacheGeometry, DesignKind, PartitionLocation};

    fn sample_bitstream() -> Bitstream {
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
        let mut p0 = PartitionImage::new(PartitionLocation::from_index(&geometry, 3));
        p0.labels = vec![CharClass::byte(b'a'), CharClass::range(b'0', b'9')];
        p0.local = vec![[1u8].into_iter().collect(), Mask256::ZERO];
        p0.start_all.set(0);
        p0.reports.push((1, ReportCode(7)));
        let mut p1 = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p1.labels = vec![CharClass::byte(b'z')];
        p1.local = vec![Mask256::ZERO];
        p1.start_sod.set(0);
        p1.reports.push((0, ReportCode(1)));
        p1.import_dest = vec![[0u8].into_iter().collect()];
        let routes = vec![Route {
            src_partition: 0,
            src_ste: 0,
            via: RouteVia::G1,
            dst_partition: 1,
            dst_port: 0,
        }];
        Bitstream { design: DesignKind::Performance, geometry, partitions: vec![p0, p1], routes }
    }

    #[test]
    fn pages_roundtrip() {
        let bs = sample_bitstream();
        let image = emit_pages(&bs);
        let back = load_pages(&image).unwrap();
        // partitions come back sorted by physical location
        assert_eq!(back.partitions.len(), 2);
        assert_eq!(back.routes.len(), 1);
        let mut expect = bs.partitions.clone();
        expect.sort_by_key(|p| p.location);
        assert_eq!(back.partitions, expect);
    }

    #[test]
    fn pages_are_location_ordered() {
        let image = emit_pages(&sample_bitstream());
        let locs: Vec<_> = image.pages.iter().filter_map(|p| p.location).collect();
        let mut sorted = locs.clone();
        sorted.sort();
        assert_eq!(locs, sorted);
        // 3 pages per partition + 1 routes page
        assert_eq!(image.pages.len(), 7);
    }

    #[test]
    fn ste_page_is_8kb() {
        let image = emit_pages(&sample_bitstream());
        let ste = image.pages.iter().find(|p| p.kind == PageKind::SteColumns).unwrap();
        assert_eq!(ste.bytes.len(), 8192);
    }

    #[test]
    fn config_time_matches_paper_scale() {
        // The largest benchmark uses ~430 partitions; its pages configure
        // in about 0.2 ms (paper §2.10: "about 0.2ms on a Xeon server").
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 8);
        let mut partitions = Vec::new();
        for i in 0..430 {
            let mut p = PartitionImage::new(PartitionLocation::from_index(&geometry, i));
            p.labels = vec![CharClass::byte(b'x'); 256];
            p.local = vec![Mask256::ZERO; 256];
            partitions.push(p);
        }
        let bs =
            Bitstream { design: DesignKind::Performance, geometry, partitions, routes: vec![] };
        let ms = emit_pages(&bs).config_time_ms();
        assert!((0.1..0.4).contains(&ms), "config time {ms} ms");
        // AP-style reconfiguration is quoted at tens of milliseconds.
        assert!(ms * 50.0 < 45.0 * 3.0);
    }

    #[test]
    fn corrupted_pages_rejected() {
        let bs = sample_bitstream();
        let mut image = emit_pages(&bs);
        image.pages[0].bytes.truncate(100);
        assert!(load_pages(&image).is_err());

        let mut image = emit_pages(&bs);
        // flip a bit in the SRAM page so it disagrees with the labels
        image.pages[0].bytes[0] ^= 1;
        let e = load_pages(&image).unwrap_err();
        assert!(e.to_string().contains("disagrees"));

        let mut image = emit_pages(&bs);
        image.pages.remove(1);
        assert!(load_pages(&image).is_err());
    }

    #[test]
    fn capg_bytes_roundtrip() {
        let bs = sample_bitstream();
        let image = emit_pages(&bs);
        let bytes = image.to_capg_bytes();
        let back = ConfigImage::from_capg_bytes(&bytes).unwrap();
        assert_eq!(back, image);
        // and the reloaded image still yields a working bitstream
        let bs2 = load_pages(&back).unwrap();
        assert!(bs2.validate().is_ok());
    }

    #[test]
    fn capg_rejects_garbage() {
        assert!(ConfigImage::from_capg_bytes(b"NOPE").is_err());
        let bs = sample_bitstream();
        let mut bytes = emit_pages(&bs).to_capg_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(ConfigImage::from_capg_bytes(&bytes).is_err());
        let mut bytes = emit_pages(&bs).to_capg_bytes();
        bytes.push(0);
        assert!(ConfigImage::from_capg_bytes(&bytes).is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn loaded_bitstream_validates_and_runs_identically() {
        use crate::fabric::Fabric;
        let bs = sample_bitstream();
        let back = load_pages(&emit_pages(&bs)).unwrap();
        back.validate().expect("reloaded bitstream is valid");
        let mut original = Fabric::new(&bs).unwrap();
        let mut reloaded = Fabric::new(&back).unwrap();
        for input in [b"a9z".as_slice(), b"zzz", b"a0a1a2z"] {
            assert_eq!(original.run(input).events, reloaded.run(input).events);
        }
    }
}
