//! Cycle-level Cache Automaton fabric simulator with calibrated timing,
//! energy, power, area and reachability models.
//!
//! This crate is the hardware half of the reproduction: it models the
//! Xeon-E5 LLC slice geometry of the paper (Figure 2), the 8T cross-point
//! switches (Table 2), the three-stage symbol pipeline with sense-amp
//! cycling (Tables 3–4), the activity-driven energy model (Figure 9) and
//! the area/reachability design space (Figure 10), plus a functional
//! simulator ([`Fabric`]) that executes compiled [`Bitstream`]s exactly as
//! the hardware would.
//!
//! Bitstreams are produced by the `ca-compiler` crate; the match streams
//! the fabric produces are bit-for-bit identical to the `ca-automata` CPU
//! engines (enforced by cross-crate differential tests).
//!
//! # Example: timing a design point
//!
//! ```
//! use ca_sim::{design_timing, DesignKind};
//!
//! let t = design_timing(DesignKind::Performance);
//! assert_eq!(t.operating_freq_ghz(), 2.0);       // the paper's CA_P
//! assert_eq!(t.throughput_gbps(), 16.0);         // 1 symbol/cycle
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod artifact;
pub mod bitstream;
pub mod energy;
pub mod fabric;
pub mod floorplan;
pub mod geometry;
pub mod mask;
pub mod pages;
pub mod switch_model;
pub mod system;
pub mod timing;

pub use area::{area_for_stes, design_space, reachability, AreaReport, DesignPoint};
pub use artifact::{fnv1a_64, ArtifactError, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use bitstream::{Bitstream, BitstreamError, PartitionImage, Route, RouteVia};
pub use energy::{
    energy_report, ideal_ap_per_symbol_nj, peak_power_w, EnergyBreakdown, EnergyParams,
    EnergyReport,
};
pub use fabric::{ExecReport, ExecStats, Fabric, OutputEntry, RunError, RunOptions, Snapshot};
pub use floorplan::{Floorplan, Point};
pub use geometry::{
    CacheGeometry, DesignKind, PartitionLocation, PARTITION_BYTES, STES_PER_PARTITION,
};
pub use mask::Mask256;
pub use pages::{emit_pages, load_pages, ConfigImage, ConfigPage, PageError, PageKind};
pub use switch_model::SwitchSpec;
pub use system::{scheduler_hint_w, sharing_report, SharingReport, SystemConfig};
pub use timing::{design_timing, pipeline_timing, PipelineTiming, TimingParams, WireLayer};
