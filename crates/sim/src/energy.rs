//! Energy and power model (paper §5.3, Figure 9).
//!
//! Energy per input symbol is activity-driven:
//!
//! * every partition with a non-zero active-state vector pays one SRAM
//!   array access (22 pJ, measured with a 28 nm memory compiler) plus one
//!   local-switch traversal (256 output bit-lines at the Table 2 pJ/bit) —
//!   partitions with no active STE are disabled and cost nothing;
//! * every signal through a global switch pays the switch traversal plus
//!   global-wire energy (0.07 pJ/mm/bit) both ways.
//!
//! The *Ideal AP* comparison model follows the paper: 1 pJ/bit DRAM array
//! access (optimistic; real DRAMs are 2.5–10 pJ/bit), zero interconnect
//! energy, same mapping.

use crate::fabric::ExecStats;
use crate::geometry::{CacheGeometry, DesignKind};
use crate::switch_model::SwitchSpec;
use crate::timing::TimingParams;

/// Calibrated energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// SRAM array access energy per active partition per cycle (pJ).
    pub array_access_pj: f64,
    /// Global-wire energy (pJ per mm per bit).
    pub wire_pj_per_mm_bit: f64,
    /// Ideal-AP DRAM array access energy (pJ per bit).
    pub ideal_ap_pj_per_bit: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams { array_access_pj: 22.0, wire_pj_per_mm_bit: 0.07, ideal_ap_pj_per_bit: 1.0 }
    }
}

/// Energy decomposition of a run, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// SRAM array accesses.
    pub array_nj: f64,
    /// Local-switch traversals.
    pub lswitch_nj: f64,
    /// Global-switch traversals.
    pub gswitch_nj: f64,
    /// Global-wire transport.
    pub wire_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.array_nj + self.lswitch_nj + self.gswitch_nj + self.wire_nj
    }
}

/// Full energy/power report for one run at one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Decomposed energy.
    pub breakdown: EnergyBreakdown,
    /// Energy per input symbol (nJ) — the Figure 9a metric.
    pub per_symbol_nj: f64,
    /// Average power at the design's operating frequency (W) — Figure 9b.
    pub avg_power_w: f64,
}

/// G-switch specs and wire distance for a design.
fn design_interconnect(design: DesignKind) -> (SwitchSpec, SwitchSpec, f64) {
    let t = TimingParams::default();
    match design {
        DesignKind::Performance => (SwitchSpec::G1_PERF, SwitchSpec::G1_PERF, t.wire_mm_perf),
        DesignKind::Space => (SwitchSpec::G1_SPACE, SwitchSpec::G4_SPACE, t.wire_mm_space),
    }
}

/// Computes the Cache Automaton energy report for a run.
///
/// `freq_ghz` is the operating frequency used for the power figure
/// (symbols per nanosecond).
pub fn energy_report(
    stats: &ExecStats,
    design: DesignKind,
    params: &EnergyParams,
    freq_ghz: f64,
) -> EnergyReport {
    let (g1, g4, wire_mm) = design_interconnect(design);
    let active = stats.active_partition_cycles as f64;
    let lswitch_pj_per_use =
        SwitchSpec::LOCAL.energy_pj_per_bit() * SwitchSpec::LOCAL.outputs as f64;
    let g1_pj_per_signal = g1.energy_pj_per_bit() * g1.outputs as f64;
    let g4_pj_per_signal = g4.energy_pj_per_bit() * g4.outputs as f64;
    let wire_pj_per_signal = 2.0 * wire_mm * params.wire_pj_per_mm_bit;

    let breakdown = EnergyBreakdown {
        array_nj: active * params.array_access_pj / 1000.0,
        lswitch_nj: active * lswitch_pj_per_use / 1000.0,
        gswitch_nj: (stats.g1_signals as f64 * g1_pj_per_signal
            + stats.g4_signals as f64 * g4_pj_per_signal)
            / 1000.0,
        wire_nj: (stats.g1_signals + stats.g4_signals) as f64 * wire_pj_per_signal / 1000.0,
    };
    let per_symbol_nj =
        if stats.symbols == 0 { 0.0 } else { breakdown.total_nj() / stats.symbols as f64 };
    EnergyReport {
        breakdown,
        per_symbol_nj,
        // nJ/symbol x symbols/ns = W
        avg_power_w: per_symbol_nj * freq_ghz,
    }
}

/// Ideal-AP energy per symbol (nJ) for the same activity: 1 pJ/bit over
/// each active partition's 256-bit row, no interconnect cost.
pub fn ideal_ap_per_symbol_nj(stats: &ExecStats, params: &EnergyParams) -> f64 {
    if stats.symbols == 0 {
        return 0.0;
    }
    let per_access_pj = params.ideal_ap_pj_per_bit * 256.0;
    stats.active_partition_cycles as f64 * per_access_pj / 1000.0 / stats.symbols as f64
}

/// Worst-case (all partitions active every cycle) power at the operating
/// frequency — the paper's 71.3 W (CA_P, 8 slices) peak figure.
pub fn peak_power_w(
    geom: &CacheGeometry,
    design: DesignKind,
    params: &EnergyParams,
    freq_ghz: f64,
) -> f64 {
    let lswitch_pj = SwitchSpec::LOCAL.energy_pj_per_bit() * SwitchSpec::LOCAL.outputs as f64;
    let per_partition_pj = params.array_access_pj + lswitch_pj;
    let _ = design;
    geom.total_partitions() as f64 * per_partition_pj * freq_ghz / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(active: u64, symbols: u64, g1: u64, g4: u64) -> ExecStats {
        ExecStats {
            symbols,
            cycles: symbols + 2,
            active_partition_cycles: active,
            g1_signals: g1,
            g4_signals: g4,
            ..Default::default()
        }
    }

    #[test]
    fn per_partition_cost_matches_calibration() {
        // One active partition for one symbol: 22 pJ + 256 x 0.191 pJ.
        let r = energy_report(&stats(1, 1, 0, 0), DesignKind::Space, &EnergyParams::default(), 1.2);
        let expected = (22.0 + 256.0 * 0.191) / 1000.0;
        assert!((r.per_symbol_nj - expected).abs() < 1e-9, "{}", r.per_symbol_nj);
    }

    #[test]
    fn space_design_average_lands_near_paper() {
        // The paper's CA_S average is 2.3 nJ/symbol; with the calibrated
        // constants that corresponds to ~32 active partitions per cycle.
        let r =
            energy_report(&stats(32, 1, 0, 0), DesignKind::Space, &EnergyParams::default(), 1.2);
        assert!((r.per_symbol_nj - 2.3).abs() < 0.15, "{} nJ", r.per_symbol_nj);
    }

    #[test]
    fn ideal_ap_is_about_3x_worse() {
        // Paper: CA consumes ~3x less than Ideal AP under the same mapping.
        let s = stats(32, 1, 0, 0);
        let ca = energy_report(&s, DesignKind::Space, &EnergyParams::default(), 1.2);
        let ap = ideal_ap_per_symbol_nj(&s, &EnergyParams::default());
        let ratio = ap / ca.per_symbol_nj;
        assert!((2.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gswitch_signals_add_energy() {
        let base =
            energy_report(&stats(4, 10, 0, 0), DesignKind::Space, &EnergyParams::default(), 1.2);
        let with_g =
            energy_report(&stats(4, 10, 5, 3), DesignKind::Space, &EnergyParams::default(), 1.2);
        assert!(with_g.per_symbol_nj > base.per_symbol_nj);
        assert!(with_g.breakdown.gswitch_nj > 0.0);
        assert!(with_g.breakdown.wire_nj > 0.0);
        // G4 signals are pricier than G1 signals
        let g1_only =
            energy_report(&stats(4, 10, 8, 0), DesignKind::Space, &EnergyParams::default(), 1.2);
        let g4_only =
            energy_report(&stats(4, 10, 0, 8), DesignKind::Space, &EnergyParams::default(), 1.2);
        assert!(g4_only.breakdown.gswitch_nj > g1_only.breakdown.gswitch_nj);
    }

    #[test]
    fn power_scales_with_frequency() {
        let s = stats(10, 10, 0, 0);
        let slow = energy_report(&s, DesignKind::Performance, &EnergyParams::default(), 1.0);
        let fast = energy_report(&s, DesignKind::Performance, &EnergyParams::default(), 2.0);
        assert!((fast.avg_power_w / slow.avg_power_w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn peak_power_matches_paper_prototype() {
        // CA_P with 8 slices (128K STEs): paper quotes 71.3 W.
        let geom = crate::geometry::CacheGeometry::for_design(DesignKind::Performance, 8);
        let w = peak_power_w(&geom, DesignKind::Performance, &EnergyParams::default(), 2.0);
        assert!((w - 71.3).abs() < 2.0, "peak {w} W");
    }

    #[test]
    fn empty_run_zero_energy() {
        let r = energy_report(
            &ExecStats::default(),
            DesignKind::Performance,
            &EnergyParams::default(),
            2.0,
        );
        assert_eq!(r.per_symbol_nj, 0.0);
        assert_eq!(r.breakdown.total_nj(), 0.0);
    }
}
