//! Compiled automaton images: what the compiler loads into the cache.
//!
//! A [`Bitstream`] is the software analogue of the binary pages the paper's
//! compiler produces (§2.10): per-partition STE columns (SRAM contents),
//! local-switch cross-point configurations, global-switch routes, start
//! vectors and report maps.

use crate::geometry::{CacheGeometry, DesignKind, PartitionLocation, STES_PER_PARTITION};
use crate::mask::Mask256;
use ca_automata::{CharClass, ReportCode};
use std::fmt;

/// Which global switch a route traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteVia {
    /// Per-way G-switch (16 ports per partition).
    G1,
    /// Cross-way G-switch bridging 4 ways (8 ports per partition, CA_S).
    G4,
}

impl fmt::Display for RouteVia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteVia::G1 => write!(f, "G1"),
            RouteVia::G4 => write!(f, "G4"),
        }
    }
}

/// One inter-partition connection: when the source STE matches, the
/// destination partition's import port `dst_port` is asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    /// Index of the source partition in [`Bitstream::partitions`].
    pub src_partition: u32,
    /// Source STE column within the source partition.
    pub src_ste: u8,
    /// Which global switch carries the signal.
    pub via: RouteVia,
    /// Index of the destination partition.
    pub dst_partition: u32,
    /// Import-port slot at the destination (row 256+port of its L-switch).
    pub dst_port: u8,
}

/// The image of one 256-STE partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionImage {
    /// Physical placement.
    pub location: PartitionLocation,
    /// STE labels, one per occupied column (≤ 256). Column `i` of the SRAM
    /// array holds the one-hot encoding of `labels[i]`.
    pub labels: Vec<CharClass>,
    /// Local-switch rows 0..256: `local[s]` = destination STEs enabled when
    /// column `s` matches.
    pub local: Vec<Mask256>,
    /// Local-switch rows 256..: `import_dest[p]` = destination STEs enabled
    /// when import port `p` is asserted by a global switch.
    pub import_dest: Vec<Mask256>,
    /// STEs enabled before every symbol (ANML `all-input`).
    pub start_all: Mask256,
    /// STEs enabled before the first symbol only (`start-of-data`).
    pub start_sod: Mask256,
    /// Reporting columns and their codes.
    pub reports: Vec<(u8, ReportCode)>,
}

impl PartitionImage {
    /// An empty partition at `location`.
    pub fn new(location: PartitionLocation) -> PartitionImage {
        PartitionImage {
            location,
            labels: Vec::new(),
            local: Vec::new(),
            import_dest: Vec::new(),
            start_all: Mask256::ZERO,
            start_sod: Mask256::ZERO,
            reports: Vec::new(),
        }
    }

    /// Occupied STE columns.
    pub fn ste_count(&self) -> usize {
        self.labels.len()
    }

    /// The 256-row SRAM image of this partition: row `b` has bit `s` set iff
    /// column `s` matches input symbol `b`. This is exactly the data the
    /// compiler's binary pages carry.
    pub fn sram_rows(&self) -> Vec<Mask256> {
        let mut rows = vec![Mask256::ZERO; 256];
        for (s, label) in self.labels.iter().enumerate() {
            for b in label.iter() {
                rows[b as usize].set(s as u8);
            }
        }
        rows
    }
}

/// A fully placed, routed and configured automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Design point the image was compiled for.
    pub design: DesignKind,
    /// Geometry it must be loaded into.
    pub geometry: CacheGeometry,
    /// Partition images (dense, in allocation order).
    pub partitions: Vec<PartitionImage>,
    /// Inter-partition routes through the global switches.
    pub routes: Vec<Route>,
}

/// A bitstream that violates a structural or architectural constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitstreamError(pub String);

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bitstream: {}", self.0)
    }
}

impl std::error::Error for BitstreamError {}

impl Bitstream {
    /// Total STEs stored.
    pub fn ste_count(&self) -> usize {
        self.partitions.iter().map(PartitionImage::ste_count).sum()
    }

    /// Cache bytes occupied (whole partitions are allocated).
    pub fn utilization_bytes(&self) -> usize {
        self.geometry.utilization_bytes(self.partitions.len())
    }

    /// Checks every architectural constraint the hardware imposes.
    ///
    /// # Errors
    ///
    /// Returns the first violation: over-full partitions, out-of-range
    /// columns/ports, duplicate locations, duplicate report columns, route
    /// endpoints that the switch topology cannot connect, or port-count
    /// overflows (16 G1 / 8 G4 exports per partition, matching import
    /// capacity).
    pub fn validate(&self) -> Result<(), BitstreamError> {
        let err = |s: String| Err(BitstreamError(s));
        self.geometry.validate().map_err(BitstreamError)?;
        let mut locations = std::collections::HashSet::new();
        for (i, p) in self.partitions.iter().enumerate() {
            if p.labels.len() > STES_PER_PARTITION {
                return err(format!("partition {i} holds {} STEs (max 256)", p.labels.len()));
            }
            if p.local.len() != p.labels.len() {
                return err(format!("partition {i}: local rows != labels"));
            }
            let max_ports = self.geometry.g1_ports + self.geometry.g4_ports;
            if p.import_dest.len() > max_ports {
                return err(format!(
                    "partition {i} has {} import ports (max {max_ports})",
                    p.import_dest.len()
                ));
            }
            if !locations.insert(p.location) {
                return err(format!("duplicate partition location {}", p.location));
            }
            let mut report_cols = Mask256::ZERO;
            for (col, _) in &p.reports {
                if *col as usize >= p.labels.len() {
                    return err(format!("partition {i}: report column {col} unoccupied"));
                }
                if report_cols.get(*col) {
                    return err(format!("partition {i}: duplicate report column {col}"));
                }
                report_cols.set(*col);
            }
            for row in p.local.iter().chain(p.import_dest.iter()) {
                if let Some(bad) = row.iter().find(|&b| b as usize >= p.labels.len()) {
                    return err(format!("partition {i}: switch row targets empty column {bad}"));
                }
            }
            for m in [&p.start_all, &p.start_sod] {
                if let Some(bad) = m.iter().find(|&b| b as usize >= p.labels.len()) {
                    return err(format!("partition {i}: start bit {bad} unoccupied"));
                }
            }
        }
        // route constraints
        let mut g1_exports = vec![0usize; self.partitions.len()];
        let mut g4_exports = vec![0usize; self.partitions.len()];
        let mut seen_export = std::collections::HashSet::new();
        let mut seen_import = std::collections::HashSet::new();
        for (ri, r) in self.routes.iter().enumerate() {
            let Some(src) = self.partitions.get(r.src_partition as usize) else {
                return err(format!("route {ri}: source partition out of range"));
            };
            let Some(dst) = self.partitions.get(r.dst_partition as usize) else {
                return err(format!("route {ri}: destination partition out of range"));
            };
            if r.src_partition == r.dst_partition {
                return err(format!("route {ri}: self-route (use the local switch)"));
            }
            if r.src_ste as usize >= src.labels.len() {
                return err(format!("route {ri}: source STE {} unoccupied", r.src_ste));
            }
            if r.dst_port as usize >= dst.import_dest.len() {
                return err(format!("route {ri}: destination port {} unconfigured", r.dst_port));
            }
            match r.via {
                RouteVia::G1 => {
                    if !src.location.same_way(&dst.location) {
                        return err(format!(
                            "route {ri}: G1 cannot connect {} to {}",
                            src.location, dst.location
                        ));
                    }
                    if seen_export.insert((r.src_partition, r.src_ste, RouteVia::G1)) {
                        g1_exports[r.src_partition as usize] += 1;
                    }
                }
                RouteVia::G4 => {
                    if !src.location.same_g4_group(&dst.location, &self.geometry) {
                        return err(format!(
                            "route {ri}: G4 cannot connect {} to {}",
                            src.location, dst.location
                        ));
                    }
                    if seen_export.insert((r.src_partition, r.src_ste, RouteVia::G4)) {
                        g4_exports[r.src_partition as usize] += 1;
                    }
                }
            }
            if !seen_import.insert((r.dst_partition, r.dst_port, r.src_partition, r.src_ste)) {
                return err(format!("route {ri} duplicates an earlier route"));
            }
        }
        for (i, &n) in g1_exports.iter().enumerate() {
            if n > self.geometry.g1_ports {
                return err(format!(
                    "partition {i} exports {n} STEs via G1 (max {})",
                    self.geometry.g1_ports
                ));
            }
        }
        for (i, &n) in g4_exports.iter().enumerate() {
            if n > self.geometry.g4_ports {
                return err(format!(
                    "partition {i} exports {n} STEs via G4 (max {})",
                    self.geometry.g4_ports
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Bitstream {
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
        let mut p0 = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p0.labels.push(CharClass::byte(b'a'));
        p0.local.push(Mask256::ZERO);
        p0.start_all.set(0);
        let mut p1 = PartitionImage::new(PartitionLocation::from_index(&geometry, 1));
        p1.labels.push(CharClass::byte(b'b'));
        p1.local.push(Mask256::ZERO);
        p1.reports.push((0, ReportCode(0)));
        p1.import_dest.push([0u8].into_iter().collect());
        let routes = vec![Route {
            src_partition: 0,
            src_ste: 0,
            via: RouteVia::G1,
            dst_partition: 1,
            dst_port: 0,
        }];
        Bitstream { design: DesignKind::Performance, geometry, partitions: vec![p0, p1], routes }
    }

    #[test]
    fn valid_bitstream_passes() {
        let bs = tiny();
        assert!(bs.validate().is_ok(), "{:?}", bs.validate());
        assert_eq!(bs.ste_count(), 2);
        assert_eq!(bs.utilization_bytes(), 2 * 8192);
    }

    #[test]
    fn sram_rows_encode_labels() {
        let bs = tiny();
        let rows = bs.partitions[0].sram_rows();
        assert!(rows[b'a' as usize].get(0));
        assert!(!rows[b'b' as usize].get(0));
        assert_eq!(rows.len(), 256);
    }

    #[test]
    fn rejects_overfull_partition() {
        let mut bs = tiny();
        bs.partitions[0].labels = vec![CharClass::byte(b'x'); 257];
        bs.partitions[0].local = vec![Mask256::ZERO; 257];
        let e = bs.validate().unwrap_err();
        assert!(e.to_string().contains("max 256"));
    }

    #[test]
    fn rejects_bad_route_endpoint() {
        let mut bs = tiny();
        bs.routes[0].dst_partition = 9;
        assert!(bs.validate().is_err());
        let mut bs = tiny();
        bs.routes[0].src_ste = 5;
        assert!(bs.validate().is_err());
        let mut bs = tiny();
        bs.routes[0].dst_port = 3;
        assert!(bs.validate().is_err());
    }

    #[test]
    fn rejects_cross_way_g1() {
        let mut bs = tiny();
        // move partition 1 to another way
        let per_way = bs.geometry.partitions_per_way();
        bs.partitions[1].location = PartitionLocation::from_index(&bs.geometry, per_way);
        let e = bs.validate().unwrap_err();
        assert!(e.to_string().contains("G1 cannot connect"), "{e}");
    }

    #[test]
    fn rejects_g4_on_performance_design() {
        let mut bs = tiny();
        bs.routes[0].via = RouteVia::G4;
        // CA_P has gswitch4_ways = 0: no two partitions share a G4 group
        assert!(bs.validate().is_err());
    }

    #[test]
    fn rejects_export_overflow() {
        let mut bs = tiny();
        let n = bs.geometry.g1_ports;
        bs.partitions[0].labels = vec![CharClass::byte(b'x'); n + 1];
        bs.partitions[0].local = vec![Mask256::ZERO; n + 1];
        bs.partitions[1].import_dest = vec![Mask256::ZERO; 17];
        // 17 distinct exporting STEs > 16 G1 ports
        bs.routes = (0..n as u8 + 1)
            .map(|i| Route {
                src_partition: 0,
                src_ste: i,
                via: RouteVia::G1,
                dst_partition: 1,
                dst_port: i,
            })
            .collect();
        let e = bs.validate().unwrap_err();
        assert!(e.to_string().contains("import ports") || e.to_string().contains("via G1"), "{e}");
    }

    #[test]
    fn rejects_report_on_empty_column() {
        let mut bs = tiny();
        bs.partitions[1].reports.push((7, ReportCode(1)));
        assert!(bs.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_report_column() {
        // Two codes on the same column would make the fabric's dense
        // report table ambiguous; reject at load time instead.
        let mut bs = tiny();
        bs.partitions[1].reports.push((0, ReportCode(1)));
        let e = bs.validate().unwrap_err();
        assert!(e.to_string().contains("duplicate report column 0"), "{e}");
    }

    #[test]
    fn rejects_duplicate_location() {
        let mut bs = tiny();
        bs.partitions[1].location = bs.partitions[0].location;
        assert!(bs.validate().is_err());
    }
}
