//! System integration model (§2.9): cache sharing through CAT and the
//! power governor's scheduling hints.
//!
//! The paper runs NFA computation in 4–8 of each slice's 20 ways, leaving
//! the rest to ordinary processes via Intel Cache Allocation Technology,
//! and requires the OS scheduler to keep the combined package power under
//! TDP using coarse peak-power hints derived by the compiler from average
//! active-partition counts.

use crate::energy::{peak_power_w, EnergyParams};
use crate::geometry::{CacheGeometry, DesignKind};
use crate::switch_model::SwitchSpec;

/// Host/system parameters (defaults: Xeon E5-2600 v3, the paper's host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Package thermal design power, watts.
    pub tdp_w: f64,
    /// Total LLC ways per slice (automata + regular cache).
    pub llc_ways_per_slice: usize,
    /// LLC capacity per slice, MB.
    pub slice_mb: f64,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig { tdp_w: 160.0, llc_ways_per_slice: 20, slice_mb: 2.5 }
    }
}

/// What the rest of the system keeps while the automaton runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingReport {
    /// LLC ways per slice left to ordinary cache traffic.
    pub cache_ways_remaining: usize,
    /// LLC capacity left to ordinary cache traffic, MB (all slices).
    pub cache_mb_remaining: f64,
    /// Worst-case automaton power (every partition active every cycle), W.
    pub peak_power_w: f64,
    /// TDP headroom left for the cores at automaton peak, W.
    pub tdp_headroom_w: f64,
    /// `true` if the automaton alone stays under TDP (it always should;
    /// the paper notes peak power is high but well under the 160 W TDP).
    pub fits_tdp: bool,
}

/// Computes the CAT sharing and power picture for a geometry at an
/// operating frequency.
pub fn sharing_report(
    geom: &CacheGeometry,
    system: &SystemConfig,
    design: DesignKind,
    freq_ghz: f64,
) -> SharingReport {
    let peak = peak_power_w(geom, design, &EnergyParams::default(), freq_ghz);
    let ways_remaining = system.llc_ways_per_slice.saturating_sub(geom.automata_ways);
    SharingReport {
        cache_ways_remaining: ways_remaining,
        cache_mb_remaining: ways_remaining as f64 / system.llc_ways_per_slice as f64
            * system.slice_mb
            * geom.slices as f64,
        peak_power_w: peak,
        tdp_headroom_w: system.tdp_w - peak,
        fits_tdp: peak < system.tdp_w,
    }
}

/// The compiler's coarse scheduling hint (§2.9): expected automaton power
/// from the average active-partition count of representative inputs.
pub fn scheduler_hint_w(avg_active_partitions: f64, freq_ghz: f64) -> f64 {
    let per_partition_pj = EnergyParams::default().array_access_pj
        + SwitchSpec::LOCAL.energy_pj_per_bit() * SwitchSpec::LOCAL.outputs as f64;
    avg_active_partitions * per_partition_pj * freq_ghz / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::design_timing;

    #[test]
    fn prototype_stays_under_tdp() {
        // Paper §5.3: the 8-way, 8-slice CA_P prototype peaks near 75 W,
        // "much lower than TDP of the processor at 160W".
        let geom = CacheGeometry::for_design(DesignKind::Performance, 8);
        let r = sharing_report(
            &geom,
            &SystemConfig::default(),
            DesignKind::Performance,
            design_timing(DesignKind::Performance).operating_freq_ghz(),
        );
        assert!(r.fits_tdp);
        assert!((r.peak_power_w - 72.6).abs() < 3.0, "peak {}", r.peak_power_w);
        assert!(r.tdp_headroom_w > 80.0);
    }

    #[test]
    fn cat_leaves_12_ways_for_the_cache() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 8);
        let r = sharing_report(&geom, &SystemConfig::default(), DesignKind::Performance, 2.0);
        assert_eq!(r.cache_ways_remaining, 12);
        // 12/20 of 2.5 MB x 8 slices = 12 MB
        assert!((r.cache_mb_remaining - 12.0).abs() < 1e-9);
    }

    #[test]
    fn scheduler_hint_scales_with_activity() {
        let idle = scheduler_hint_w(0.0, 2.0);
        let busy = scheduler_hint_w(64.0, 2.0);
        assert_eq!(idle, 0.0);
        // 64 partitions x ~71 pJ x 2 GHz = ~9.1 W
        assert!((busy - 9.1).abs() < 0.3, "{busy}");
        // hint at full activity equals the peak-power model
        let geom = CacheGeometry::for_design(DesignKind::Performance, 8);
        let full = scheduler_hint_w(geom.total_partitions() as f64, 2.0);
        let peak = peak_power_w(&geom, DesignKind::Performance, &EnergyParams::default(), 2.0);
        assert!((full - peak).abs() < 1e-9);
    }
}
