//! Circuit model of the 8T cross-point switches (paper §2.7, Table 2).
//!
//! The paper characterizes four switch sizes with a 28 nm foundry memory
//! compiler. Those published points are anchors; other sizes are
//! interpolated (delay ~ linear in port count, energy/bit ~ linear, area ~
//! quadratic in the cross-point count), which is the expected scaling for a
//! wired-AND crossbar built from push-rule 8T bit cells.

use std::fmt;

/// Dimensions of a crossbar switch: `inputs` x `outputs` 1-bit ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchSpec {
    /// Input wires.
    pub inputs: u32,
    /// Output wires.
    pub outputs: u32,
}

/// Published Table 2 anchor points: (inputs, outputs, delay ps,
/// energy pJ/bit, area mm^2).
const ANCHORS: &[(u32, u32, f64, f64, f64)] = &[
    (128, 128, 128.0, 0.16, 0.011),
    (256, 256, 163.0, 0.19, 0.032),
    (280, 256, 163.5, 0.191, 0.033),
    (512, 512, 327.0, 0.381, 0.1293),
];

impl SwitchSpec {
    /// The local switch serving one 256-STE partition (280 inputs = 256
    /// STEs + 16 G1 ports + 8 G4 ports).
    pub const LOCAL: SwitchSpec = SwitchSpec { inputs: 280, outputs: 256 };

    /// The per-way global switch of the performance design.
    pub const G1_PERF: SwitchSpec = SwitchSpec { inputs: 128, outputs: 128 };

    /// The per-way global switch of the space design.
    pub const G1_SPACE: SwitchSpec = SwitchSpec { inputs: 256, outputs: 256 };

    /// The 4-way global switch of the space design.
    pub const G4_SPACE: SwitchSpec = SwitchSpec { inputs: 512, outputs: 512 };

    /// Creates a switch spec.
    pub fn new(inputs: u32, outputs: u32) -> SwitchSpec {
        SwitchSpec { inputs, outputs }
    }

    /// Characteristic size used for scaling: the larger port count.
    fn size(&self) -> f64 {
        self.inputs.max(self.outputs) as f64
    }

    fn anchor(&self) -> Option<(f64, f64, f64)> {
        ANCHORS
            .iter()
            .find(|&&(i, o, ..)| i == self.inputs && o == self.outputs)
            .map(|&(_, _, d, e, a)| (d, e, a))
    }

    /// Interpolates `f(size)` between the published anchor sizes
    /// (extrapolating proportionally beyond the table).
    fn interpolate(&self, field: fn(&(u32, u32, f64, f64, f64)) -> f64) -> f64 {
        let n = self.size();
        // anchor sizes in ascending order: 128, 256, 280, 512
        let pts: Vec<(f64, f64)> =
            ANCHORS.iter().map(|a| ((a.0.max(a.1)) as f64, field(a))).collect();
        if n <= pts[0].0 {
            return pts[0].1 * n / pts[0].0;
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if n <= x1 {
                return y0 + (y1 - y0) * (n - x0) / (x1 - x0);
            }
        }
        let (xl, yl) = *pts.last().expect("anchors non-empty");
        yl * n / xl
    }

    /// Propagation delay in picoseconds.
    ///
    /// Published sizes return the exact Table 2 value.
    pub fn delay_ps(&self) -> f64 {
        if let Some((d, _, _)) = self.anchor() {
            return d;
        }
        self.interpolate(|a| a.2)
    }

    /// Traversal energy in pJ per bit.
    pub fn energy_pj_per_bit(&self) -> f64 {
        if let Some((_, e, _)) = self.anchor() {
            return e;
        }
        self.interpolate(|a| a.3)
    }

    /// Layout area in mm^2 (scales with the cross-point count off-anchor).
    pub fn area_mm2(&self) -> f64 {
        if let Some((_, _, a)) = self.anchor() {
            return a;
        }
        // area ~ cross-points; normalize against the 256x256 anchor
        let base = 0.032 / (256.0 * 256.0);
        base * self.inputs as f64 * self.outputs as f64
    }

    /// Configuration bits stored in the switch (one enable per cross-point).
    pub fn config_bits(&self) -> u64 {
        self.inputs as u64 * self.outputs as u64
    }
}

impl fmt::Display for SwitchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.inputs, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_table2_exactly() {
        assert_eq!(SwitchSpec::LOCAL.delay_ps(), 163.5);
        assert_eq!(SwitchSpec::LOCAL.energy_pj_per_bit(), 0.191);
        assert_eq!(SwitchSpec::LOCAL.area_mm2(), 0.033);
        assert_eq!(SwitchSpec::G1_PERF.delay_ps(), 128.0);
        assert_eq!(SwitchSpec::G1_PERF.energy_pj_per_bit(), 0.16);
        assert_eq!(SwitchSpec::G1_PERF.area_mm2(), 0.011);
        assert_eq!(SwitchSpec::G1_SPACE.delay_ps(), 163.0);
        assert_eq!(SwitchSpec::G4_SPACE.delay_ps(), 327.0);
        assert_eq!(SwitchSpec::G4_SPACE.area_mm2(), 0.1293);
    }

    #[test]
    fn interpolation_is_monotone() {
        let sizes = [64u32, 128, 192, 256, 300, 400, 512, 768];
        let mut last = 0.0;
        for &s in &sizes {
            let d = SwitchSpec::new(s, s).delay_ps();
            assert!(d > last, "delay not monotone at {s}: {d} <= {last}");
            last = d;
        }
    }

    #[test]
    fn small_switches_are_cheap() {
        let s = SwitchSpec::new(64, 64);
        assert!(s.delay_ps() < 128.0);
        assert!(s.area_mm2() < 0.011);
        assert!(s.energy_pj_per_bit() < 0.16);
    }

    #[test]
    fn extrapolation_beyond_512() {
        let s = SwitchSpec::new(1024, 1024);
        assert!(s.delay_ps() > 327.0);
        assert!(s.area_mm2() > 0.1293);
    }

    #[test]
    fn config_bits_count_cross_points() {
        assert_eq!(SwitchSpec::LOCAL.config_bits(), 280 * 256);
        assert_eq!(SwitchSpec::new(2, 3).config_bits(), 6);
    }

    #[test]
    fn display() {
        assert_eq!(SwitchSpec::LOCAL.to_string(), "280x256");
    }
}
