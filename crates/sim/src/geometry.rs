//! Last-level-cache geometry, modeled after the Xeon E5 slice of Figure 2.
//!
//! The physical hierarchy (paper §2.4):
//!
//! * an LLC **slice** is 2.5 MB with a central CBOX, organized in 20
//!   columns (**ways**);
//! * a way holds eight 16 KB **data sub-arrays** plus a tag array;
//! * a 16 KB sub-array is two independent 8 KB chunks, each split into two
//!   256×128 6T SRAM **arrays** (`Array_H` / `Array_L`) that share 32 sense
//!   amplifiers (8-way column multiplexing);
//! * a **partition** is 256 STEs stored in two 4 KB arrays, served by one
//!   280×256 local switch.
//!
//! The performance-optimized design (CA_P) maps STEs only to arrays with
//! address bit `A[16] = 0` (one partition per sub-array, 64 per slice); the
//! space-optimized design (CA_S) uses both halves (128 per slice) at the
//! cost of deeper sense-amp sharing.

use std::fmt;

/// Which of the two evaluated Cache Automaton designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DesignKind {
    /// CA_P: performance-optimized (2 GHz, connectivity within a way).
    #[default]
    Performance,
    /// CA_S: space-optimized (1.2 GHz, prefix-merged NFAs, 4-way G-switch).
    Space,
}

impl DesignKind {
    /// The paper's abbreviation: `CA_P` or `CA_S`.
    pub fn abbrev(self) -> &'static str {
        match self {
            DesignKind::Performance => "CA_P",
            DesignKind::Space => "CA_S",
        }
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// STEs per partition (one 256-column SRAM array pair).
pub const STES_PER_PARTITION: usize = 256;

/// Bits per STE column (one-hot over the 8-bit alphabet).
pub const BITS_PER_STE: usize = 256;

/// Bytes of cache an allocated partition occupies (256 STEs x 256 bits).
pub const PARTITION_BYTES: usize = STES_PER_PARTITION * BITS_PER_STE / 8;

/// Geometry of the automata-capable portion of the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// LLC slices available to the automaton (Xeon E5: 8–16 on die).
    pub slices: usize,
    /// Ways per slice dedicated to NFA state (paper prototype: 8 of 20).
    pub automata_ways: usize,
    /// 16 KB data sub-arrays per way.
    pub subarrays_per_way: usize,
    /// Partitions usable per sub-array (1 for CA_P, 2 for CA_S).
    pub partitions_per_subarray: usize,
    /// Column-multiplex chunks read per state-match (4 for CA_P, 8 for CA_S).
    pub match_chunks: u32,
    /// Ways bridged by one G-switch-4 (0 disables cross-way routing: CA_P).
    pub gswitch4_ways: usize,
    /// STE ports from each partition into the per-way G-switch-1.
    pub g1_ports: usize,
    /// STE ports from each partition into the cross-way G-switch-4.
    pub g4_ports: usize,
}

impl CacheGeometry {
    /// Geometry of the paper's design point for `design`, with `slices`
    /// slices enabled.
    pub fn for_design(design: DesignKind, slices: usize) -> CacheGeometry {
        match design {
            DesignKind::Performance => CacheGeometry {
                slices,
                automata_ways: 8,
                subarrays_per_way: 8,
                partitions_per_subarray: 1,
                match_chunks: 4,
                gswitch4_ways: 0,
                g1_ports: 16,
                g4_ports: 0,
            },
            DesignKind::Space => CacheGeometry {
                slices,
                automata_ways: 8,
                subarrays_per_way: 8,
                partitions_per_subarray: 2,
                match_chunks: 8,
                gswitch4_ways: 4,
                g1_ports: 16,
                g4_ports: 8,
            },
        }
    }

    /// Partitions per way.
    pub fn partitions_per_way(&self) -> usize {
        self.subarrays_per_way * self.partitions_per_subarray
    }

    /// Partitions per slice.
    pub fn partitions_per_slice(&self) -> usize {
        self.automata_ways * self.partitions_per_way()
    }

    /// Total partitions across all slices.
    pub fn total_partitions(&self) -> usize {
        self.slices * self.partitions_per_slice()
    }

    /// Total STE capacity.
    pub fn total_stes(&self) -> usize {
        self.total_partitions() * STES_PER_PARTITION
    }

    /// Cache bytes consumed when `partitions` partitions are allocated.
    pub fn utilization_bytes(&self, partitions: usize) -> usize {
        partitions * PARTITION_BYTES
    }

    /// G-switch-1 instances (one per way per slice).
    pub fn g1_switch_count(&self) -> usize {
        self.slices * self.automata_ways
    }

    /// G-switch-4 instances (one per `gswitch4_ways` ways, per slice).
    pub fn g4_switch_count(&self) -> usize {
        if self.gswitch4_ways == 0 {
            0
        } else {
            self.slices * self.automata_ways.div_ceil(self.gswitch4_ways)
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.slices == 0 || self.automata_ways == 0 || self.subarrays_per_way == 0 {
            return Err("geometry has a zero dimension".into());
        }
        if !(1..=2).contains(&self.partitions_per_subarray) {
            return Err(format!(
                "partitions_per_subarray must be 1 or 2, got {}",
                self.partitions_per_subarray
            ));
        }
        if self.g1_ports + self.g4_ports > STES_PER_PARTITION {
            return Err("more G-switch ports than STEs in a partition".into());
        }
        Ok(())
    }
}

impl Default for CacheGeometry {
    /// CA_P geometry with a single slice.
    fn default() -> CacheGeometry {
        CacheGeometry::for_design(DesignKind::Performance, 1)
    }
}

/// Physical location of a partition inside the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionLocation {
    /// Slice index.
    pub slice: u32,
    /// Way within the slice.
    pub way: u32,
    /// Sub-array within the way.
    pub subarray: u32,
    /// Half of the sub-array (0 = `Array_L`, 1 = `Array_H`).
    pub half: u32,
}

impl PartitionLocation {
    /// Location of the `index`-th partition in `geom`, counting
    /// half-major within sub-array, sub-array within way, way within slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= geom.total_partitions()`.
    pub fn from_index(geom: &CacheGeometry, index: usize) -> PartitionLocation {
        assert!(index < geom.total_partitions(), "partition index out of range");
        let per_slice = geom.partitions_per_slice();
        let per_way = geom.partitions_per_way();
        let slice = index / per_slice;
        let in_slice = index % per_slice;
        let way = in_slice / per_way;
        let in_way = in_slice % per_way;
        let subarray = in_way / geom.partitions_per_subarray;
        let half = in_way % geom.partitions_per_subarray;
        PartitionLocation {
            slice: slice as u32,
            way: way as u32,
            subarray: subarray as u32,
            half: half as u32,
        }
    }

    /// `true` if `self` and `other` share a way (G-switch-1 reachable).
    pub fn same_way(&self, other: &PartitionLocation) -> bool {
        self.slice == other.slice && self.way == other.way
    }

    /// `true` if `self` and `other` are G-switch-4 routable.
    ///
    /// Each 512×512 G4 switch physically bridges [`CacheGeometry::gswitch4_ways`]
    /// ways; the G4 switches of one slice are chained through the CBOX, so
    /// the routable domain is the whole slice. (The paper sizes the G4 for
    /// 4 ways but maps space-optimized components larger than 4 ways'
    /// capacity — e.g. Brill's 26 K-state merged component — which requires
    /// exactly this slice-level chaining; see DESIGN.md.)
    pub fn same_g4_group(&self, other: &PartitionLocation, geom: &CacheGeometry) -> bool {
        geom.gswitch4_ways != 0 && self.slice == other.slice
    }
}

impl fmt::Display for PartitionLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}/way{}/sub{}/h{}", self.slice, self.way, self.subarray, self.half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        // CA_P: 64 partitions/slice = 16K STEs; 8 slices = 128K STEs in 8
        // ways (the paper's prototype capacity, Section 5.3).
        let p = CacheGeometry::for_design(DesignKind::Performance, 8);
        assert_eq!(p.partitions_per_slice(), 64);
        assert_eq!(p.total_stes(), 128 * 1024);
        // CA_S doubles density per slice.
        let s = CacheGeometry::for_design(DesignKind::Space, 1);
        assert_eq!(s.partitions_per_slice(), 128);
        assert_eq!(s.total_stes(), 32 * 1024);
    }

    #[test]
    fn partition_bytes_are_8kb() {
        assert_eq!(PARTITION_BYTES, 8 * 1024);
        let g = CacheGeometry::default();
        assert_eq!(g.utilization_bytes(3), 24 * 1024);
    }

    #[test]
    fn switch_counts() {
        let p = CacheGeometry::for_design(DesignKind::Performance, 1);
        assert_eq!(p.g1_switch_count(), 8);
        assert_eq!(p.g4_switch_count(), 0);
        let s = CacheGeometry::for_design(DesignKind::Space, 1);
        assert_eq!(s.g1_switch_count(), 8);
        assert_eq!(s.g4_switch_count(), 2); // 8 ways / 4
    }

    #[test]
    fn locations_round_trip() {
        let g = CacheGeometry::for_design(DesignKind::Space, 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.total_partitions() {
            let loc = PartitionLocation::from_index(&g, i);
            assert!((loc.slice as usize) < 2);
            assert!((loc.way as usize) < g.automata_ways);
            assert!((loc.subarray as usize) < g.subarrays_per_way);
            assert!((loc.half as usize) < g.partitions_per_subarray);
            assert!(seen.insert(loc), "duplicate location {loc}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn location_out_of_range_panics() {
        let g = CacheGeometry::default();
        PartitionLocation::from_index(&g, g.total_partitions());
    }

    #[test]
    fn way_and_g4_grouping() {
        let g = CacheGeometry::for_design(DesignKind::Space, 1);
        let a = PartitionLocation::from_index(&g, 0);
        let b = PartitionLocation::from_index(&g, g.partitions_per_way() - 1);
        let c = PartitionLocation::from_index(&g, g.partitions_per_way());
        assert!(a.same_way(&b));
        assert!(!a.same_way(&c));
        assert!(a.same_g4_group(&c, &g)); // ways 0 and 1 share a G4 group
        let far = PartitionLocation::from_index(&g, 5 * g.partitions_per_way());
        assert!(a.same_g4_group(&far, &g)); // chained G4s span the slice
        let g2 = CacheGeometry::for_design(DesignKind::Space, 2);
        let other_slice = PartitionLocation::from_index(&g2, g2.partitions_per_slice());
        assert!(!a.same_g4_group(&other_slice, &g2)); // but never cross-slice
                                                      // CA_P has no G4 at all
        let gp = CacheGeometry::for_design(DesignKind::Performance, 1);
        let pa = PartitionLocation::from_index(&gp, 0);
        let pb = PartitionLocation::from_index(&gp, 8);
        assert!(!pa.same_g4_group(&pb, &gp));
    }

    #[test]
    fn validation() {
        assert!(CacheGeometry::default().validate().is_ok());
        let g = CacheGeometry { partitions_per_subarray: 3, ..Default::default() };
        assert!(g.validate().is_err());
        let g = CacheGeometry { g1_ports: 300, ..Default::default() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn design_kind_display() {
        assert_eq!(DesignKind::Performance.to_string(), "CA_P");
        assert_eq!(DesignKind::Space.to_string(), "CA_S");
    }
}
