//! Cycle-level functional simulator of the Cache Automaton fabric.
//!
//! Executes a [`Bitstream`] the way the hardware would: per input symbol,
//! every partition performs a state-match (SRAM row read AND active-state
//! vector), matching STEs propagate through the local switch and any
//! configured global-switch routes, reports enter the CBOX output buffer,
//! and the input FIFO refills one cache block at a time (paper §2.3–2.8).
//!
//! The three-stage pipeline (§2.5) does not change functional behaviour —
//! it overlaps the match of symbol *i+1* with the switch traversal of
//! symbol *i* — so the simulator executes symbols in order and accounts the
//! pipeline in the cycle count: `cycles = symbols + fill`.
//!
//! The hot loop is *activity-proportional*, mirroring the sparsity the
//! hardware exploits (§5.3: idle arrays are clock/precharge-gated): an
//! exact worklist of partitions with a non-zero active vector is carried
//! across the `enabled`/`next` swap, so each symbol costs
//! O(active partitions + matched routes) instead of O(partitions + routes).
//! [`Fabric::run_dense`] keeps the original O(P+R) loop as the reference
//! implementation for differential tests and benchmarks.

use crate::bitstream::{Bitstream, BitstreamError, Route, RouteVia};
use crate::mask::Mask256;
use ca_automata::engine::MatchEvent;
use ca_automata::ReportCode;
use ca_telemetry::Telemetry;

/// Depth of the CBOX input FIFO (entries = symbols).
pub const INPUT_FIFO_ENTRIES: usize = 128;

/// Cache-block bytes fetched per FIFO refill.
pub const FIFO_REFILL_BYTES: usize = 64;

/// Entries in the CBOX output buffer; filling it raises an interrupt.
pub const OUTPUT_BUFFER_ENTRIES: usize = 64;

/// Pipeline fill cycles (stages minus one).
pub const PIPELINE_FILL_CYCLES: u64 = 2;

/// Symbols between telemetry activity snapshots in [`Fabric::run_with`]
/// (a power of two so the position check is a mask, not a division).
pub const TELEMETRY_SNAPSHOT_INTERVAL: u64 = 1024;

/// Activity statistics of one fabric run — the inputs to the energy model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Input symbols processed.
    pub symbols: u64,
    /// Total cycles including pipeline fill.
    pub cycles: u64,
    /// Sum over cycles of partitions with a non-zero active-state vector
    /// (each costs an array access + local-switch traversal; zero-activity
    /// partitions are clock/precharge-disabled, §5.3).
    pub active_partition_cycles: u64,
    /// Sum over cycles of matched STEs.
    pub matched_total: u64,
    /// Signals sent through per-way G-switches (one per asserted route).
    pub g1_signals: u64,
    /// Signals sent through cross-way G-switches.
    pub g4_signals: u64,
    /// Reports emitted.
    pub reports: u64,
    /// Output-buffer-full interrupts raised.
    pub output_interrupts: u64,
    /// Input FIFO refills (one cache-block read each).
    pub fifo_refills: u64,
    /// Per-partition active-cycle counts.
    pub per_partition_active: Vec<u64>,
}

impl ExecStats {
    /// Mean active partitions per *input symbol* (Table 1's normalisation:
    /// every symbol drives exactly one state-match, so dividing by symbols
    /// measures activity of the work actually performed, independent of
    /// pipeline-fill and drain-stall cycles).
    pub fn avg_active_partitions_per_symbol(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.active_partition_cycles as f64 / self.symbols as f64
        }
    }

    /// Mean active partitions per *cycle*, counting pipeline fill and any
    /// drain-penalty stalls in the denominator — the utilisation a
    /// wall-clock observer of the fabric would see.
    pub fn avg_active_partitions_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_partition_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean matched STEs per *input symbol* (Table 1's "Avg. Active
    /// States").
    pub fn avg_active_states_per_symbol(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.matched_total as f64 / self.symbols as f64
        }
    }

    /// Mean matched STEs per *cycle* (fill and stall cycles included).
    pub fn avg_active_states_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.matched_total as f64 / self.cycles as f64
        }
    }

    /// Accumulates another run's *activity* counters into this one.
    ///
    /// `cycles` is deliberately **not** summed: how per-run cycle counts
    /// combine is a scheduling question (sequential chunks add, concurrent
    /// stripes take a makespan), so the caller sets `cycles` explicitly.
    /// The old `absorb` summed cycles too and relied on every concurrent
    /// caller remembering to overwrite the result — that footgun is gone.
    pub fn absorb_activity(&mut self, other: &ExecStats) {
        self.symbols += other.symbols;
        self.active_partition_cycles += other.active_partition_cycles;
        self.matched_total += other.matched_total;
        self.g1_signals += other.g1_signals;
        self.g4_signals += other.g4_signals;
        self.reports += other.reports;
        self.output_interrupts += other.output_interrupts;
        self.fifo_refills += other.fifo_refills;
        if self.per_partition_active.len() < other.per_partition_active.len() {
            self.per_partition_active.resize(other.per_partition_active.len(), 0);
        }
        for (acc, n) in self.per_partition_active.iter_mut().zip(&other.per_partition_active) {
            *acc += n;
        }
    }

    /// Emits every counter of this run to `telemetry` under the `fabric.*`
    /// names (see DESIGN.md §7). Drivers call this once per finished scan
    /// with the final reconciled stats, so recorded totals match the
    /// returned `ExecStats` exactly — including on sharded runs, where raw
    /// per-stripe counters would double-count correction overlap.
    pub fn emit_counters(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.counter("fabric.symbols", self.symbols);
        telemetry.counter("fabric.cycles", self.cycles);
        telemetry.counter("fabric.active_partition_cycles", self.active_partition_cycles);
        telemetry.counter("fabric.matched_total", self.matched_total);
        telemetry.counter("fabric.g1_signals", self.g1_signals);
        telemetry.counter("fabric.g4_signals", self.g4_signals);
        telemetry.counter("fabric.reports", self.reports);
        telemetry.counter("fabric.output_interrupts", self.output_interrupts);
        telemetry.counter("fabric.fifo_refills", self.fifo_refills);
    }
}

/// Result of a fabric run: the match stream plus activity statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Reported matches in position order.
    pub events: Vec<MatchEvent>,
    /// Activity statistics.
    pub stats: ExecStats,
    /// Full CBOX output-buffer entries (populated when requested via
    /// [`RunOptions::collect_entries`]).
    pub entries: Vec<OutputEntry>,
    /// Execution image at the end of the run; feed it back through
    /// [`RunOptions::resume`] to continue the same logical stream.
    pub snapshot: Option<Snapshot>,
}

/// Execution options for [`Fabric::run_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Resume from a prior [`Snapshot`] instead of the start vectors.
    pub resume: Option<Snapshot>,
    /// Record full [`OutputEntry`] records alongside the match events.
    pub collect_entries: bool,
    /// Stall cycles charged per output-buffer-full interrupt (0 models the
    /// paper's background drain; >0 models a blocking CPU service routine).
    pub drain_penalty_cycles: u64,
    /// Disable start-vector injection: the active set evolves purely from
    /// the resume image, with no `start_all` re-arming each cycle.
    ///
    /// Because the fabric transition is then a pure union-homomorphism in
    /// the active set, a suppressed run seeded with only the *extra* states
    /// a stripe boundary carries (beyond the always-armed starts) computes
    /// exactly the match events and exit states that a fresh parallel
    /// stripe missed. Once every vector dies out the run exits early —
    /// carry-over state decays within a few symbols for typical rulesets.
    pub suppress_starts: bool,
}

/// A CBOX output-buffer entry (§2.8): alongside the match position and
/// report code, the hardware records the partition, the matched column,
/// the input symbol and the symbol counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputEntry {
    /// Partition whose reporting STE matched.
    pub partition: u32,
    /// Matched column within the partition.
    pub column: u8,
    /// The input symbol that completed the match.
    pub symbol: u8,
    /// Symbol-counter value (position in the stream).
    pub symbol_counter: u64,
    /// Report code of the STE.
    pub code: ReportCode,
}

/// A suspended execution image (§2.9): "the NFA process may also be
/// suspended and later resumed by recording the number of input symbols
/// processed and the active state vector to memory."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Symbols consumed so far.
    pub symbol_counter: u64,
    /// Active-state vector of every partition.
    pub active_vectors: Vec<Mask256>,
    /// Occupancy of the CBOX output buffer at suspension time, so a resumed
    /// stream raises its buffer-full interrupt at the same point the
    /// uninterrupted stream would have.
    pub output_buffer_fill: u32,
}

impl Snapshot {
    /// Bytes the snapshot occupies in memory (what suspension writes out):
    /// the symbol counter, the output-buffer occupancy, and one 256-bit
    /// vector per partition.
    pub fn size_bytes(&self) -> usize {
        8 + 4 + self.active_vectors.len() * 32
    }
}

/// A run rejected its inputs before touching any fabric state.
///
/// These conditions are reachable from the public API with well-formed
/// programs — e.g. resuming a [`Snapshot`] taken from a *different*
/// program — so they surface as typed errors rather than panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The resume snapshot's vector count does not match this fabric's
    /// partition count (a suspend image resumed against another program).
    SnapshotMismatch {
        /// Active vectors the snapshot carries.
        snapshot_vectors: usize,
        /// Partitions this fabric drives.
        fabric_partitions: usize,
    },
    /// A correction's true entry state does not contain the always-armed
    /// start vectors, so it cannot be the exit image of a non-suppressed
    /// run of this fabric.
    EntryMissingStarts {
        /// First partition whose entry vector lacks a `start_all` bit.
        partition: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::SnapshotMismatch { snapshot_vectors, fabric_partitions } => write!(
                f,
                "resume snapshot carries {snapshot_vectors} active vectors but this fabric \
                 drives {fabric_partitions} partitions (was it taken from another program?)"
            ),
            RunError::EntryMissingStarts { partition } => write!(
                f,
                "correction entry state lacks the always-armed start vector of partition \
                 {partition}: not an exit image of this fabric"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Compiled execution state for one bitstream.
///
/// # Examples
///
/// Programs are normally produced by `ca-compiler`; driving the fabric is
/// then two lines:
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let bitstream: ca_sim::Bitstream = unimplemented!();
/// use ca_sim::Fabric;
/// let mut fabric = Fabric::new(&bitstream)?;
/// let report = fabric.run(b"stream of input symbols");
/// println!("{} matches", report.events.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Per-partition 256-row SRAM images: `rows[p][symbol]`.
    rows: Vec<Vec<Mask256>>,
    /// Per-partition per-STE local destinations.
    local: Vec<Vec<Mask256>>,
    /// Per-partition import-port destinations.
    import_dest: Vec<Vec<Mask256>>,
    start_all: Vec<Mask256>,
    start_sod: Vec<Mask256>,
    report_mask: Vec<Mask256>,
    /// Dense per-column report table: `report_code[p][col]` holds the code
    /// plus its index into the fabric-wide code set (the per-symbol dedup
    /// scratch). Only columns set in `report_mask[p]` are meaningful;
    /// [`Bitstream::validate`] guarantees mask and table stay consistent,
    /// which is what lets the hot loop index without a reachable panic.
    report_code: Vec<Vec<(ReportCode, u32)>>,
    routes: Vec<Route>,
    /// Route indices grouped by source partition: phase 3 visits only the
    /// routes of partitions that matched this cycle.
    routes_by_src: Vec<Vec<u32>>,
    /// Partitions with a non-zero `start_all` vector, ascending — the only
    /// partitions the per-cycle re-arm can wake.
    armed: Vec<u32>,
    /// `start_candidates[b]`: partitions whose always-armed start states
    /// can match symbol `b` (`start_all[p] & rows[p][b] != 0`), ascending.
    /// An idle armed partition (enabled == start_all) can only produce
    /// work on a symbol listed here, which is what lets the hot loop skip
    /// it entirely on every other symbol.
    start_candidates: Vec<Vec<u32>>,
    telemetry: Telemetry,
    // Scratch. Invariants between runs: `next` all-zero, `on_next` all
    // false, every `code_epoch` stamp strictly below `epoch + 1`.
    enabled: Vec<Mask256>,
    next: Vec<Mask256>,
    active: Vec<u32>,
    touched: Vec<u32>,
    visit: Vec<u32>,
    on_next: Vec<bool>,
    code_epoch: Vec<u64>,
    epoch: u64,
}

/// Per-run mutable state threaded through [`Fabric::scan_partition`], so
/// the sparse and sweep walks share one body without a ten-argument
/// signature.
struct ScanCtx<'a> {
    options: &'a RunOptions,
    stats: &'a mut ExecStats,
    events: &'a mut Vec<MatchEvent>,
    entries: &'a mut Vec<OutputEntry>,
    touched: &'a mut Vec<u32>,
    output_buffer_fill: &'a mut usize,
    penalty_cycles: &'a mut u64,
}

impl Fabric {
    /// Validates and compiles a bitstream for execution.
    ///
    /// # Errors
    ///
    /// Propagates [`Bitstream::validate`] failures.
    pub fn new(bitstream: &Bitstream) -> Result<Fabric, BitstreamError> {
        bitstream.validate()?;
        let n = bitstream.partitions.len();
        // Fabric-wide report-code set: the per-symbol dedup is an
        // epoch-stamped slot per distinct code instead of a linear scan.
        let mut code_set: Vec<ReportCode> = bitstream
            .partitions
            .iter()
            .flat_map(|p| p.reports.iter().map(|&(_, code)| code))
            .collect();
        code_set.sort_unstable();
        code_set.dedup();
        let mut rows = Vec::with_capacity(n);
        let mut local = Vec::with_capacity(n);
        let mut import_dest = Vec::with_capacity(n);
        let mut start_all = Vec::with_capacity(n);
        let mut start_sod = Vec::with_capacity(n);
        let mut report_mask = Vec::with_capacity(n);
        let mut report_code = Vec::with_capacity(n);
        for p in &bitstream.partitions {
            rows.push(p.sram_rows());
            local.push(p.local.clone());
            import_dest.push(p.import_dest.clone());
            start_all.push(p.start_all);
            start_sod.push(p.start_sod);
            let mut mask = Mask256::ZERO;
            let mut codes = vec![(ReportCode(0), 0u32); p.labels.len()];
            for &(col, code) in &p.reports {
                mask.set(col);
                let idx = code_set.binary_search(&code).expect("code set covers every report");
                codes[col as usize] = (code, idx as u32);
            }
            report_mask.push(mask);
            report_code.push(codes);
        }
        let mut routes_by_src: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, r) in bitstream.routes.iter().enumerate() {
            routes_by_src[r.src_partition as usize].push(i as u32);
        }
        let armed =
            (0..n).filter(|&p| !start_all[p].is_zero()).map(|p| p as u32).collect::<Vec<u32>>();
        let mut start_candidates: Vec<Vec<u32>> = vec![Vec::new(); 256];
        for &p in &armed {
            let pu = p as usize;
            for (b, candidates) in start_candidates.iter_mut().enumerate() {
                if !start_all[pu].and(&rows[pu][b]).is_zero() {
                    candidates.push(p);
                }
            }
        }
        Ok(Fabric {
            rows,
            local,
            import_dest,
            start_all,
            start_sod,
            report_mask,
            report_code,
            routes: bitstream.routes.clone(),
            routes_by_src,
            armed,
            start_candidates,
            telemetry: Telemetry::disabled(),
            enabled: vec![Mask256::ZERO; n],
            next: vec![Mask256::ZERO; n],
            active: Vec::with_capacity(n),
            touched: Vec::with_capacity(n),
            visit: Vec::with_capacity(n),
            on_next: vec![false; n],
            code_epoch: vec![0; code_set.len()],
            epoch: 0,
        })
    }

    /// Number of partitions the fabric drives.
    pub fn partition_count(&self) -> usize {
        self.rows.len()
    }

    /// Routes activity snapshots (a gauge batch every
    /// [`TELEMETRY_SNAPSHOT_INTERVAL`] symbols) to `telemetry`. The default
    /// is the disabled handle, which costs one hoisted branch per run.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Runs the fabric over `input`, returning matches and statistics.
    pub fn run(&mut self, input: &[u8]) -> ExecReport {
        match self.run_with(input, &RunOptions::default()) {
            Ok(report) => report,
            // Fresh options carry no resume image — the only rejectable
            // input — so this arm is statically unreachable.
            Err(e) => unreachable!("fresh run rejected: {e}"),
        }
    }

    /// Runs the fabric while writing a per-cycle text trace to `sink`:
    /// one line per symbol listing the matched STEs of every active
    /// partition and any reports — the debugging view a released simulator
    /// needs (VASim offers the equivalent).
    ///
    /// # Errors
    ///
    /// Propagates write failures from `sink`; a rejected resume snapshot
    /// ([`RunError`]) surfaces as [`std::io::ErrorKind::InvalidInput`].
    pub fn run_traced<W: std::io::Write>(
        &mut self,
        input: &[u8],
        options: &RunOptions,
        sink: &mut W,
    ) -> std::io::Result<ExecReport> {
        // Trace by re-simulating cycle windows of 1 symbol: simple, slow,
        // and guaranteed consistent with run_with (which it reuses).
        let mut resume = options.resume.clone();
        let mut combined = ExecReport::default();
        let base = resume.as_ref().map_or(0, |s| s.symbol_counter);
        for (i, &symbol) in input.iter().enumerate() {
            let step_opts = RunOptions {
                resume: resume.take(),
                collect_entries: true,
                drain_penalty_cycles: options.drain_penalty_cycles,
                suppress_starts: options.suppress_starts,
            };
            let step = self
                .run_with(std::slice::from_ref(&symbol), &step_opts)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            let printable = if symbol.is_ascii_graphic() { symbol as char } else { '.' };
            write!(sink, "cycle {:>6} sym 0x{symbol:02x} '{printable}' |", base + i as u64)?;
            for (p, &n) in step.stats.per_partition_active.iter().enumerate() {
                if n > 0 {
                    write!(sink, " p{p}")?;
                }
            }
            if !step.entries.is_empty() {
                write!(sink, " | reports:")?;
                for e in &step.entries {
                    write!(sink, " {}@p{}c{}", e.code, e.partition, e.column)?;
                }
            }
            writeln!(sink)?;
            // accumulate activity; cycles and refills are recomputed below
            // for the whole stream (the per-step values double-charge fill
            // and round refills up per single-symbol window).
            combined.events.extend(step.events.iter().copied());
            if options.collect_entries {
                combined.entries.extend(step.entries.iter().copied());
            }
            let mut step_stats = step.stats;
            step_stats.fifo_refills = 0;
            combined.stats.absorb_activity(&step_stats);
            resume = step.snapshot;
            combined.snapshot = resume.clone();
        }
        combined.stats.cycles = if combined.stats.symbols == 0 {
            0
        } else {
            combined.stats.symbols + PIPELINE_FILL_CYCLES
        };
        combined.stats.fifo_refills = input.len().div_ceil(FIFO_REFILL_BYTES) as u64;
        Ok(combined)
    }

    /// One partition's phases 1–3 for one cycle: state-match, report
    /// extraction, local switch, then the global routes sourced at this
    /// partition — reusing the match vector the dense loop recomputed
    /// once per route. Shared verbatim by the sparse visit walk and the
    /// sequential sweep so both modes are trivially identical.
    /// `RECORD_TOUCH` compiles the touch-list bookkeeping in or out: the
    /// sparse walk needs `touched`/`on_next` to rebuild the hot list, the
    /// sequential sweep rebuilds it from a full materialize pass instead
    /// and skips the flags entirely.
    #[inline(always)]
    fn scan_partition<const RECORD_TOUCH: bool>(
        &mut self,
        ctx: &mut ScanCtx<'_>,
        p: usize,
        symbol: u8,
        pos: u64,
        epoch: u64,
    ) {
        let matched = self.enabled[p].and(&self.rows[p][symbol as usize]);
        if matched.is_zero() {
            return;
        }
        ctx.stats.matched_total += matched.count() as u64;
        // reports
        let reporting = matched.and(&self.report_mask[p]);
        for col in reporting.iter() {
            let (code, code_idx) = self.report_code[p][col as usize];
            if ctx.options.collect_entries {
                ctx.entries.push(OutputEntry {
                    partition: p as u32,
                    column: col,
                    symbol,
                    symbol_counter: pos,
                    code,
                });
            }
            if self.code_epoch[code_idx as usize] != epoch {
                self.code_epoch[code_idx as usize] = epoch;
                ctx.events.push(MatchEvent::new(pos, code));
                ctx.stats.reports += 1;
                *ctx.output_buffer_fill += 1;
                if *ctx.output_buffer_fill >= OUTPUT_BUFFER_ENTRIES {
                    ctx.stats.output_interrupts += 1;
                    *ctx.penalty_cycles += ctx.options.drain_penalty_cycles;
                    *ctx.output_buffer_fill = 0;
                }
            }
        }
        // local switch (zero rows neither change `next` nor may mark the
        // partition touched — the touch list stays exact)
        for s in matched.iter() {
            let row = &self.local[p][s as usize];
            if !row.is_zero() {
                self.next[p].or_assign(row);
                if RECORD_TOUCH && !self.on_next[p] {
                    self.on_next[p] = true;
                    ctx.touched.push(p as u32);
                }
            }
        }
        // global-switch routes sourced at this partition
        for &ri in &self.routes_by_src[p] {
            let r = &self.routes[ri as usize];
            if !matched.get(r.src_ste) {
                continue;
            }
            match r.via {
                RouteVia::G1 => ctx.stats.g1_signals += 1,
                RouteVia::G4 => ctx.stats.g4_signals += 1,
            }
            let dst = r.dst_partition as usize;
            let dest_mask = self.import_dest[dst][r.dst_port as usize];
            if !dest_mask.is_zero() {
                self.next[dst].or_assign(&dest_mask);
                if RECORD_TOUCH && !self.on_next[dst] {
                    self.on_next[dst] = true;
                    ctx.touched.push(r.dst_partition);
                }
            }
        }
    }

    /// Runs the fabric with explicit [`RunOptions`] (resume, output-entry
    /// collection, output-buffer backpressure).
    ///
    /// Per symbol this loop costs O(hot partitions + start-matching
    /// partitions + matched routes). Arming is *implicit*: an idle armed
    /// partition holds exactly its baseline vector (`start_all`, or zero
    /// when starts are suppressed) and is never visited or reset — the
    /// hot list tracks only partitions whose vector *differs* from that
    /// baseline, and each cycle visits the hot list merged with the
    /// precomputed `start_candidates[symbol]` (the only idle partitions
    /// whose start states can match this symbol). `next[p]` is reset only
    /// for partitions touched this cycle, global routes are indexed by
    /// source partition so phase 3 reuses the match vector phase 1
    /// already computed, and the dense loop's per-partition activity
    /// counters are recovered analytically (armed partitions are active
    /// every cycle once the stream is underway). When a cycle's visit
    /// list would cover a third or more of the fabric the loop switches
    /// (with hysteresis) to a dense-style sequential sweep of all
    /// partitions, so high-activity inputs keep the dense loop's
    /// streaming memory behaviour instead of paying for sparsity that
    /// isn't there. Behaviour is bit-identical to the dense reference
    /// loop ([`Fabric::run_dense`]) in every mode, including every
    /// [`ExecStats`] counter.
    ///
    /// # Errors
    ///
    /// [`RunError::SnapshotMismatch`] if a resume snapshot's vector count
    /// does not match this fabric's partition count.
    pub fn run_with(&mut self, input: &[u8], options: &RunOptions) -> Result<ExecReport, RunError> {
        let n = self.partition_count();
        let mut stats = ExecStats { per_partition_active: vec![0; n], ..Default::default() };
        let mut events = Vec::new();
        let mut entries = Vec::new();
        let mut penalty_cycles = 0u64;
        let mut output_buffer_fill =
            options.resume.as_ref().map_or(0, |s| s.output_buffer_fill) as usize;

        // Initialize active-state vectors: a resume image, or the
        // start-of-data plus all-input vectors for a fresh stream.
        let base_counter = match &options.resume {
            Some(snapshot) => {
                if snapshot.active_vectors.len() != n {
                    return Err(RunError::SnapshotMismatch {
                        snapshot_vectors: snapshot.active_vectors.len(),
                        fabric_partitions: n,
                    });
                }
                self.enabled.copy_from_slice(&snapshot.active_vectors);
                snapshot.symbol_counter
            }
            None => {
                for p in 0..n {
                    self.enabled[p] = if options.suppress_starts {
                        Mask256::ZERO
                    } else {
                        self.start_sod[p].or(&self.start_all[p])
                    };
                }
                0
            }
        };

        // Build the entry hot list with the run's single O(n) scan: every
        // partition whose vector differs from its baseline (`start_all`,
        // or zero under suppression). From here on it stays exact — a
        // partition off the list holds exactly its baseline, so only a
        // start-candidate symbol can make it do anything. `entry_deficit`
        // collects armed partitions resuming with an all-zero vector (a
        // suppressed run's image resumed unsuppressed): they are hot but
        // *inactive* on the entry cycle, which the analytic activity
        // accounting below must discount.
        let suppressed = options.suppress_starts;
        let mut active = std::mem::take(&mut self.active);
        let mut touched = std::mem::take(&mut self.touched);
        let mut visit = std::mem::take(&mut self.visit);
        active.clear();
        touched.clear();
        let mut entry_deficit: Vec<u32> = Vec::new();
        for (p, vector) in self.enabled.iter().enumerate() {
            let baseline = if suppressed { &Mask256::ZERO } else { &self.start_all[p] };
            if vector != baseline {
                active.push(p as u32);
                if vector.is_zero() {
                    entry_deficit.push(p as u32);
                }
            }
        }
        let armed_count = if suppressed { 0 } else { self.armed.len() as u64 };
        let has_unarmed = self.armed.len() < n;
        // True while `next` holds a sweep cycle's superseded vectors
        // instead of all-zero scratch.
        let mut next_dirty = false;

        let mut processed = input.len();
        // Hoisted so the disabled path pays one predictable branch per
        // symbol and never reaches the snapshot arithmetic.
        let telemetry_on = self.telemetry.is_enabled();
        for (rel_pos, &symbol) in input.iter().enumerate() {
            // A suppressed run only decays: once every vector is zero the
            // remaining symbols cannot match or re-arm anything.
            if suppressed && active.is_empty() {
                processed = rel_pos;
                break;
            }
            // Activity accounting, analytically. A partition is active
            // (non-zero vector) this cycle iff it is armed — baseline
            // `start_all` — or an unarmed hot member (guaranteed non-zero
            // once hot). The one exception is the entry cycle, where an
            // armed partition can resume with an all-zero vector. With
            // every partition armed (typical for literal rulesets) the
            // unarmed-hot walk has nothing to count and is skipped.
            let mut hot_unarmed = 0u64;
            if suppressed {
                hot_unarmed = active.len() as u64;
                for &pu in &active {
                    stats.per_partition_active[pu as usize] += 1;
                }
            } else if has_unarmed {
                for &pu in &active {
                    let p = pu as usize;
                    if self.start_all[p].is_zero() {
                        hot_unarmed += 1;
                        stats.per_partition_active[p] += 1;
                    }
                }
            }
            let deficit = if rel_pos == 0 { entry_deficit.len() as u64 } else { 0 };
            let cycle_active = armed_count + hot_unarmed - deficit;
            stats.active_partition_cycles += cycle_active;
            let pos = base_counter + rel_pos as u64;
            if telemetry_on && pos.is_multiple_of(TELEMETRY_SNAPSHOT_INTERVAL) {
                self.telemetry.gauge("fabric.active_partitions", pos, cycle_active as f64);
                self.telemetry.gauge("fabric.g1_signals", pos, stats.g1_signals as f64);
                self.telemetry.gauge("fabric.g4_signals", pos, stats.g4_signals as f64);
                // Cumulative from the stream origin (`pos`, not `rel_pos`):
                // a chunked session's refill gauge keeps climbing across
                // feed() boundaries instead of re-zeroing under a monotone
                // x-axis.
                self.telemetry.gauge(
                    "fabric.fifo_refills",
                    pos,
                    (pos / FIFO_REFILL_BYTES as u64) as f64,
                );
                self.telemetry.gauge("fabric.output_buffer_fill", pos, output_buffer_fill as f64);
            }
            self.epoch += 1;
            let epoch = self.epoch;
            // The cycle's visit list: the hot partitions merged (sorted,
            // deduplicated) with the idle-armed partitions whose start
            // states can match this symbol. Any partition outside the
            // merge holds exactly its baseline and its baseline cannot
            // match `symbol`, so it produces no matches, no reports and
            // no transitions — skipping it is exact. When the merge would
            // cover a third or more of the fabric, sweep every partition
            // in order instead: the sequential pass costs less per
            // partition than the merge's random access, and visiting a
            // partition that holds a non-matching baseline is a no-op, so
            // the sweep is just as exact. Either way partitions are
            // visited ascending — the dense loop's iteration order, so
            // events and entries come out identically.
            let candidates: &[u32] =
                if suppressed { &[] } else { &self.start_candidates[symbol as usize] };
            // Hysteresis: entering sweep mode is cheap, leaving it
            // costs an O(n) re-zero of `next` — so only drop back to the
            // sparse walk once coverage falls to half the entry bar.
            let coverage = (active.len() + candidates.len()) * 3;
            let sweep = if next_dirty { coverage * 2 >= n } else { coverage >= n };
            if sweep {
                // Dense-style phase 0: prefill `next` with every
                // partition's baseline (one streaming copy), let the
                // body OR transitions on top, and swap buffers at the
                // end of the cycle. `next` is left holding the
                // superseded vectors — the dirty flag below makes the
                // next sparse cycle (or the run exit) restore the
                // all-zero scratch invariant.
                if suppressed {
                    if next_dirty {
                        for m in &mut self.next {
                            *m = Mask256::ZERO;
                        }
                    }
                } else {
                    self.next.copy_from_slice(&self.start_all);
                }
                next_dirty = true;
            } else if next_dirty {
                for m in &mut self.next {
                    *m = Mask256::ZERO;
                }
                next_dirty = false;
            }
            let mut ctx = ScanCtx {
                options,
                stats: &mut stats,
                events: &mut events,
                entries: &mut entries,
                touched: &mut touched,
                output_buffer_fill: &mut output_buffer_fill,
                penalty_cycles: &mut penalty_cycles,
            };
            if sweep {
                for p in 0..n {
                    self.scan_partition::<false>(&mut ctx, p, symbol, pos, epoch);
                }
            } else {
                visit.clear();
                let (mut i, mut j) = (0, 0);
                while i < active.len() && j < candidates.len() {
                    let (a, c) = (active[i], candidates[j]);
                    visit.push(a.min(c));
                    i += usize::from(a <= c);
                    j += usize::from(c <= a);
                }
                visit.extend_from_slice(&active[i..]);
                visit.extend_from_slice(&candidates[j..]);
                for &pu in &visit {
                    self.scan_partition::<true>(&mut ctx, pu as usize, symbol, pos, epoch);
                }
            }
            // End of cycle. Hot partitions that received no transition
            // fall back to their baseline (idle again); touched partitions
            // materialize `next | start_all` in place, hand `next` back to
            // the all-zero scratch pool, and stay hot only if the result
            // differs from their baseline. No full-array swap: `enabled`
            // always holds complete absolute state, so snapshots stay
            // exact.
            if sweep {
                // The baseline prefill means an untouched partition's
                // `next` already IS its fallback state, so the swap
                // materializes everything at once; one streaming compare
                // pass rebuilds the hot list in ascending order.
                std::mem::swap(&mut self.enabled, &mut self.next);
                active.clear();
                for p in 0..n {
                    let baseline = if suppressed { &Mask256::ZERO } else { &self.start_all[p] };
                    if self.enabled[p] != *baseline {
                        active.push(p as u32);
                    }
                }
            } else {
                for &pu in &active {
                    let p = pu as usize;
                    if !self.on_next[p] {
                        self.enabled[p] =
                            if suppressed { Mask256::ZERO } else { self.start_all[p] };
                    }
                }
                active.clear();
                // The touch list, sorted, keeps the hot list ascending.
                touched.sort_unstable();
                for &pu in &touched {
                    let p = pu as usize;
                    self.on_next[p] = false;
                    let baseline = if suppressed { Mask256::ZERO } else { self.start_all[p] };
                    let full = self.next[p].or(&baseline);
                    self.enabled[p] = full;
                    self.next[p] = Mask256::ZERO;
                    if full != baseline {
                        active.push(pu);
                    }
                }
            }
            touched.clear();
        }
        if next_dirty {
            // The final cycle was a sweep: `next` still holds its
            // superseded vectors. Restore the all-zero scratch invariant.
            for m in &mut self.next {
                *m = Mask256::ZERO;
            }
        }
        // Armed partitions are active on every processed cycle (their
        // vector always covers `start_all` once the stream is underway) —
        // fold that in once, minus the entry-cycle deficit counted above.
        if !suppressed && processed > 0 {
            for &pu in &self.armed {
                stats.per_partition_active[pu as usize] += processed as u64;
            }
            for &pu in &entry_deficit {
                stats.per_partition_active[pu as usize] -= 1;
            }
        }
        self.active = active;
        self.touched = touched;
        self.visit = visit;
        stats.symbols = processed as u64;
        stats.cycles = if processed == 0 {
            0
        } else {
            processed as u64 + PIPELINE_FILL_CYCLES + penalty_cycles
        };
        stats.fifo_refills = processed.div_ceil(FIFO_REFILL_BYTES) as u64;
        // The snapshot's counter covers the whole input even after an
        // early exit: the skipped tail provably leaves the (all-zero)
        // vectors unchanged, so the image is valid at the input's end.
        let snapshot = Snapshot {
            symbol_counter: base_counter + input.len() as u64,
            active_vectors: self.enabled.clone(),
            output_buffer_fill: output_buffer_fill as u32,
        };
        Ok(ExecReport { events, stats, entries, snapshot: Some(snapshot) })
    }

    /// The original dense O(partitions + routes) per-symbol loop, kept as
    /// the reference implementation: differential tests and the
    /// `scan_kernel` benchmarks compare [`Fabric::run_with`] against it —
    /// match streams, entries, snapshots and every [`ExecStats`] counter
    /// must be identical.
    ///
    /// # Errors
    ///
    /// [`RunError::SnapshotMismatch`] if a resume snapshot's vector count
    /// does not match this fabric's partition count.
    pub fn run_dense(
        &mut self,
        input: &[u8],
        options: &RunOptions,
    ) -> Result<ExecReport, RunError> {
        let n = self.partition_count();
        let mut stats = ExecStats { per_partition_active: vec![0; n], ..Default::default() };
        let mut events = Vec::new();
        let mut entries = Vec::new();
        let mut penalty_cycles = 0u64;
        let mut output_buffer_fill =
            options.resume.as_ref().map_or(0, |s| s.output_buffer_fill) as usize;

        let base_counter = match &options.resume {
            Some(snapshot) => {
                if snapshot.active_vectors.len() != n {
                    return Err(RunError::SnapshotMismatch {
                        snapshot_vectors: snapshot.active_vectors.len(),
                        fabric_partitions: n,
                    });
                }
                self.enabled.copy_from_slice(&snapshot.active_vectors);
                snapshot.symbol_counter
            }
            None => {
                for p in 0..n {
                    self.enabled[p] = if options.suppress_starts {
                        Mask256::ZERO
                    } else {
                        self.start_sod[p].or(&self.start_all[p])
                    };
                }
                0
            }
        };

        let mut processed = input.len();
        let mut seen_codes: Vec<ReportCode> = Vec::new();
        let telemetry_on = self.telemetry.is_enabled();
        for (rel_pos, &symbol) in input.iter().enumerate() {
            if options.suppress_starts && self.enabled.iter().all(Mask256::is_zero) {
                processed = rel_pos;
                break;
            }
            let pos = base_counter + rel_pos as u64;
            if telemetry_on && pos.is_multiple_of(TELEMETRY_SNAPSHOT_INTERVAL) {
                let active = self.enabled.iter().filter(|m| !m.is_zero()).count();
                self.telemetry.gauge("fabric.active_partitions", pos, active as f64);
                self.telemetry.gauge("fabric.g1_signals", pos, stats.g1_signals as f64);
                self.telemetry.gauge("fabric.g4_signals", pos, stats.g4_signals as f64);
                self.telemetry.gauge(
                    "fabric.fifo_refills",
                    pos,
                    (pos / FIFO_REFILL_BYTES as u64) as f64,
                );
                self.telemetry.gauge("fabric.output_buffer_fill", pos, output_buffer_fill as f64);
            }
            // Phase 1+2 per partition: state-match, then local transition.
            for p in 0..n {
                self.next[p] =
                    if options.suppress_starts { Mask256::ZERO } else { self.start_all[p] };
            }
            seen_codes.clear();
            for p in 0..n {
                if self.enabled[p].is_zero() {
                    continue; // partition disabled: no precharge, no access
                }
                stats.active_partition_cycles += 1;
                stats.per_partition_active[p] += 1;
                let matched = self.enabled[p].and(&self.rows[p][symbol as usize]);
                if matched.is_zero() {
                    continue;
                }
                stats.matched_total += matched.count() as u64;
                // reports
                let reporting = matched.and(&self.report_mask[p]);
                for col in reporting.iter() {
                    let (code, _) = self.report_code[p][col as usize];
                    if options.collect_entries {
                        entries.push(OutputEntry {
                            partition: p as u32,
                            column: col,
                            symbol,
                            symbol_counter: pos,
                            code,
                        });
                    }
                    if !seen_codes.contains(&code) {
                        seen_codes.push(code);
                        events.push(MatchEvent::new(pos, code));
                        stats.reports += 1;
                        output_buffer_fill += 1;
                        if output_buffer_fill >= OUTPUT_BUFFER_ENTRIES {
                            stats.output_interrupts += 1;
                            penalty_cycles += options.drain_penalty_cycles;
                            output_buffer_fill = 0;
                        }
                    }
                }
                // local switch
                for s in matched.iter() {
                    self.next[p].or_assign(&self.local[p][s as usize]);
                }
            }
            // Phase 3: global-switch routes (computed against this cycle's
            // match vectors; results land in the next active-state vector).
            for r in &self.routes {
                let src = r.src_partition as usize;
                if self.enabled[src].is_zero() {
                    continue;
                }
                let matched = self.enabled[src].and(&self.rows[src][symbol as usize]);
                if matched.get(r.src_ste) {
                    match r.via {
                        RouteVia::G1 => stats.g1_signals += 1,
                        RouteVia::G4 => stats.g4_signals += 1,
                    }
                    let dst = r.dst_partition as usize;
                    let dest_mask = self.import_dest[dst][r.dst_port as usize];
                    self.next[dst].or_assign(&dest_mask);
                }
            }
            std::mem::swap(&mut self.enabled, &mut self.next);
        }
        // Restore the worklist loop's scratch invariant: after the final
        // swap `next` holds the superseded vectors, which may be non-zero.
        for m in &mut self.next {
            *m = Mask256::ZERO;
        }
        stats.symbols = processed as u64;
        stats.cycles = if processed == 0 {
            0
        } else {
            processed as u64 + PIPELINE_FILL_CYCLES + penalty_cycles
        };
        stats.fifo_refills = processed.div_ceil(FIFO_REFILL_BYTES) as u64;
        // The snapshot's counter covers the whole input even after an
        // early exit: the skipped tail provably leaves the (all-zero)
        // vectors unchanged, so the image is valid at the input's end.
        let snapshot = Snapshot {
            symbol_counter: base_counter + input.len() as u64,
            active_vectors: self.enabled.clone(),
            output_buffer_fill: output_buffer_fill as u32,
        };
        Ok(ExecReport { events, stats, entries, snapshot: Some(snapshot) })
    }

    /// Corrects a mid-stream *guess* run against the true boundary state,
    /// returning exactly the events and activity the guess missed.
    ///
    /// The parallel scan driver runs every stripe after the first from the
    /// [`Fabric::midstream_snapshot`] guess (always-armed starts only).
    /// Once the true entry state is known, this method re-simulates the
    /// stripe evolving the **true** and **guess** active sets side by side
    /// and accumulates per-cycle *differences*: matched STEs, active
    /// partitions, G-switch signals and report events present under the
    /// true entry but absent under the guess. Because the guess entry is a
    /// subset of every true entry (all non-suppressed exits re-arm
    /// `start_all`) and the fabric transition is monotone in the active
    /// set, the guess evolution stays a subset of the true evolution cycle
    /// by cycle, so each difference is non-negative and the guess stats
    /// plus these deltas equal a serial run's stats exactly — including
    /// overlap-heavy workloads where the old suppressed-delta rerun
    /// double-counted activity shared by both evolutions.
    ///
    /// The run exits as soon as the two evolutions converge (equal
    /// vectors evolve identically forever, so every later delta is zero);
    /// `snapshot` is `None` in that case — the caller already holds the
    /// correct exit image from the guess run — and `Some` of the true exit
    /// image when the delta survives to the end of `input`.
    ///
    /// `stats.cycles` counts only the symbols actually reprocessed, with
    /// no pipeline-fill charge: corrections ride the already-filled
    /// pipeline of the stitch pass.
    ///
    /// Like the forward scan, the dual evolution is activity-proportional
    /// with implicit arming: one hot list tracks partitions whose *true*
    /// vector differs from `start_all` (the guess is a pointwise subset
    /// of the true vector and a superset of `start_all`, so off the list
    /// both equal the baseline), each cycle visits it merged with
    /// `start_candidates[symbol]`, and the convergence check walks only
    /// the hot list.
    ///
    /// # Errors
    ///
    /// [`RunError::SnapshotMismatch`] if `true_entry` does not match this
    /// fabric's partition count; [`RunError::EntryMissingStarts`] if it
    /// does not contain the always-armed start vectors.
    pub fn run_correction(
        &self,
        input: &[u8],
        true_entry: &Snapshot,
    ) -> Result<ExecReport, RunError> {
        let n = self.partition_count();
        if true_entry.active_vectors.len() != n {
            return Err(RunError::SnapshotMismatch {
                snapshot_vectors: true_entry.active_vectors.len(),
                fabric_partitions: n,
            });
        }
        let mut stats = ExecStats { per_partition_active: vec![0; n], ..Default::default() };
        let mut events = Vec::new();
        let base_counter = true_entry.symbol_counter;

        let mut enabled_true = true_entry.active_vectors.clone();
        let mut enabled_guess: Vec<Mask256> = self.start_all.clone();
        for (p, entry) in enabled_true.iter().enumerate() {
            if entry.and(&self.start_all[p]) != self.start_all[p] {
                return Err(RunError::EntryMissingStarts { partition: p });
            }
        }
        let mut next_true = vec![Mask256::ZERO; n];
        let mut next_guess = vec![Mask256::ZERO; n];
        // `&self` receiver: worklist scratch is per call (one stripe's
        // worth), not shared fabric state. The hot list tracks partitions
        // whose *true* vector differs from the `start_all` baseline;
        // start_all ⊆ guess ⊆ true pins both vectors to the baseline
        // everywhere off the list, so it is exact for both evolutions.
        let mut active: Vec<u32> = Vec::with_capacity(n);
        for (p, vector) in enabled_true.iter().enumerate() {
            if *vector != self.start_all[p] {
                active.push(p as u32);
            }
        }
        let mut touched: Vec<u32> = Vec::with_capacity(n);
        let mut visit: Vec<u32> = Vec::with_capacity(n);
        let mut on_next = vec![false; n];
        // Per-cycle report-code dedup, epoch-stamped per distinct code.
        let mut epoch = 0u64;
        let mut seen_true = vec![0u64; self.code_epoch.len()];
        let mut seen_guess = vec![0u64; self.code_epoch.len()];
        let mut true_codes: Vec<(ReportCode, u32)> = Vec::new();

        let mut processed = input.len();
        let mut converged = false;
        for (rel_pos, &symbol) in input.iter().enumerate() {
            // Identical vectors evolve identically: every further delta
            // is zero and the guess exit image is already right. Off the
            // hot list both vectors equal the baseline, so equality over
            // the hot list is equality everywhere.
            if active.iter().all(|&p| enabled_true[p as usize] == enabled_guess[p as usize]) {
                processed = rel_pos;
                converged = true;
                break;
            }
            // Delta activity accounting: partitions only the true
            // evolution wakes. Armed partitions carry start_all in both
            // vectors (never guess-zero); off the hot list the vectors
            // are identical — so only hot members can contribute.
            for &pu in &active {
                let p = pu as usize;
                if enabled_guess[p].is_zero() {
                    stats.active_partition_cycles += 1;
                    stats.per_partition_active[p] += 1;
                }
            }
            let pos = base_counter + rel_pos as u64;
            epoch += 1;
            true_codes.clear();
            // The visit list: hot partitions merged with the idle-armed
            // partitions whose start states can match this symbol — the
            // same implicit-arming argument as the forward scan, applied
            // to both evolutions at once, with the same sequential-sweep
            // fallback once the merge would cover most of the fabric.
            let candidates: &[u32] = &self.start_candidates[symbol as usize];
            let sweep = (active.len() + candidates.len()) * 3 >= n;
            visit.clear();
            if sweep {
                visit.extend(0..n as u32);
            } else {
                let (mut i, mut j) = (0, 0);
                while i < active.len() && j < candidates.len() {
                    let (a, c) = (active[i], candidates[j]);
                    visit.push(a.min(c));
                    i += usize::from(a <= c);
                    j += usize::from(c <= a);
                }
                visit.extend_from_slice(&active[i..]);
                visit.extend_from_slice(&candidates[j..]);
            }
            for &pu in &visit {
                let p = pu as usize;
                let matched_true = enabled_true[p].and(&self.rows[p][symbol as usize]);
                if matched_true.is_zero() {
                    continue;
                }
                let matched_guess = enabled_guess[p].and(&self.rows[p][symbol as usize]);
                stats.matched_total += (matched_true.count() - matched_guess.count()) as u64;
                let reporting_true = matched_true.and(&self.report_mask[p]);
                for col in reporting_true.iter() {
                    let (code, code_idx) = self.report_code[p][col as usize];
                    if seen_true[code_idx as usize] != epoch {
                        seen_true[code_idx as usize] = epoch;
                        true_codes.push((code, code_idx));
                    }
                    if matched_guess.get(col) {
                        seen_guess[code_idx as usize] = epoch;
                    }
                }
                for s in matched_true.iter() {
                    let row = &self.local[p][s as usize];
                    if !row.is_zero() {
                        next_true[p].or_assign(row);
                        if !on_next[p] {
                            on_next[p] = true;
                            touched.push(pu);
                        }
                    }
                }
                // matched_guess ⊆ matched_true: every row OR'd into the
                // guess was OR'd into the true vector above, so the touch
                // list already covers it.
                for s in matched_guess.iter() {
                    next_guess[p].or_assign(&self.local[p][s as usize]);
                }
                // Global-switch routes sourced at this partition, reusing
                // both match vectors.
                for &ri in &self.routes_by_src[p] {
                    let r = &self.routes[ri as usize];
                    if !matched_true.get(r.src_ste) {
                        continue;
                    }
                    let guess_signals = matched_guess.get(r.src_ste);
                    if !guess_signals {
                        match r.via {
                            RouteVia::G1 => stats.g1_signals += 1,
                            RouteVia::G4 => stats.g4_signals += 1,
                        }
                    }
                    let dst = r.dst_partition as usize;
                    let dest_mask = self.import_dest[dst][r.dst_port as usize];
                    if !dest_mask.is_zero() {
                        next_true[dst].or_assign(&dest_mask);
                        if !on_next[dst] {
                            on_next[dst] = true;
                            touched.push(r.dst_partition);
                        }
                        if guess_signals {
                            next_guess[dst].or_assign(&dest_mask);
                        }
                    }
                }
            }
            // The guess run deduplicates report codes per cycle, so the
            // missing events are exactly the codes the true evolution
            // reports this cycle that the guess evolution does not.
            for &(code, code_idx) in &true_codes {
                if seen_guess[code_idx as usize] != epoch {
                    events.push(MatchEvent::new(pos, code));
                    stats.reports += 1;
                }
            }
            // End of cycle: untouched hot partitions fall back to the
            // baseline in both evolutions (no transitions landed, so the
            // dense pair would have re-armed exactly `start_all`);
            // touched partitions materialize `next | start_all` and stay
            // hot only while the true vector differs from the baseline
            // (guess ⊆ true then pins the guess to the baseline too).
            for &pu in &active {
                let p = pu as usize;
                if !on_next[p] {
                    enabled_true[p] = self.start_all[p];
                    enabled_guess[p] = self.start_all[p];
                }
            }
            active.clear();
            if sweep {
                for (p, flag) in on_next.iter_mut().enumerate() {
                    if *flag {
                        *flag = false;
                        let full_true = next_true[p].or(&self.start_all[p]);
                        let full_guess = next_guess[p].or(&self.start_all[p]);
                        enabled_true[p] = full_true;
                        enabled_guess[p] = full_guess;
                        next_true[p] = Mask256::ZERO;
                        next_guess[p] = Mask256::ZERO;
                        if full_true != self.start_all[p] {
                            active.push(p as u32);
                        }
                    }
                }
            } else {
                touched.sort_unstable();
                for &pu in &touched {
                    let p = pu as usize;
                    on_next[p] = false;
                    let full_true = next_true[p].or(&self.start_all[p]);
                    let full_guess = next_guess[p].or(&self.start_all[p]);
                    enabled_true[p] = full_true;
                    enabled_guess[p] = full_guess;
                    next_true[p] = Mask256::ZERO;
                    next_guess[p] = Mask256::ZERO;
                    if full_true != self.start_all[p] {
                        active.push(pu);
                    }
                }
            }
            touched.clear();
        }
        stats.symbols = processed as u64;
        stats.cycles = processed as u64; // no fill: rides the stitch pipeline
        let snapshot = (!converged).then(|| Snapshot {
            symbol_counter: base_counter + input.len() as u64,
            active_vectors: enabled_true.clone(),
            output_buffer_fill: 0,
        });
        Ok(ExecReport { events, stats, entries: Vec::new(), snapshot })
    }

    /// Entry-state guess for resuming mid-stream with no history: every
    /// always-armed start STE active, nothing else (§2.9 suspend image of a
    /// stream whose prefix armed no carry-over state).
    ///
    /// The parallel scan driver seeds every stripe after the first with
    /// this image; a correction pass over the [`Mask256::and_not`] delta of
    /// the true boundary state then supplies anything the guess missed.
    pub fn midstream_snapshot(&self, symbol_counter: u64) -> Snapshot {
        Snapshot { symbol_counter, active_vectors: self.start_all.clone(), output_buffer_fill: 0 }
    }

    /// Per-partition always-armed start vectors (the midstream entry guess).
    pub fn start_all_vectors(&self) -> &[Mask256] {
        &self.start_all
    }

    /// Restores all mutable scratch to its post-construction state so the
    /// instance can be recycled for a fresh logical stream without paying
    /// [`Fabric::new`]'s table compilation again.
    ///
    /// A completed [`run_with`](Fabric::run_with) already re-establishes
    /// the between-run invariants (`next` all-zero, `on_next` all false,
    /// `code_epoch` stamps below `epoch + 1`), so this is cheap O(n)
    /// hygiene: it exists so a pool can hand out instances whose history —
    /// including the monotone `epoch` — is indistinguishable from a fresh
    /// build, and so a session abandoned mid-configuration cannot leak
    /// state into the next one. Compiled tables and the telemetry handle
    /// are kept.
    pub fn reset(&mut self) {
        self.enabled.fill(Mask256::ZERO);
        self.next.fill(Mask256::ZERO);
        self.active.clear();
        self.touched.clear();
        self.visit.clear();
        self.on_next.fill(false);
        self.code_epoch.fill(0);
        self.epoch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::PartitionImage;
    use crate::geometry::{CacheGeometry, DesignKind, PartitionLocation};
    use ca_automata::CharClass;

    /// Pattern "ab" in one partition: a (start, col 0) -> b (report, col 1).
    fn single_partition() -> Bitstream {
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
        let mut p = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p.labels = vec![CharClass::byte(b'a'), CharClass::byte(b'b')];
        p.local = vec![[1u8].into_iter().collect(), Mask256::ZERO];
        p.start_all.set(0);
        p.reports.push((1, ReportCode(0)));
        Bitstream { design: DesignKind::Performance, geometry, partitions: vec![p], routes: vec![] }
    }

    /// Pattern "ab" split across two partitions connected via G1:
    /// partition 0 holds 'a' (start), partition 1 holds 'b' (report).
    fn routed_pair() -> Bitstream {
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
        let mut p0 = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p0.labels = vec![CharClass::byte(b'a')];
        p0.local = vec![Mask256::ZERO];
        p0.start_all.set(0);
        let mut p1 = PartitionImage::new(PartitionLocation::from_index(&geometry, 1));
        p1.labels = vec![CharClass::byte(b'b')];
        p1.local = vec![Mask256::ZERO];
        p1.reports.push((0, ReportCode(7)));
        p1.import_dest = vec![[0u8].into_iter().collect()];
        let routes = vec![Route {
            src_partition: 0,
            src_ste: 0,
            via: RouteVia::G1,
            dst_partition: 1,
            dst_port: 0,
        }];
        Bitstream { design: DesignKind::Performance, geometry, partitions: vec![p0, p1], routes }
    }

    #[test]
    fn local_pattern_matches() {
        let mut fabric = Fabric::new(&single_partition()).unwrap();
        let report = fabric.run(b"xxabxxab");
        let positions: Vec<u64> = report.events.iter().map(|e| e.pos).collect();
        assert_eq!(positions, vec![3, 7]);
        assert_eq!(report.stats.reports, 2);
        assert_eq!(report.stats.symbols, 8);
        assert_eq!(report.stats.cycles, 8 + PIPELINE_FILL_CYCLES);
    }

    #[test]
    fn routed_pattern_matches() {
        let mut fabric = Fabric::new(&routed_pair()).unwrap();
        let report = fabric.run(b"zabz");
        assert_eq!(report.events, vec![MatchEvent::new(2, ReportCode(7))]);
        assert_eq!(report.stats.g1_signals, 1, "one 'a' match crosses the G-switch");
        assert_eq!(report.stats.g4_signals, 0);
    }

    #[test]
    fn partition_disabling_tracks_activity() {
        let mut fabric = Fabric::new(&routed_pair()).unwrap();
        let report = fabric.run(b"zzzz");
        // partition 0 (all-input start) is active every cycle; partition 1
        // never becomes active on this input.
        assert_eq!(report.stats.per_partition_active[0], 4);
        assert_eq!(report.stats.per_partition_active[1], 0);
        assert_eq!(report.stats.avg_active_partitions_per_symbol(), 1.0);
        // per-cycle divides by symbols + pipeline fill
        assert_eq!(report.stats.avg_active_partitions_per_cycle(), 4.0 / 6.0);
    }

    #[test]
    fn start_of_data_only_first_cycle() {
        let geometry = CacheGeometry::for_design(DesignKind::Performance, 1);
        let mut p = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p.labels = vec![CharClass::byte(b'a')];
        p.local = vec![Mask256::ZERO];
        p.start_sod.set(0);
        p.reports.push((0, ReportCode(0)));
        let bs = Bitstream {
            design: DesignKind::Performance,
            geometry,
            partitions: vec![p],
            routes: vec![],
        };
        let mut fabric = Fabric::new(&bs).unwrap();
        assert_eq!(fabric.run(b"aa").events.len(), 1);
        assert_eq!(fabric.run(b"ba").events.len(), 0);
    }

    #[test]
    fn reset_recycles_like_a_fresh_build() {
        let bs = routed_pair();
        let mut recycled = Fabric::new(&bs).unwrap();
        // Dirty the scratch: a mid-pattern suspend (carry-over state in
        // `enabled`), a resumed continuation, and a completed run, all of
        // which advance `epoch` and stamp `code_epoch`.
        let suspended = recycled.run(b"za");
        let options = RunOptions { resume: suspended.snapshot, ..Default::default() };
        let _ = recycled.run_with(b"b", &options).unwrap();
        let _ = recycled.run(b"abab");
        recycled.reset();

        let mut fresh = Fabric::new(&bs).unwrap();
        for input in [&b"zabz"[..], b"", b"aaab"] {
            assert_eq!(recycled.run(input), fresh.run(input), "input {input:?}");
        }
    }

    #[test]
    fn fifo_and_output_buffer_stats() {
        let mut fabric = Fabric::new(&single_partition()).unwrap();
        // 130 "ab" pairs = 260 bytes -> 130 reports -> 2 interrupts (64x2)
        let input: Vec<u8> = b"ab".repeat(130);
        let report = fabric.run(&input);
        assert_eq!(report.stats.reports, 130);
        assert_eq!(report.stats.output_interrupts, 2);
        assert_eq!(report.stats.fifo_refills, (260u64).div_ceil(64));
    }

    #[test]
    fn empty_input() {
        let mut fabric = Fabric::new(&single_partition()).unwrap();
        let report = fabric.run(b"");
        assert!(report.events.is_empty());
        assert_eq!(report.stats.cycles, 0);
        assert_eq!(report.stats.avg_active_states_per_symbol(), 0.0);
        assert_eq!(report.stats.avg_active_states_per_cycle(), 0.0);
    }

    #[test]
    fn rejects_invalid_bitstream() {
        let mut bs = single_partition();
        bs.partitions[0].reports.push((9, ReportCode(1)));
        assert!(Fabric::new(&bs).is_err());
    }

    #[test]
    fn rerun_is_reproducible() {
        let mut fabric = Fabric::new(&routed_pair()).unwrap();
        let a = fabric.run(b"abab");
        let b = fabric.run(b"abab");
        assert_eq!(a, b);
    }

    #[test]
    fn suspend_resume_is_transparent() {
        // Splitting a stream at ANY point and resuming from the snapshot
        // must reproduce the single-run match stream exactly (§2.9).
        let bs = single_partition();
        let input = b"xxabxabxxaabbab";
        let full = Fabric::new(&bs).unwrap().run(input);
        for split in 0..=input.len() {
            let mut fabric = Fabric::new(&bs).unwrap();
            let first = fabric.run(&input[..split]);
            let second = fabric
                .run_with(
                    &input[split..],
                    &RunOptions { resume: first.snapshot.clone(), ..Default::default() },
                )
                .unwrap();
            let mut stitched = first.events.clone();
            stitched.extend(second.events.iter().copied());
            assert_eq!(stitched, full.events, "split at {split}");
            assert_eq!(second.snapshot.as_ref().unwrap().symbol_counter, input.len() as u64);
        }
    }

    #[test]
    fn snapshot_size_accounting() {
        let bs = routed_pair();
        let report = Fabric::new(&bs).unwrap().run(b"ab");
        let snap = report.snapshot.unwrap();
        assert_eq!(snap.active_vectors.len(), 2);
        assert_eq!(snap.size_bytes(), 8 + 4 + 64);
    }

    #[test]
    fn resume_carries_output_buffer_fill() {
        // 64 reports fill the buffer exactly once, whether or not the
        // stream is suspended in the middle.
        let bs = single_partition();
        let input: Vec<u8> = b"ab".repeat(OUTPUT_BUFFER_ENTRIES);
        let whole = Fabric::new(&bs).unwrap().run(&input);
        assert_eq!(whole.stats.output_interrupts, 1);
        let mut fabric = Fabric::new(&bs).unwrap();
        let first = fabric.run(&input[..70]);
        assert_eq!(first.snapshot.as_ref().unwrap().output_buffer_fill, 35);
        let second = fabric
            .run_with(&input[70..], &RunOptions { resume: first.snapshot, ..Default::default() })
            .unwrap();
        assert_eq!(
            first.stats.output_interrupts + second.stats.output_interrupts,
            whole.stats.output_interrupts
        );
    }

    #[test]
    fn suppressed_run_computes_carry_only_delta() {
        // Union-homomorphism check: a fresh midstream-guess run plus a
        // suppressed run over the boundary delta together reproduce the
        // true resumed run exactly.
        let bs = single_partition();
        let head = b"xxa"; // leaves the 'a'->'b' carry state armed
        let tail = b"bab";
        let mut serial = Fabric::new(&bs).unwrap();
        let head_report = serial.run(head);
        let true_exit = head_report.snapshot.clone().unwrap();
        let truth = serial
            .run_with(tail, &RunOptions { resume: Some(true_exit.clone()), ..Default::default() })
            .unwrap();

        let mut guess_fabric = Fabric::new(&bs).unwrap();
        let guess_entry = guess_fabric.midstream_snapshot(head.len() as u64);
        let guess = guess_fabric
            .run_with(tail, &RunOptions { resume: Some(guess_entry.clone()), ..Default::default() })
            .unwrap();
        let delta: Vec<Mask256> = true_exit
            .active_vectors
            .iter()
            .zip(&guess_entry.active_vectors)
            .map(|(t, g)| t.and_not(g))
            .collect();
        assert!(delta.iter().any(|m| !m.is_zero()), "head must arm carry state");
        let correction = Fabric::new(&bs)
            .unwrap()
            .run_with(
                tail,
                &RunOptions {
                    resume: Some(Snapshot {
                        symbol_counter: head.len() as u64,
                        active_vectors: delta,
                        output_buffer_fill: 0,
                    }),
                    suppress_starts: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut union: Vec<MatchEvent> =
            guess.events.iter().chain(correction.events.iter()).copied().collect();
        union.sort();
        union.dedup();
        let mut expected = truth.events.clone();
        expected.sort();
        assert_eq!(union, expected);
        // exit vectors union the same way
        let stitched: Vec<Mask256> = guess
            .snapshot
            .unwrap()
            .active_vectors
            .iter()
            .zip(&correction.snapshot.unwrap().active_vectors)
            .map(|(a, b)| a.or(b))
            .collect();
        assert_eq!(stitched, truth.snapshot.unwrap().active_vectors);
    }

    #[test]
    fn suppressed_run_exits_early_once_dead() {
        let bs = single_partition();
        let mut fabric = Fabric::new(&bs).unwrap();
        let mut delta = vec![Mask256::ZERO];
        delta[0].set(0); // 'a' seen; dies unless 'b' follows immediately
        let long_tail = vec![b'x'; 10_000];
        let report = fabric
            .run_with(
                &long_tail,
                &RunOptions {
                    resume: Some(Snapshot {
                        symbol_counter: 0,
                        active_vectors: delta,
                        output_buffer_fill: 0,
                    }),
                    suppress_starts: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(report.events.is_empty());
        assert!(report.stats.symbols < 8, "dead carry state must end the scan");
        // ...but the snapshot still covers the whole input.
        assert_eq!(report.snapshot.unwrap().symbol_counter, 10_000);
    }

    #[test]
    fn absorb_activity_sums_counters_but_not_cycles() {
        let bs = single_partition();
        let a = Fabric::new(&bs).unwrap().run(b"abab");
        let b = Fabric::new(&bs).unwrap().run(b"xxab");
        let mut merged = a.stats.clone();
        merged.absorb_activity(&b.stats);
        assert_eq!(merged.symbols, 8);
        assert_eq!(merged.reports, 3);
        assert_eq!(merged.cycles, a.stats.cycles, "cycles are the caller's scheduling decision");
        assert_eq!(merged.per_partition_active[0], 8);
    }

    #[test]
    fn output_entries_carry_cbox_fields() {
        let bs = single_partition();
        let mut fabric = Fabric::new(&bs).unwrap();
        let report = fabric
            .run_with(b"zabz", &RunOptions { collect_entries: true, ..Default::default() })
            .unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = report.entries[0];
        assert_eq!(e.partition, 0);
        assert_eq!(e.column, 1);
        assert_eq!(e.symbol, b'b');
        assert_eq!(e.symbol_counter, 2);
        assert_eq!(e.code, ReportCode(0));
        // entries are off by default
        assert!(fabric.run(b"zabz").entries.is_empty());
    }

    #[test]
    fn traced_run_matches_untraced() {
        let bs = routed_pair();
        let input = b"zabzzabab";
        let plain = Fabric::new(&bs).unwrap().run(input);
        let mut sink = Vec::new();
        let traced =
            Fabric::new(&bs).unwrap().run_traced(input, &RunOptions::default(), &mut sink).unwrap();
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.stats.matched_total, traced.stats.matched_total);
        assert_eq!(plain.stats.cycles, traced.stats.cycles);
        assert_eq!(plain.stats.g1_signals, traced.stats.g1_signals);
        let text = String::from_utf8(sink).unwrap();
        assert_eq!(text.lines().count(), input.len());
        assert!(text.contains("sym 0x61 'a'"));
        assert!(text.contains("reports: r7@p1c0"));
    }

    #[test]
    fn drain_penalty_adds_stall_cycles() {
        let bs = single_partition();
        let input: Vec<u8> = b"ab".repeat(130); // 130 reports -> 2 interrupts
        let base = Fabric::new(&bs).unwrap().run(&input);
        let stalled = Fabric::new(&bs)
            .unwrap()
            .run_with(&input, &RunOptions { drain_penalty_cycles: 50, ..Default::default() })
            .unwrap();
        assert_eq!(stalled.stats.output_interrupts, 2);
        assert_eq!(stalled.stats.cycles, base.stats.cycles + 100);
        assert_eq!(stalled.events, base.events, "backpressure must not change matches");
    }

    #[test]
    fn avg_active_states_counts_matches() {
        let mut fabric = Fabric::new(&single_partition()).unwrap();
        let report = fabric.run(b"aaaa");
        // 'a' matches every symbol (col 0); 'b' never.
        assert_eq!(report.stats.matched_total, 4);
        assert_eq!(report.stats.avg_active_states_per_symbol(), 1.0);
        assert_eq!(report.stats.avg_active_states_per_cycle(), 4.0 / 6.0);
    }

    /// Serial truth for resuming `tail` from `true_exit`, against which the
    /// correction tests compare.
    fn resumed_truth(bs: &Bitstream, tail: &[u8], true_exit: &Snapshot) -> ExecReport {
        Fabric::new(bs)
            .unwrap()
            .run_with(tail, &RunOptions { resume: Some(true_exit.clone()), ..Default::default() })
            .unwrap()
    }

    #[test]
    fn correction_reports_exact_deltas() {
        // guess stats + correction stats must equal the serial resumed
        // stats field by field (reports, matches, activity, signals) —
        // the dual evolution subtracts the overlap the old suppressed
        // rerun double-counted.
        let bs = routed_pair();
        let head = b"za"; // arms partition 1 via the G1 route
        let tail = b"babz";
        let mut serial = Fabric::new(&bs).unwrap();
        let true_exit = serial.run(head).snapshot.unwrap();
        let truth = resumed_truth(&bs, tail, &true_exit);

        let mut guess_fabric = Fabric::new(&bs).unwrap();
        let guess_entry = guess_fabric.midstream_snapshot(head.len() as u64);
        let guess = guess_fabric
            .run_with(tail, &RunOptions { resume: Some(guess_entry), ..Default::default() })
            .unwrap();
        let correction = Fabric::new(&bs).unwrap().run_correction(tail, &true_exit).unwrap();

        let mut union: Vec<MatchEvent> =
            guess.events.iter().chain(correction.events.iter()).copied().collect();
        union.sort();
        assert_eq!(union, truth.events, "guess ∪ delta must equal truth with no duplicates");
        assert_eq!(
            guess.stats.matched_total + correction.stats.matched_total,
            truth.stats.matched_total
        );
        assert_eq!(guess.stats.reports + correction.stats.reports, truth.stats.reports);
        assert_eq!(
            guess.stats.active_partition_cycles + correction.stats.active_partition_cycles,
            truth.stats.active_partition_cycles
        );
        assert_eq!(guess.stats.g1_signals + correction.stats.g1_signals, truth.stats.g1_signals);
        assert_eq!(guess.stats.g4_signals + correction.stats.g4_signals, truth.stats.g4_signals);
        for p in 0..2 {
            assert_eq!(
                guess.stats.per_partition_active[p] + correction.stats.per_partition_active[p],
                truth.stats.per_partition_active[p],
                "partition {p}"
            );
        }
        // the correction's exit image (when present) is the true exit
        if let Some(snap) = correction.snapshot {
            assert_eq!(snap.active_vectors, truth.snapshot.unwrap().active_vectors);
            assert_eq!(snap.symbol_counter, (head.len() + tail.len()) as u64);
        } else {
            assert_eq!(
                guess.snapshot.unwrap().active_vectors,
                truth.snapshot.unwrap().active_vectors
            );
        }
    }

    #[test]
    fn correction_converges_and_exits_early() {
        // With the single-partition "ab" pattern, a carried 'a' state
        // either reports on the next symbol or dies; the true and guess
        // evolutions converge within two symbols and the correction must
        // stop there instead of rescanning the long tail.
        let bs = single_partition();
        let mut serial = Fabric::new(&bs).unwrap();
        let true_exit = serial.run(b"xa").snapshot.unwrap();
        let mut tail = vec![b'x'; 10_000];
        tail[0] = b'b'; // the carried 'a' completes a match the guess lacks
        let correction = Fabric::new(&bs).unwrap().run_correction(&tail, &true_exit).unwrap();
        assert_eq!(correction.events.len(), 1);
        assert_eq!(correction.events[0].pos, 2);
        assert!(correction.stats.symbols < 8, "converged evolutions must end the rescan");
        assert_eq!(correction.stats.cycles, correction.stats.symbols, "no pipeline-fill charge");
        assert!(correction.snapshot.is_none(), "converged: guess exit image is already correct");
    }

    #[test]
    fn correction_with_identical_entries_is_empty() {
        let bs = single_partition();
        let fabric = Fabric::new(&bs).unwrap();
        let entry = fabric.midstream_snapshot(5);
        let correction = fabric.run_correction(b"ababab", &entry).unwrap();
        assert!(correction.events.is_empty());
        assert_eq!(correction.stats.symbols, 0);
        assert!(correction.snapshot.is_none());
    }

    #[test]
    fn mismatched_snapshot_is_a_typed_error() {
        // A snapshot taken from a 1-partition program resumed against a
        // 2-partition fabric must be rejected, not panic (satellite 1).
        let mut fabric = Fabric::new(&routed_pair()).unwrap();
        let foreign = Fabric::new(&single_partition()).unwrap().run(b"ab").snapshot.unwrap();
        let err = fabric
            .run_with(b"ab", &RunOptions { resume: Some(foreign.clone()), ..Default::default() })
            .unwrap_err();
        assert_eq!(err, RunError::SnapshotMismatch { snapshot_vectors: 1, fabric_partitions: 2 });
        assert!(err.to_string().contains("another program"), "{err}");
        let err = fabric.run_correction(b"ab", &foreign).unwrap_err();
        assert!(matches!(err, RunError::SnapshotMismatch { .. }));
        let err = fabric
            .run_dense(b"ab", &RunOptions { resume: Some(foreign), ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, RunError::SnapshotMismatch { .. }));
        // the fabric stays usable after a rejected run
        assert_eq!(fabric.run(b"zabz").events.len(), 1);
    }

    #[test]
    fn correction_entry_without_starts_is_a_typed_error() {
        let fabric = Fabric::new(&single_partition()).unwrap();
        let entry = Snapshot {
            symbol_counter: 0,
            active_vectors: vec![Mask256::ZERO],
            output_buffer_fill: 0,
        };
        let err = fabric.run_correction(b"ab", &entry).unwrap_err();
        assert_eq!(err, RunError::EntryMissingStarts { partition: 0 });
        assert!(err.to_string().contains("partition 0"), "{err}");
    }

    #[test]
    fn dense_reference_agrees_with_worklist_loop() {
        for bs in [single_partition(), routed_pair()] {
            let input = b"zababzzabzabbbaz";
            let sparse = Fabric::new(&bs).unwrap().run(input);
            let dense = Fabric::new(&bs).unwrap().run_dense(input, &RunOptions::default()).unwrap();
            assert_eq!(sparse, dense, "reports, stats, entries and snapshot must be identical");
        }
    }

    #[test]
    fn dense_and_sparse_runs_interleave_on_one_fabric() {
        // run_dense leaves the scratch invariants the worklist loop
        // depends on (`next` all-zero), so the two can alternate freely.
        let mut fabric = Fabric::new(&routed_pair()).unwrap();
        let a = fabric.run_dense(b"zababz", &RunOptions::default()).unwrap();
        let b = fabric.run(b"zababz");
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.snapshot, b.snapshot);
    }
}
