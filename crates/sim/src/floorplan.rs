//! Slice floorplan: physical coordinates and wire distances.
//!
//! The paper assumes a 3.19 mm × 3 mm LLC slice (§5.1) and derates its
//! global-wire delay with a worst-case 1.5 mm array↔G-switch distance.
//! This module lays the automata ways out explicitly — the CBOX and the
//! G-switches in the slice center, sub-arrays in two columns of ways on
//! either side — so the wire distance of every partition, and therefore a
//! *mapping-aware* achievable frequency, can be computed instead of
//! assumed. Used by the `experiments` harness's floorplan ablation and
//! available to callers who want placement-sensitive timing.

use crate::geometry::{CacheGeometry, PartitionLocation};
use crate::switch_model::SwitchSpec;
use crate::timing::{state_match_ps, PipelineTiming, TimingParams, WireLayer};
use crate::DesignKind;

/// Physical dimensions of one LLC slice (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Slice width in mm.
    pub width_mm: f64,
    /// Slice height in mm.
    pub height_mm: f64,
    /// Ways per column of the slice layout (Xeon E5: 10 ways per side).
    pub ways_per_column: usize,
}

impl Default for Floorplan {
    fn default() -> Floorplan {
        Floorplan { width_mm: 3.19, height_mm: 3.0, ways_per_column: 10 }
    }
}

/// A point on the slice, in mm from the bottom-left corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal position (mm).
    pub x: f64,
    /// Vertical position (mm).
    pub y: f64,
}

impl Point {
    /// Manhattan distance to `other` (wires are routed rectilinearly).
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Floorplan {
    /// The CBOX / G-switch location: the slice center.
    pub fn center(&self) -> Point {
        Point { x: self.width_mm / 2.0, y: self.height_mm / 2.0 }
    }

    /// Coordinates of a partition's SRAM arrays.
    ///
    /// Ways alternate left/right of the central CBOX column; sub-arrays
    /// stack vertically within a way, with the two halves of a sub-array
    /// side by side.
    pub fn partition_point(&self, geom: &CacheGeometry, loc: &PartitionLocation) -> Point {
        let way = loc.way as usize;
        let side = way % 2; // 0 = left column, 1 = right column
                            // Automata ways are allocated center-out (CAT lets the OS pick
                            // which ways the NFA owns, and central ways minimize wire delay).
        let rows = self.ways_per_column.div_ceil(2).max(1);
        let center_row = rows / 2;
        let k = way / 2;
        let offset = k.div_ceil(2) as isize * if k % 2 == 1 { 1 } else { -1 };
        let row_in_column = (center_row as isize + offset).rem_euclid(rows as isize) as usize;
        let column_width = self.width_mm / 2.0;
        // x: middle of the way's horizontal span, offset by half position
        let way_x = if side == 0 { column_width * 0.5 } else { self.width_mm - column_width * 0.5 };
        let half_offset =
            (loc.half as f64 - 0.5) * (column_width / 4.0) / geom.partitions_per_subarray as f64;
        // y: sub-array position within the way's vertical span
        let way_height = self.height_mm / rows as f64;
        let way_y0 = row_in_column as f64 * way_height;
        let sub_y = (loc.subarray as f64 + 0.5) / geom.subarrays_per_way as f64 * way_height;
        Point { x: way_x + half_offset, y: way_y0 + sub_y }
    }

    /// Wire distance from a partition to the central G-switch (mm).
    pub fn gswitch_distance_mm(&self, geom: &CacheGeometry, loc: &PartitionLocation) -> f64 {
        self.partition_point(geom, loc).manhattan(&self.center())
    }

    /// The worst-case array↔G-switch distance over a set of occupied
    /// partition locations (or over the whole geometry if empty).
    pub fn worst_distance_mm(&self, geom: &CacheGeometry, occupied: &[PartitionLocation]) -> f64 {
        let all: Vec<PartitionLocation>;
        let locs: &[PartitionLocation] = if occupied.is_empty() {
            all = (0..geom.partitions_per_slice())
                .map(|i| PartitionLocation::from_index(geom, i))
                .collect();
            &all
        } else {
            occupied
        };
        locs.iter().map(|l| self.gswitch_distance_mm(geom, l)).fold(0.0, f64::max)
    }

    /// Mapping-aware pipeline timing: like
    /// [`pipeline_timing`](crate::timing::pipeline_timing) but with the
    /// wire legs set to the worst distance actually occupied by the
    /// mapping rather than the paper's fixed worst case.
    pub fn mapping_timing(
        &self,
        design: DesignKind,
        params: &TimingParams,
        occupied: &[PartitionLocation],
    ) -> PipelineTiming {
        let geom = CacheGeometry::for_design(design, 1);
        let wire_mm = self.worst_distance_mm(&geom, occupied);
        let gswitch = match design {
            DesignKind::Performance => SwitchSpec::G1_PERF,
            DesignKind::Space => SwitchSpec::G4_SPACE,
        };
        let wire_ps = wire_mm * WireLayer::GlobalMetal.ps_per_mm();
        PipelineTiming {
            design,
            sa_cycling: true,
            wire: WireLayer::GlobalMetal,
            state_match_ps: state_match_ps(params, geom.match_chunks, true),
            gswitch_ps: wire_ps + gswitch.delay_ps(),
            lswitch_ps: wire_ps + SwitchSpec::LOCAL.delay_ps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::for_design(DesignKind::Performance, 1)
    }

    #[test]
    fn every_partition_is_on_die() {
        let fp = Floorplan::default();
        let g = geom();
        for i in 0..g.partitions_per_slice() {
            let loc = PartitionLocation::from_index(&g, i);
            let p = fp.partition_point(&g, &loc);
            assert!((0.0..=fp.width_mm).contains(&p.x), "{loc}: x={}", p.x);
            assert!((0.0..=fp.height_mm).contains(&p.y), "{loc}: y={}", p.y);
        }
    }

    #[test]
    fn worst_case_distance_matches_paper_assumption() {
        // The paper assumes a 1.5 mm array-to-G-switch wire on a
        // 3.19 x 3 mm slice (a Euclidean engineering estimate); the
        // explicit center-out layout's worst *Manhattan* route is the same
        // order of magnitude.
        let fp = Floorplan::default();
        let worst = fp.worst_distance_mm(&geom(), &[]);
        assert!(
            (1.2..=2.5).contains(&worst),
            "worst distance {worst} mm should be commensurate with the paper's 1.5 mm"
        );
    }

    #[test]
    fn central_partitions_are_closer() {
        let fp = Floorplan::default();
        let g = geom();
        // way 0 is allocated centermost (center-out ordering); way 6 sits
        // toward the edge.
        let near = PartitionLocation::from_index(&g, 4);
        let far = PartitionLocation::from_index(&g, 6 * g.partitions_per_way());
        assert!(
            fp.gswitch_distance_mm(&g, &near) < fp.gswitch_distance_mm(&g, &far),
            "center should beat the edge"
        );
    }

    #[test]
    fn compact_mappings_can_clock_faster() {
        let fp = Floorplan::default();
        let g = geom();
        let params = TimingParams::default();
        // occupy only the most central way...
        let central: Vec<PartitionLocation> = (0..g.partitions_per_way())
            .map(|s| PartitionLocation::from_index(&g, 4 * g.partitions_per_way() + s))
            .collect();
        let compact = fp.mapping_timing(DesignKind::Performance, &params, &central);
        // ...vs the full slice
        let spread = fp.mapping_timing(DesignKind::Performance, &params, &[]);
        assert!(compact.gswitch_ps < spread.gswitch_ps);
        assert!(compact.max_freq_ghz() >= spread.max_freq_ghz());
        // state-match is placement-independent and still the bottleneck
        assert_eq!(compact.state_match_ps, spread.state_match_ps);
    }

    #[test]
    fn manhattan_distance() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 1.5, y: 2.0 };
        assert!((a.manhattan(&b) - 3.5).abs() < 1e-12);
        assert_eq!(a.manhattan(&a), 0.0);
    }
}
