//! 256-bit STE vectors.
//!
//! A [`Mask256`] is one partition's worth of per-STE bits: the active-state
//! vector, match vector, report mask and switch row images are all values
//! of this type (paper Figure 2a).

use std::fmt;

/// A 256-bit vector indexed by STE column (0–255).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask256 {
    words: [u64; 4],
}

impl Mask256 {
    /// The all-zero vector.
    pub const ZERO: Mask256 = Mask256 { words: [0; 4] };

    /// Creates an empty vector.
    pub fn new() -> Mask256 {
        Mask256::ZERO
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: u8) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: u8) {
        self.words[i as usize / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: u8) -> bool {
        self.words[i as usize / 64] >> (i % 64) & 1 == 1
    }

    /// `true` if no bit is set (drives partition disabling).
    pub fn is_zero(&self) -> bool {
        self.words == [0; 4]
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(&self, other: &Mask256) -> Mask256 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        Mask256 { words }
    }

    /// Bitwise AND.
    #[must_use]
    pub fn and(&self, other: &Mask256) -> Mask256 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        Mask256 { words }
    }

    /// Bitwise AND-NOT (`self & !other`): the bits only `self` carries.
    ///
    /// The parallel scan driver uses this to isolate the carry-over states
    /// a stripe boundary hands to its successor beyond the always-armed
    /// start vector.
    #[must_use]
    pub fn and_not(&self, other: &Mask256) -> Mask256 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        Mask256 { words }
    }

    /// In-place OR (the wired-OR a crossbar output column performs).
    pub fn or_assign(&mut self, other: &Mask256) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0usize..4).flat_map(move |w| {
            let mut word = self.words[w];
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some((w * 64 + bit) as u8)
            })
        })
    }

    /// Raw word view (used by the ANML/SRAM image emitters).
    pub fn to_words(&self) -> [u64; 4] {
        self.words
    }

    /// Builds a mask from raw words.
    pub fn from_words(words: [u64; 4]) -> Mask256 {
        Mask256 { words }
    }
}

impl FromIterator<u8> for Mask256 {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Mask256 {
        let mut m = Mask256::new();
        for b in iter {
            m.set(b);
        }
        m
    }
}

impl fmt::Display for Mask256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut m = Mask256::new();
        assert!(m.is_zero());
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(255);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(255));
        assert!(!m.get(1));
        assert_eq!(m.count(), 4);
        m.clear(63);
        assert!(!m.get(63));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn iter_ascending() {
        let m: Mask256 = [200u8, 5, 64].into_iter().collect();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![5, 64, 200]);
    }

    #[test]
    fn logic_ops() {
        let a: Mask256 = [1u8, 2, 3].into_iter().collect();
        let b: Mask256 = [3u8, 4].into_iter().collect();
        assert_eq!(a.or(&b).count(), 4);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![3]);
        let mut c = a;
        c.or_assign(&b);
        assert_eq!(c, a.or(&b));
    }

    #[test]
    fn words_roundtrip() {
        let m: Mask256 = [7u8, 77, 177].into_iter().collect();
        assert_eq!(Mask256::from_words(m.to_words()), m);
    }

    #[test]
    fn display() {
        let m: Mask256 = [3u8, 9].into_iter().collect();
        assert_eq!(m.to_string(), "{3,9}");
        assert_eq!(Mask256::ZERO.to_string(), "{}");
    }
}
