//! Durable bitstream artifacts: a versioned, self-describing binary
//! encoding of a [`Bitstream`].
//!
//! The `.capg` page format ([`crate::pages`]) models what the *loader*
//! streams into the cache: location-ordered huge pages, partitions
//! physically sorted. This module is the complementary *artifact* format —
//! a faithful, byte-exact image of the compiler's output (partition order
//! preserved, route tables and geometry included) that can be written to
//! disk, shipped to another machine, and reloaded without recompiling.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CAAR"
//!      4     2  format version (currently 1)
//!      6     1  design-point tag (0 = CA_P, 1 = CA_S)
//!      7     1  reserved (0)
//!      8     8  FNV-1a 64 checksum of the payload
//!     16     8  payload length in bytes
//!     24     …  payload: geometry, partitions, routes
//! ```
//!
//! Compatibility rules: decoders reject unknown magic, versions they do
//! not implement, payloads whose checksum disagrees, and trailing bytes.
//! Any change to the payload layout bumps the version; version 1 decoders
//! never reinterpret bytes of a future version.

use crate::bitstream::{Bitstream, PartitionImage, Route, RouteVia};
use crate::geometry::{CacheGeometry, DesignKind, PartitionLocation};
use crate::mask::Mask256;
use ca_automata::{CharClass, ReportCode};
use std::fmt;

/// Magic bytes introducing a bitstream artifact.
pub const ARTIFACT_MAGIC: &[u8; 4] = b"CAAR";

/// Current artifact format version.
pub const ARTIFACT_VERSION: u16 = 1;

/// Failures while decoding an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The bytes do not start with [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The artifact was written by a format version this build does not
    /// implement.
    UnsupportedVersion(u16),
    /// The payload checksum disagrees with the header (corruption or
    /// truncation in transit).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the payload actually read.
        computed: u64,
    },
    /// Structurally invalid content (truncated fields, out-of-range tags,
    /// trailing bytes).
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a cache-automaton artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "artifact version {v} is not supported (this build reads {ARTIFACT_VERSION})"
                )
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (header {stored:#018x}, payload {computed:#018x})"
            ),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit checksum (the artifact format's integrity hash).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_mask(out: &mut Vec<u8>, mask: &Mask256) {
    for w in mask.to_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Sequential reader over the payload with truncation-aware accessors.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| ArtifactError::Malformed(format!("truncated {what}")))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn mask(&mut self, what: &str) -> Result<Mask256, ArtifactError> {
        let slice = self.take(32, what)?;
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(slice[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        Ok(Mask256::from_words(words))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn encode_payload(bs: &Bitstream) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + bs.partitions.len() * 4096 + bs.routes.len() * 11);
    let g = &bs.geometry;
    for v in [
        g.slices,
        g.automata_ways,
        g.subarrays_per_way,
        g.partitions_per_subarray,
        g.match_chunks as usize,
        g.gswitch4_ways,
        g.g1_ports,
        g.g4_ports,
    ] {
        put_u32(&mut p, v as u32);
    }
    put_u32(&mut p, bs.partitions.len() as u32);
    for img in &bs.partitions {
        for v in [img.location.slice, img.location.way, img.location.subarray, img.location.half] {
            put_u32(&mut p, v);
        }
        put_u32(&mut p, img.labels.len() as u32);
        for label in &img.labels {
            for w in label.to_bits() {
                p.extend_from_slice(&w.to_le_bytes());
            }
        }
        for row in &img.local {
            put_mask(&mut p, row);
        }
        put_u32(&mut p, img.import_dest.len() as u32);
        for row in &img.import_dest {
            put_mask(&mut p, row);
        }
        put_mask(&mut p, &img.start_all);
        put_mask(&mut p, &img.start_sod);
        put_u32(&mut p, img.reports.len() as u32);
        for &(col, code) in &img.reports {
            p.push(col);
            put_u32(&mut p, code.0);
        }
    }
    put_u32(&mut p, bs.routes.len() as u32);
    for r in &bs.routes {
        put_u32(&mut p, r.src_partition);
        p.push(r.src_ste);
        p.push(match r.via {
            RouteVia::G1 => 0,
            RouteVia::G4 => 1,
        });
        put_u32(&mut p, r.dst_partition);
        p.push(r.dst_port);
    }
    p
}

fn decode_payload(design: DesignKind, payload: &[u8]) -> Result<Bitstream, ArtifactError> {
    let mut r = Reader::new(payload);
    let mut geo = [0usize; 8];
    for (i, v) in geo.iter_mut().enumerate() {
        *v = r.u32(&format!("geometry field {i}"))? as usize;
    }
    let geometry = CacheGeometry {
        slices: geo[0],
        automata_ways: geo[1],
        subarrays_per_way: geo[2],
        partitions_per_subarray: geo[3],
        match_chunks: geo[4] as u32,
        gswitch4_ways: geo[5],
        g1_ports: geo[6],
        g4_ports: geo[7],
    };
    geometry.validate().map_err(ArtifactError::Malformed)?;
    let n_partitions = r.u32("partition count")? as usize;
    if n_partitions > geometry.total_partitions() {
        return Err(ArtifactError::Malformed(format!(
            "{n_partitions} partitions exceed the geometry's {}",
            geometry.total_partitions()
        )));
    }
    let mut partitions = Vec::with_capacity(n_partitions);
    for pi in 0..n_partitions {
        let mut loc = [0u32; 4];
        for v in loc.iter_mut() {
            *v = r.u32("location")?;
        }
        let location =
            PartitionLocation { slice: loc[0], way: loc[1], subarray: loc[2], half: loc[3] };
        let mut img = PartitionImage::new(location);
        let n_labels = r.u32("label count")? as usize;
        if n_labels > crate::geometry::STES_PER_PARTITION {
            return Err(ArtifactError::Malformed(format!(
                "partition {pi} claims {n_labels} labels (max 256)"
            )));
        }
        for _ in 0..n_labels {
            img.labels.push(CharClass::from_bits(r.mask("label")?.to_words()));
        }
        for _ in 0..n_labels {
            img.local.push(r.mask("local-switch row")?);
        }
        let n_imports = r.u32("import count")? as usize;
        if n_imports > geometry.g1_ports + geometry.g4_ports {
            return Err(ArtifactError::Malformed(format!(
                "partition {pi} claims {n_imports} import ports"
            )));
        }
        for _ in 0..n_imports {
            img.import_dest.push(r.mask("import row")?);
        }
        img.start_all = r.mask("start-all vector")?;
        img.start_sod = r.mask("start-of-data vector")?;
        let n_reports = r.u32("report count")? as usize;
        if n_reports > crate::geometry::STES_PER_PARTITION {
            return Err(ArtifactError::Malformed(format!(
                "partition {pi} claims {n_reports} reports"
            )));
        }
        for _ in 0..n_reports {
            let col = r.u8("report column")?;
            let code = r.u32("report code")?;
            img.reports.push((col, ReportCode(code)));
        }
        partitions.push(img);
    }
    let n_routes = r.u32("route count")? as usize;
    let mut routes = Vec::with_capacity(n_routes.min(1 << 20));
    for _ in 0..n_routes {
        let src_partition = r.u32("route source")?;
        let src_ste = r.u8("route source STE")?;
        let via = match r.u8("route via")? {
            0 => RouteVia::G1,
            1 => RouteVia::G4,
            other => {
                return Err(ArtifactError::Malformed(format!("unknown route via tag {other}")))
            }
        };
        let dst_partition = r.u32("route destination")?;
        let dst_port = r.u8("route destination port")?;
        routes.push(Route { src_partition, src_ste, via, dst_partition, dst_port });
    }
    if !r.done() {
        return Err(ArtifactError::Malformed("trailing bytes after route table".into()));
    }
    Ok(Bitstream { design, geometry, partitions, routes })
}

impl Bitstream {
    /// Encodes the bitstream into the versioned artifact byte format.
    ///
    /// The encoding is canonical: equal bitstreams produce byte-identical
    /// artifacts, so artifact bytes can be compared to prove that two
    /// compilations agree.
    pub fn encode(&self) -> Vec<u8> {
        let payload = encode_payload(self);
        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.push(match self.design {
            DesignKind::Performance => 0,
            DesignKind::Space => 1,
        });
        out.push(0); // reserved
        out.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes an artifact produced by [`Bitstream::encode`].
    ///
    /// The result is bit-faithful to what was encoded, and the decoder
    /// re-runs [`Bitstream::validate`] before returning, so a hand-edited
    /// artifact that passes the checksum but violates an architectural
    /// constraint (duplicate report columns, illegal routes, …) is
    /// rejected here instead of panicking mid-scan.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on bad magic, unsupported version, checksum
    /// mismatch, malformed payload, or a payload that fails
    /// [`Bitstream::validate`].
    pub fn decode(bytes: &[u8]) -> Result<Bitstream, ArtifactError> {
        if bytes.get(..4) != Some(ARTIFACT_MAGIC.as_slice()) {
            return Err(ArtifactError::BadMagic);
        }
        let header =
            bytes.get(4..24).ok_or_else(|| ArtifactError::Malformed("truncated header".into()))?;
        let version = u16::from_le_bytes(header[0..2].try_into().expect("2 bytes"));
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let design = match header[2] {
            0 => DesignKind::Performance,
            1 => DesignKind::Space,
            other => return Err(ArtifactError::Malformed(format!("unknown design tag {other}"))),
        };
        let stored = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")) as usize;
        let payload = bytes
            .get(24..24 + len)
            .ok_or_else(|| ArtifactError::Malformed("payload shorter than header claims".into()))?;
        if bytes.len() != 24 + len {
            return Err(ArtifactError::Malformed("trailing bytes after payload".into()));
        }
        let computed = fnv1a_64(payload);
        if computed != stored {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        let bs = decode_payload(design, payload)?;
        bs.validate().map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        Ok(bs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::STES_PER_PARTITION;

    fn sample() -> Bitstream {
        let geometry = CacheGeometry::for_design(DesignKind::Space, 2);
        let mut p0 = PartitionImage::new(PartitionLocation::from_index(&geometry, 5));
        p0.labels = vec![CharClass::byte(b'a'), CharClass::range(b'0', b'9')];
        p0.local = vec![[1u8].into_iter().collect(), Mask256::ZERO];
        p0.start_all.set(0);
        p0.reports.push((1, ReportCode(7)));
        let mut p1 = PartitionImage::new(PartitionLocation::from_index(&geometry, 0));
        p1.labels = vec![CharClass::byte(b'z')];
        p1.local = vec![Mask256::ZERO];
        p1.start_sod.set(0);
        p1.import_dest = vec![[0u8].into_iter().collect()];
        let routes = vec![Route {
            src_partition: 0,
            src_ste: 0,
            via: RouteVia::G1,
            dst_partition: 1,
            dst_port: 0,
        }];
        Bitstream { design: DesignKind::Space, geometry, partitions: vec![p0, p1], routes }
    }

    #[test]
    fn roundtrip_is_exact() {
        let bs = sample();
        let bytes = bs.encode();
        let back = Bitstream::decode(&bytes).unwrap();
        // byte-exact: partition order, routes, geometry all preserved
        assert_eq!(back, bs);
        // and canonical: re-encoding reproduces the same bytes
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn empty_bitstream_roundtrips() {
        let bs = Bitstream {
            design: DesignKind::Performance,
            geometry: CacheGeometry::for_design(DesignKind::Performance, 8),
            partitions: Vec::new(),
            routes: Vec::new(),
        };
        assert_eq!(Bitstream::decode(&bs.encode()).unwrap(), bs);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Bitstream::decode(&bytes).unwrap_err(), ArtifactError::BadMagic);
        assert!(Bitstream::decode(b"CA").is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = 0xff;
        assert!(matches!(
            Bitstream::decode(&bytes).unwrap_err(),
            ArtifactError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let bytes = sample().encode();
        for at in [24, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = Bitstream::decode(&bad).unwrap_err();
            assert!(matches!(err, ArtifactError::ChecksumMismatch { .. }), "flip at {at}: {err}");
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let bytes = sample().encode();
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 5);
        assert!(Bitstream::decode(&short).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Bitstream::decode(&long).is_err());
        assert!(Bitstream::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn implausible_counts_rejected_without_checksum_help() {
        // construct a payload with an absurd label count but a valid
        // checksum, to prove the structural bounds trip independently
        let bs = sample();
        let mut payload = encode_payload(&bs);
        // label count of partition 0 sits after 8 geometry words, the
        // partition count and 4 location words
        let at = 8 * 4 + 4 + 4 * 4;
        payload[at..at + 4].copy_from_slice(&((STES_PER_PARTITION as u32) + 1).to_le_bytes());
        let err = decode_payload(bs.design, &payload).unwrap_err();
        assert!(matches!(err, ArtifactError::Malformed(_)), "{err}");
    }

    #[test]
    fn architecturally_invalid_artifact_rejected_at_decode() {
        // A hand-edited artifact with a valid checksum but a duplicate
        // report column must fail at load time, not mid-scan.
        let mut bs = sample();
        bs.partitions[0].reports.push((1, ReportCode(9)));
        let payload = encode_payload(&bs);
        let mut bytes = Vec::with_capacity(24 + payload.len());
        bytes.extend_from_slice(ARTIFACT_MAGIC);
        bytes.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        bytes.push(1); // Space
        bytes.push(0);
        bytes.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = Bitstream::decode(&bytes).unwrap_err();
        match err {
            ArtifactError::Malformed(msg) => {
                assert!(msg.contains("duplicate report column"), "{msg}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_stable() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
