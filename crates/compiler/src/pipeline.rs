//! The pass-based compilation pipeline.
//!
//! [`compile`](crate::compile) used to be one long function with the
//! plan/place/emit flow and the port-pressure retry loop inlined. It is now
//! an explicit pipeline of named passes behind the [`Pass`] trait:
//!
//! * **Plan** — components → logical 256-STE partitions + quotient graph;
//! * **Place** — logical partitions → physical locations;
//! * **Emit** — partition images, switch cross-points, global routes;
//! * **Validate** — every architectural constraint re-checked on the final
//!   image (the compiler-bug guard).
//!
//! The driver times each pass ([`PassTimings`], surfaced in
//! [`MappingStats`]), and the §3.2 behaviour of
//! re-planning with a finer split when G-switch port budgets bite is a
//! [`RetryPolicy`] of the pipeline rather than inline control flow: a pass
//! may declare an error retryable, and the driver restarts the pipeline
//! with the next `extra_parts` value from the schedule.
//!
//! # Examples
//!
//! ```
//! use ca_automata::regex::compile_patterns;
//! use ca_compiler::{pipeline::Pipeline, CompilerOptions};
//!
//! let nfa = compile_patterns(&["rain", "r[au]n"]).unwrap();
//! let compiled = Pipeline::standard().run(&nfa, &CompilerOptions::default()).unwrap();
//! assert_eq!(compiled.stats.retries, 0);
//! assert!(compiled.stats.timings.total_ms() >= 0.0);
//! ```

use crate::error::CompileError;
use crate::plan::{LogicalPlan, PortBudget};
use crate::{emit, place, plan, CompiledAutomaton, CompilerOptions, MappingStats};
use ca_automata::analysis::{connected_components, Components};
use ca_automata::HomNfa;
use ca_sim::{Bitstream, CacheGeometry, PartitionLocation};
use ca_telemetry::Telemetry;
use std::time::Instant;

/// Wall-clock milliseconds spent in each pass, accumulated across retries.
///
/// Diagnostic only: excluded from [`MappingStats`]'s equality so that a
/// cached compilation compares equal to the compilation that produced it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassTimings {
    /// Milliseconds in the Plan pass.
    pub plan_ms: f64,
    /// Milliseconds in the Place pass.
    pub place_ms: f64,
    /// Milliseconds in the Emit pass.
    pub emit_ms: f64,
    /// Milliseconds in the Validate pass.
    pub validate_ms: f64,
}

impl PassTimings {
    /// Total time across all passes.
    pub fn total_ms(&self) -> f64 {
        self.plan_ms + self.place_ms + self.emit_ms + self.validate_ms
    }

    fn record(&mut self, pass: &str, ms: f64) {
        match pass {
            "plan" => self.plan_ms += ms,
            "place" => self.place_ms += ms,
            "emit" => self.emit_ms += ms,
            "validate" => self.validate_ms += ms,
            _ => {}
        }
    }
}

/// Mutable state threaded through the passes of one pipeline attempt.
///
/// Each pass reads the fields earlier passes filled and writes its own;
/// the driver owns construction and the retry policy.
pub struct PassContext<'a> {
    /// The (validated) input automaton.
    pub nfa: &'a HomNfa,
    /// Compiler configuration.
    pub options: &'a CompilerOptions,
    /// Geometry implied by the options.
    pub geometry: CacheGeometry,
    /// Connected components of the input (computed once, shared by
    /// attempts).
    pub components: &'a Components,
    /// Extra split slack for oversized components (set by the retry
    /// policy; 0 on the first attempt).
    pub extra_parts: usize,
    /// Output of the Plan pass.
    pub plan: Option<LogicalPlan>,
    /// Weighted quotient edges between logical partitions (Plan output).
    pub quotient: Vec<(u32, u32, u32)>,
    /// Output of the Place pass.
    pub locations: Option<Vec<PartitionLocation>>,
    /// Output of the Emit pass.
    pub bitstream: Option<Bitstream>,
    /// State → (partition, column) map (Emit output).
    pub state_map: Vec<(u32, u8)>,
}

impl<'a> PassContext<'a> {
    fn new(
        nfa: &'a HomNfa,
        options: &'a CompilerOptions,
        geometry: CacheGeometry,
        components: &'a Components,
        extra_parts: usize,
    ) -> PassContext<'a> {
        PassContext {
            nfa,
            options,
            geometry,
            components,
            extra_parts,
            plan: None,
            quotient: Vec::new(),
            locations: None,
            bitstream: None,
            state_map: Vec::new(),
        }
    }
}

/// One named stage of the compilation pipeline.
pub trait Pass {
    /// Stable lower-case name ("plan", "place", "emit", "validate") used
    /// for timing attribution.
    fn name(&self) -> &'static str;

    /// Runs the pass, reading and writing the shared [`PassContext`].
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]; the driver consults [`Pass::retryable`] to
    /// decide whether to restart the pipeline with a finer split.
    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError>;

    /// Whether `err` should trigger a pipeline retry at the next
    /// `extra_parts` step instead of failing the compilation.
    fn retryable(&self, _err: &CompileError) -> bool {
        false
    }
}

/// Plan pass: connected components → logical partitions + quotient edges.
pub struct PlanPass;

impl Pass for PlanPass {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let geom = &ctx.geometry;
        let budget = PortBudget {
            same_way: geom.g1_ports,
            cross_way: geom.g4_ports,
            way_states: geom.partitions_per_way() * ca_sim::STES_PER_PARTITION,
        };
        let logical =
            plan::plan(ctx.nfa, ctx.components, ctx.extra_parts, &budget, ctx.options.seed)?;
        // quotient edges between logical partitions (weights = transition
        // counts), consumed by placement's affinity heuristics
        let mut quotient_map: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for (sid, _) in ctx.nfa.iter() {
            let a = logical.assignment[sid.index()];
            for t in ctx.nfa.successors(sid) {
                let b = logical.assignment[t.index()];
                if a != b {
                    let key = if a < b { (a, b) } else { (b, a) };
                    *quotient_map.entry(key).or_insert(0) += 1;
                }
            }
        }
        ctx.quotient = quotient_map.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        ctx.plan = Some(logical);
        Ok(())
    }
}

/// Place pass: logical partitions → physical cache locations.
///
/// Placement failures are structural (a cluster exceeds the switch
/// topology's reach; splitting finer only grows the cluster), so its
/// errors are terminal — never retryable.
pub struct PlacePass;

impl Pass for PlacePass {
    fn name(&self) -> &'static str {
        "place"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let plan = ctx.plan.as_ref().expect("Plan pass ran");
        let locations = place::place(plan, &ctx.quotient, &ctx.geometry, ctx.options.seed)?;
        ctx.locations = Some(locations);
        Ok(())
    }
}

/// Emit pass: partition images, local-switch cross-points, global routes.
///
/// Port-budget violations ([`CompileError::RoutingInfeasible`]) are
/// retryable: the driver re-plans with a finer split, mirroring the
/// paper's observation that METIS keeps inter-partition transitions below
/// the 16-port budget once components are split finely enough.
pub struct EmitPass;

impl Pass for EmitPass {
    fn name(&self) -> &'static str {
        "emit"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let plan = ctx.plan.as_ref().expect("Plan pass ran");
        let locations = ctx.locations.as_ref().expect("Place pass ran");
        let (bitstream, state_map) =
            emit::emit(ctx.nfa, plan, locations, &ctx.geometry, ctx.options.design)?;
        ctx.bitstream = Some(bitstream);
        ctx.state_map = state_map;
        Ok(())
    }

    fn retryable(&self, err: &CompileError) -> bool {
        matches!(err, CompileError::RoutingInfeasible { .. })
    }
}

/// Validate pass: re-checks every architectural constraint on the final
/// image. A failure here is a compiler bug, reported as
/// [`CompileError::Internal`].
pub struct ValidatePass;

impl Pass for ValidatePass {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let bitstream = ctx.bitstream.as_ref().expect("Emit pass ran");
        bitstream
            .validate()
            .map_err(|e| CompileError::Internal(format!("emitted bitstream invalid: {e}")))
    }
}

/// When and how the pipeline restarts after a retryable pass failure.
///
/// `extra_parts[i]` is the split slack of attempt `i`; the schedule length
/// bounds the number of attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt extra split parts for oversized components.
    pub extra_parts: Vec<usize>,
}

impl Default for RetryPolicy {
    /// The paper-calibrated schedule: first try the natural split, then
    /// progressively finer ones.
    fn default() -> RetryPolicy {
        RetryPolicy { extra_parts: vec![0, 1, 2, 4] }
    }
}

/// The pass pipeline: an ordered list of passes plus a retry policy.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    retry: RetryPolicy,
    telemetry: Telemetry,
}

/// The telemetry span name of a standard pass (unknown pass names group
/// under `compile.pass.other` — sink names must be `'static`).
fn pass_span_name(pass: &'static str) -> &'static str {
    match pass {
        "plan" => "compile.pass.plan",
        "place" => "compile.pass.place",
        "emit" => "compile.pass.emit",
        "validate" => "compile.pass.validate",
        _ => "compile.pass.other",
    }
}

impl Pipeline {
    /// The standard Plan → Place → Emit → Validate pipeline with the
    /// default retry schedule.
    pub fn standard() -> Pipeline {
        Pipeline::new(
            vec![
                Box::new(PlanPass),
                Box::new(PlacePass),
                Box::new(EmitPass),
                Box::new(ValidatePass),
            ],
            RetryPolicy::default(),
        )
    }

    /// A pipeline from explicit passes and policy (for experimentation:
    /// extra analysis passes, alternative retry schedules).
    pub fn new(passes: Vec<Box<dyn Pass>>, retry: RetryPolicy) -> Pipeline {
        Pipeline { passes, retry, telemetry: Telemetry::disabled() }
    }

    /// Routes compilation events to `telemetry`: one `compile.pass.*` span
    /// per pass per attempt (labelled by attempt index, the very same
    /// milliseconds recorded in [`PassTimings`]), `compile.compilations` /
    /// `compile.retries` counters, and mapping-size gauges on success.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Pipeline {
        self.telemetry = telemetry;
        self
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Compiles `nfa` through the pipeline.
    ///
    /// # Errors
    ///
    /// * [`CompileError::InvalidAutomaton`] for malformed inputs;
    /// * [`CompileError::CapacityExceeded`] when the geometry is too small;
    /// * [`CompileError::RoutingInfeasible`] when connectivity constraints
    ///   cannot be met even after the retry schedule is exhausted.
    pub fn run(
        &self,
        nfa: &HomNfa,
        opts: &CompilerOptions,
    ) -> Result<CompiledAutomaton, CompileError> {
        nfa.validate().map_err(|e| CompileError::InvalidAutomaton(e.to_string()))?;
        let geom = opts.geometry();
        geom.validate().map_err(CompileError::InvalidAutomaton)?;
        if nfa.is_empty() {
            return Ok(empty_compilation(opts, geom));
        }
        let cc = connected_components(nfa);

        // Fast structural pre-check: a component larger than the switch
        // topology's routable domain can never map, however it is split —
        // fail before spending minutes partitioning it.
        let domain_partitions = if geom.gswitch4_ways == 0 {
            geom.partitions_per_way()
        } else {
            geom.partitions_per_slice()
        };
        let domain_states = domain_partitions * ca_sim::STES_PER_PARTITION;
        for (ci, comp) in cc.components.iter().enumerate() {
            if comp.len() > domain_states {
                return Err(CompileError::RoutingInfeasible {
                    component: ci,
                    states: comp.len(),
                    reason: format!(
                        "component exceeds the {} routable domain of {domain_states} states",
                        if geom.gswitch4_ways == 0 { "per-way (G1)" } else { "per-slice (G4)" }
                    ),
                });
            }
        }

        let mut timings = PassTimings::default();
        let mut last_err = None;
        for (retry, &extra) in self.retry.extra_parts.iter().enumerate() {
            let mut ctx = PassContext::new(nfa, opts, geom, &cc, extra);
            let mut failed = None;
            for pass in &self.passes {
                let started = Instant::now();
                let result = pass.run(&mut ctx);
                let ms = started.elapsed().as_secs_f64() * 1e3;
                timings.record(pass.name(), ms);
                self.telemetry.span(pass_span_name(pass.name()), retry as u64, ms);
                if let Err(e) = result {
                    if pass.retryable(&e) {
                        failed = Some(e);
                        break;
                    }
                    return Err(e);
                }
            }
            match failed {
                Some(e) => last_err = Some(e),
                None => {
                    let bitstream = ctx.bitstream.expect("pipeline produced a bitstream");
                    let logical = ctx.plan.expect("pipeline produced a plan");
                    let g1_routes =
                        bitstream.routes.iter().filter(|r| r.via == ca_sim::RouteVia::G1).count();
                    let g4_routes = bitstream.routes.len() - g1_routes;
                    let stats = MappingStats {
                        states: nfa.len(),
                        connected_components: cc.len(),
                        largest_cc: cc.largest(),
                        partitions_used: bitstream.partitions.len(),
                        utilization_bytes: bitstream.utilization_bytes(),
                        g1_routes,
                        g4_routes,
                        kway_invocations: logical.kway_invocations,
                        retries: retry,
                        seed: opts.seed,
                        timings,
                    };
                    self.telemetry.counter("compile.compilations", 1);
                    self.telemetry.counter("compile.retries", retry as u64);
                    if self.telemetry.is_enabled() {
                        self.telemetry.gauge("compile.states", 0, stats.states as f64);
                        self.telemetry.gauge(
                            "compile.partitions_used",
                            0,
                            stats.partitions_used as f64,
                        );
                        self.telemetry.gauge("compile.g1_routes", 0, stats.g1_routes as f64);
                        self.telemetry.gauge("compile.g4_routes", 0, stats.g4_routes as f64);
                        self.telemetry.gauge(
                            "compile.utilization_bytes",
                            0,
                            stats.utilization_bytes as f64,
                        );
                    }
                    return Ok(CompiledAutomaton { bitstream, stats, state_map: ctx.state_map });
                }
            }
        }
        Err(last_err.expect("retry schedule is non-empty"))
    }
}

fn empty_compilation(opts: &CompilerOptions, geom: CacheGeometry) -> CompiledAutomaton {
    CompiledAutomaton {
        bitstream: Bitstream {
            design: opts.design,
            geometry: geom,
            partitions: Vec::new(),
            routes: Vec::new(),
        },
        stats: MappingStats {
            states: 0,
            connected_components: 0,
            largest_cc: 0,
            partitions_used: 0,
            utilization_bytes: 0,
            g1_routes: 0,
            g4_routes: 0,
            kway_invocations: 0,
            retries: 0,
            seed: opts.seed,
            timings: PassTimings::default(),
        },
        state_map: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::regex::compile_patterns;
    use ca_automata::{CharClass, ReportCode, StartKind};

    #[test]
    fn standard_pipeline_names() {
        assert_eq!(Pipeline::standard().pass_names(), ["plan", "place", "emit", "validate"]);
    }

    #[test]
    fn timings_are_populated() {
        let nfa = compile_patterns(&["timing", "t[io]ming"]).unwrap();
        let c = Pipeline::standard().run(&nfa, &CompilerOptions::default()).unwrap();
        // plan/place/emit/validate all ran exactly once
        assert_eq!(c.stats.retries, 0);
        assert!(c.stats.timings.total_ms() > 0.0);
        assert!(c.stats.timings.plan_ms >= 0.0);
        assert_eq!(c.stats.seed, CompilerOptions::default().seed);
    }

    #[test]
    fn retry_schedule_is_honoured() {
        // A pipeline whose Emit always reports port pressure must exhaust
        // the schedule and surface the last error.
        struct FailingEmit;
        impl Pass for FailingEmit {
            fn name(&self) -> &'static str {
                "emit"
            }
            fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
                Err(CompileError::RoutingInfeasible {
                    component: 0,
                    states: ctx.nfa.len(),
                    reason: format!("forced failure at extra={}", ctx.extra_parts),
                })
            }
            fn retryable(&self, _e: &CompileError) -> bool {
                true
            }
        }
        let nfa = compile_patterns(&["abc"]).unwrap();
        let pipeline = Pipeline::new(
            vec![Box::new(PlanPass), Box::new(PlacePass), Box::new(FailingEmit)],
            RetryPolicy { extra_parts: vec![0, 3, 7] },
        );
        let err = pipeline.run(&nfa, &CompilerOptions::default()).unwrap_err();
        // the error reports the *last* attempt's extra_parts value
        assert!(err.to_string().contains("extra=7"), "{err}");
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        struct BrokenPlace;
        impl Pass for BrokenPlace {
            fn name(&self) -> &'static str {
                "place"
            }
            fn run(&self, _ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
                Err(CompileError::Internal("wired to fail".into()))
            }
        }
        let nfa = compile_patterns(&["abc"]).unwrap();
        let pipeline =
            Pipeline::new(vec![Box::new(PlanPass), Box::new(BrokenPlace)], RetryPolicy::default());
        let err = pipeline.run(&nfa, &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Internal(_)));
    }

    #[test]
    fn validate_pass_catches_corrupt_images() {
        // A hostile pass that corrupts the emitted bitstream: Validate
        // must catch it and report an internal error.
        struct Corruptor;
        impl Pass for Corruptor {
            fn name(&self) -> &'static str {
                "corrupt"
            }
            fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
                let bs = ctx.bitstream.as_mut().expect("emit ran");
                bs.partitions[0].reports.push((250, ReportCode(9)));
                Ok(())
            }
        }
        let nfa = compile_patterns(&["xy"]).unwrap();
        let pipeline = Pipeline::new(
            vec![
                Box::new(PlanPass),
                Box::new(PlacePass),
                Box::new(EmitPass),
                Box::new(Corruptor),
                Box::new(ValidatePass),
            ],
            RetryPolicy::default(),
        );
        let err = pipeline.run(&nfa, &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Internal(_)), "{err}");
    }

    #[test]
    fn retries_accumulate_timings() {
        // long chain on a tight geometry: may retry, but must still
        // produce cumulative timings and a consistent retry count
        let mut nfa = ca_automata::HomNfa::new();
        let mut prev = None;
        for i in 0..600 {
            let start = if i == 0 { StartKind::AllInput } else { StartKind::None };
            let report = if i == 599 { Some(ReportCode(0)) } else { None };
            let id = nfa.add_state_full(CharClass::byte(b'a'), start, report);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
        let c = Pipeline::standard().run(&nfa, &CompilerOptions::default()).unwrap();
        assert!(c.stats.retries < 4);
        assert!(c.stats.timings.plan_ms > 0.0);
    }
}
