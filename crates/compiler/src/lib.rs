//! The Cache Automaton mapping compiler.
//!
//! Fully automates the paper's §3 flow: an ANML/regex-derived homogeneous
//! NFA goes in; a placed, routed, validated [`Bitstream`] for the LLC
//! fabric comes out.
//!
//! The flow is an explicit pass pipeline (see [`pipeline`]):
//!
//! 1. **Plan** — connected components become atomic units; small ones are
//!    bin-packed into 256-STE partitions, oversized ones are split with the
//!    multilevel graph partitioner (minimum cross-partition transitions,
//!    balanced parts).
//! 2. **Place** — split components are kept within a way (G-switch-1
//!    reach) or grouped into ways inside one slice (G-switch-4 reach on the
//!    space design); leftovers fill free slots.
//! 3. **Emit** — STE columns, local-switch cross-points, import ports and
//!    global routes are generated; the G-switch port budgets (16 per way,
//!    8 cross-way) are enforced, retrying planning with a finer split when
//!    they bite (mirroring the paper's observation that METIS keeps
//!    inter-partition transitions below 16).
//! 4. **Validate** — every architectural constraint is re-checked on the
//!    emitted image before it is handed to the caller.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ca_automata::regex::compile_patterns;
//! use ca_compiler::{compile, CompilerOptions};
//! use ca_sim::Fabric;
//!
//! let nfa = compile_patterns(&["rain", "r[au]n", "running"])?;
//! let compiled = compile(&nfa, &CompilerOptions::default())?;
//! assert_eq!(compiled.stats.partitions_used, 1); // 12 states pack easily
//!
//! let mut fabric = Fabric::new(&compiled.bitstream)?;
//! let report = fabric.run(b"it is running to run in rain");
//! assert_eq!(report.events.len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod error;
pub mod pipeline;
pub mod place;
pub mod plan;

pub use error::CompileError;
pub use pipeline::{Pass, PassContext, PassTimings, Pipeline, RetryPolicy};

use ca_automata::HomNfa;
use ca_sim::{Bitstream, CacheGeometry, DesignKind, Fabric, PartitionLocation};

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    /// Target design point (selects geometry, connectivity, frequency).
    pub design: DesignKind,
    /// LLC slices available (paper prototype: 8).
    pub slices: usize,
    /// Seed for the graph partitioner (placements are deterministic).
    pub seed: u64,
}

impl Default for CompilerOptions {
    fn default() -> CompilerOptions {
        CompilerOptions { design: DesignKind::Performance, slices: 8, seed: 0xca }
    }
}

impl CompilerOptions {
    /// Convenience constructor for a design point with the default slices.
    pub fn for_design(design: DesignKind) -> CompilerOptions {
        CompilerOptions { design, ..Default::default() }
    }

    /// The cache geometry implied by these options.
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry::for_design(self.design, self.slices)
    }
}

/// Mapping statistics (feed Table 1 and Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct MappingStats {
    /// States mapped.
    pub states: usize,
    /// Connected components in the input.
    pub connected_components: usize,
    /// Largest component size.
    pub largest_cc: usize,
    /// Partitions allocated.
    pub partitions_used: usize,
    /// Cache bytes occupied (whole partitions).
    pub utilization_bytes: usize,
    /// Routes through per-way G-switches.
    pub g1_routes: usize,
    /// Routes through cross-way G-switches.
    pub g4_routes: usize,
    /// Invocations of the k-way partitioner during planning.
    pub kway_invocations: usize,
    /// Plan/emit retries needed to satisfy port budgets.
    pub retries: usize,
    /// Partitioner seed the compilation was run with (provenance: the
    /// same (NFA, options, seed) triple reproduces the bitstream
    /// byte-for-byte).
    pub seed: u64,
    /// Per-pass wall-clock timings (diagnostic; excluded from equality).
    pub timings: PassTimings,
}

/// Equality ignores [`MappingStats::timings`]: wall-clock jitter must not
/// make two otherwise-identical compilations (e.g. a cache hit and the
/// fresh compile that seeded it) compare unequal.
impl PartialEq for MappingStats {
    fn eq(&self, other: &MappingStats) -> bool {
        self.states == other.states
            && self.connected_components == other.connected_components
            && self.largest_cc == other.largest_cc
            && self.partitions_used == other.partitions_used
            && self.utilization_bytes == other.utilization_bytes
            && self.g1_routes == other.g1_routes
            && self.g4_routes == other.g4_routes
            && self.kway_invocations == other.kway_invocations
            && self.retries == other.retries
            && self.seed == other.seed
    }
}

impl MappingStats {
    /// Utilization in megabytes (the Figure 8 metric).
    pub fn utilization_mb(&self) -> f64 {
        self.utilization_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A compiled automaton: the loadable bitstream plus mapping metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAutomaton {
    /// The fabric image.
    pub bitstream: Bitstream,
    /// Mapping statistics.
    pub stats: MappingStats,
    /// For every NFA state: its (partition, column) placement.
    pub state_map: Vec<(u32, u8)>,
}

impl CompiledAutomaton {
    /// Instantiates a fabric simulator for this image.
    ///
    /// # Errors
    ///
    /// Propagates bitstream validation failures (cannot happen for images
    /// produced by [`compile`]).
    pub fn fabric(&self) -> Result<Fabric, ca_sim::BitstreamError> {
        Fabric::new(&self.bitstream)
    }

    /// Physical location of an NFA state.
    pub fn location_of(&self, state: ca_automata::StateId) -> PartitionLocation {
        let (pid, _) = self.state_map[state.index()];
        self.bitstream.partitions[pid as usize].location
    }
}

/// Compiles a homogeneous NFA to a Cache Automaton bitstream.
///
/// Equivalent to running [`Pipeline::standard`]; use the pipeline API
/// directly to customise passes or the retry schedule.
///
/// # Errors
///
/// * [`CompileError::InvalidAutomaton`] for malformed inputs;
/// * [`CompileError::CapacityExceeded`] when the geometry is too small;
/// * [`CompileError::RoutingInfeasible`] when connectivity constraints
///   cannot be met even after split-refinement retries.
pub fn compile(nfa: &HomNfa, opts: &CompilerOptions) -> Result<CompiledAutomaton, CompileError> {
    Pipeline::standard().run(nfa, opts)
}

/// [`compile`] with pipeline events (per-pass span timings, retry and
/// compilation counters, mapping-size gauges) routed to `telemetry`.
///
/// The spans carry the very same millisecond measurements recorded in
/// [`MappingStats::timings`], so a sink's totals reconcile exactly with
/// the returned stats.
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with_telemetry(
    nfa: &HomNfa,
    opts: &CompilerOptions,
    telemetry: &ca_telemetry::Telemetry,
) -> Result<CompiledAutomaton, CompileError> {
    Pipeline::standard().with_telemetry(telemetry.clone()).run(nfa, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::engine::{Engine, SparseEngine};
    use ca_automata::regex::compile_patterns;
    use ca_automata::{CharClass, ReportCode, StartKind};

    fn assert_fabric_matches_cpu(nfa: &HomNfa, compiled: &CompiledAutomaton, input: &[u8]) {
        let mut cpu = SparseEngine::new(nfa);
        let mut fabric = compiled.fabric().unwrap();
        let mut expect = cpu.run(input);
        let mut got = fabric.run(input).events;
        expect.sort();
        got.sort();
        assert_eq!(expect, got);
    }

    #[test]
    fn small_dictionary_compiles_to_one_partition() {
        let nfa = compile_patterns(&["bat", "bar", "bart", "car", "cat", "cart"]).unwrap();
        let c = compile(&nfa, &CompilerOptions::default()).unwrap();
        assert_eq!(c.stats.partitions_used, 1);
        assert_eq!(c.stats.g1_routes + c.stats.g4_routes, 0);
        assert_eq!(c.stats.utilization_bytes, 8192);
        assert_fabric_matches_cpu(&nfa, &c, b"the cart hit a bat near the bar");
    }

    /// A 700-state chain must split across partitions and route via G1.
    #[test]
    fn long_chain_routes_across_partitions() {
        let mut nfa = HomNfa::new();
        let mut prev = None;
        let n = 700;
        for i in 0..n {
            let start = if i == 0 { StartKind::AllInput } else { StartKind::None };
            let report = if i == n - 1 { Some(ReportCode(0)) } else { None };
            let id = nfa.add_state_full(CharClass::byte(b'a'), start, report);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
        let c = compile(&nfa, &CompilerOptions::default()).unwrap();
        assert!(c.stats.partitions_used >= 3);
        assert!(c.stats.g1_routes > 0, "chain must cross partitions");
        let input: Vec<u8> = vec![b'a'; 800];
        assert_fabric_matches_cpu(&nfa, &c, &input);
    }

    #[test]
    fn capacity_error_on_tiny_geometry() {
        let patterns: Vec<String> = (0..600).map(|i| format!("pattern{i:04}x")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        // 600 x 12 = 7200 states won't fit one CA_P way... use 1 slice but
        // shrink to make the point deterministic: 1 slice CA_P = 16K STEs,
        // so use enough patterns to overflow: actually overflow partitions
        // by requiring more partitions than available after packing.
        let opts = CompilerOptions { slices: 1, ..Default::default() };
        // 7200 states / 256 = 29 partitions -> fits 64. Grow the input:
        let many: Vec<String> = (0..1500).map(|i| format!("pattern{i:05}xyz")).collect();
        let refs2: Vec<&str> = many.iter().map(String::as_str).collect();
        let nfa2 = compile_patterns(&refs2).unwrap();
        // 1500 x 15 = 22500 states > 16384
        let err = compile(&nfa2, &opts).unwrap_err();
        assert!(matches!(err, CompileError::CapacityExceeded { .. }), "{err}");
        // the smaller one still compiles
        assert!(compile(&nfa, &opts).is_ok());
    }

    #[test]
    fn empty_automaton_compiles_empty() {
        let c = compile(&HomNfa::new(), &CompilerOptions::default()).unwrap();
        assert_eq!(c.stats.partitions_used, 0);
        assert_eq!(c.bitstream.ste_count(), 0);
    }

    #[test]
    fn space_design_compiles_wide_fanout() {
        // a star automaton: one hub fanning out to 600 states; space design
        // splits it across ways within a slice.
        let mut nfa = HomNfa::new();
        let hub = nfa.add_state_full(CharClass::byte(b'h'), StartKind::AllInput, None);
        for _ in 0..4500 {
            let leaf =
                nfa.add_state_full(CharClass::byte(b'x'), StartKind::None, Some(ReportCode(1)));
            nfa.add_edge(hub, leaf);
        }
        let opts = CompilerOptions::for_design(DesignKind::Space);
        let c = compile(&nfa, &opts).unwrap();
        assert!(c.stats.partitions_used >= 18);
        assert_fabric_matches_cpu(&nfa, &c, b"hxhxxxhhx");
    }

    #[test]
    fn deterministic_output() {
        let nfa = compile_patterns(&["aaa", "bbb", "ab.*ba"]).unwrap();
        let a = compile(&nfa, &CompilerOptions::default()).unwrap();
        let b = compile(&nfa, &CompilerOptions::default()).unwrap();
        assert_eq!(a.bitstream, b.bitstream);
    }

    #[test]
    fn location_lookup() {
        let nfa = compile_patterns(&["xy"]).unwrap();
        let c = compile(&nfa, &CompilerOptions::default()).unwrap();
        let loc = c.location_of(ca_automata::StateId(0));
        assert_eq!(loc, c.bitstream.partitions[0].location);
    }

    #[test]
    fn utilization_counts_whole_partitions() {
        // 300 states -> 2 partitions -> 16 KB even though 300*32B < 10KB.
        let patterns: Vec<String> = (0..30).map(|i| format!("{:b>8}{i:02}", "")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        assert_eq!(nfa.len(), 300);
        let c = compile(&nfa, &CompilerOptions::default()).unwrap();
        assert_eq!(c.stats.partitions_used, 2);
        assert_eq!(c.stats.utilization_bytes, 16384);
        assert!((c.stats.utilization_mb() - 16384.0 / 1048576.0).abs() < 1e-12);
    }
}
