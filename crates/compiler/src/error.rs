//! Compiler errors.

use std::fmt;

/// Failures of the mapping compiler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The automaton needs more partitions than the configured cache
    /// geometry provides.
    CapacityExceeded {
        /// Partitions the mapping would need.
        needed: usize,
        /// Partitions available in the geometry.
        available: usize,
    },
    /// A connected component cannot be routed under the switch topology
    /// (e.g. larger than one way on the performance design, or its
    /// cross-partition edges exceed the G-switch port budget even after
    /// re-partitioning).
    RoutingInfeasible {
        /// Index of the offending connected component.
        component: usize,
        /// States in the component.
        states: usize,
        /// Human-readable constraint description.
        reason: String,
    },
    /// The input automaton failed validation.
    InvalidAutomaton(String),
    /// The produced bitstream failed validation (compiler bug guard).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CapacityExceeded { needed, available } => write!(
                f,
                "automaton needs {needed} partitions but the geometry provides {available}"
            ),
            CompileError::RoutingInfeasible { component, states, reason } => write!(
                f,
                "connected component {component} ({states} states) cannot be routed: {reason}"
            ),
            CompileError::InvalidAutomaton(msg) => write!(f, "invalid automaton: {msg}"),
            CompileError::Internal(msg) => write!(f, "internal compiler error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ca_automata::Error> for CompileError {
    fn from(e: ca_automata::Error) -> CompileError {
        CompileError::InvalidAutomaton(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CompileError::CapacityExceeded { needed: 100, available: 64 };
        assert!(e.to_string().contains("100"));
        let e = CompileError::RoutingInfeasible {
            component: 3,
            states: 999,
            reason: "too many exports".into(),
        };
        assert!(e.to_string().contains("999"));
        assert!(!CompileError::Internal("x".into()).to_string().is_empty());
    }
}
