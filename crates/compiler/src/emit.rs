//! Bitstream emission: configured partition images, switch cross-points and
//! global routes.

use crate::error::CompileError;
use crate::plan::LogicalPlan;
use ca_automata::{HomNfa, StartKind};
use ca_sim::{
    Bitstream, CacheGeometry, DesignKind, Mask256, PartitionImage, PartitionLocation, Route,
    RouteVia,
};
use std::collections::BTreeMap;

/// Emits the bitstream and the state → (partition, column) map.
///
/// # Errors
///
/// [`CompileError::RoutingInfeasible`] when a partition's global-switch
/// export or import port budget is exceeded (the pipeline retries with a
/// finer split), [`CompileError::Internal`] if placement produced
/// unroutable pairs.
pub fn emit(
    nfa: &HomNfa,
    plan: &LogicalPlan,
    locations: &[PartitionLocation],
    geom: &CacheGeometry,
    design: DesignKind,
) -> Result<(Bitstream, Vec<(u32, u8)>), CompileError> {
    let per_partition = plan.partition_states();
    // state -> (partition, column)
    let mut state_map: Vec<(u32, u8)> = vec![(0, 0); nfa.len()];
    for (pid, states) in per_partition.iter().enumerate() {
        for (col, &s) in states.iter().enumerate() {
            state_map[s as usize] = (pid as u32, col as u8);
        }
    }

    // partition images
    let mut images: Vec<PartitionImage> = Vec::with_capacity(plan.partitions);
    for (pid, states) in per_partition.iter().enumerate() {
        let mut img = PartitionImage::new(locations[pid]);
        for &s in states {
            let st = nfa.state(ca_automata::StateId(s));
            let col = img.labels.len() as u8;
            img.labels.push(st.label);
            img.local.push(Mask256::ZERO);
            match st.start {
                StartKind::AllInput => img.start_all.set(col),
                StartKind::StartOfData => img.start_sod.set(col),
                StartKind::None => {}
            }
            if let Some(code) = st.report {
                img.reports.push((col, code));
            }
        }
        images.push(img);
    }

    // edges: local cross-points and cross-partition signal aggregation
    // key: (src_pid, src_col, via, dst_pid) -> destination mask
    let mut cross: BTreeMap<(u32, u8, u8, u32), Mask256> = BTreeMap::new();
    for (sid, _) in nfa.iter() {
        let (sp, sc) = state_map[sid.index()];
        for &t in nfa.successors(sid) {
            let (dp, dc) = state_map[t.index()];
            if sp == dp {
                images[sp as usize].local[sc as usize].set(dc);
                continue;
            }
            let (sloc, dloc) = (locations[sp as usize], locations[dp as usize]);
            let via = if sloc.same_way(&dloc) {
                0u8 // G1
            } else if sloc.same_g4_group(&dloc, geom) {
                1u8 // G4
            } else {
                return Err(CompileError::Internal(format!(
                    "placement left unroutable pair {sloc} -> {dloc}"
                )));
            };
            cross.entry((sp, sc, via, dp)).or_insert(Mask256::ZERO).set(dc);
        }
    }

    // import-port allocation: signals with the same destination mask and
    // switch tier share a port (the G-switch ORs them).
    // per dst partition: Vec<(via, mask_words)> in port order
    let mut ports: Vec<Vec<(u8, [u64; 4])>> = vec![Vec::new(); plan.partitions];
    let mut routes: Vec<Route> = Vec::new();
    for (&(sp, sc, via, dp), mask) in &cross {
        let words = mask.to_words();
        let plist = &mut ports[dp as usize];
        let port = match plist.iter().position(|&(v, w)| v == via && w == words) {
            Some(i) => i as u8,
            None => {
                plist.push((via, words));
                (plist.len() - 1) as u8
            }
        };
        routes.push(Route {
            src_partition: sp,
            src_ste: sc,
            via: if via == 0 { RouteVia::G1 } else { RouteVia::G4 },
            dst_partition: dp,
            dst_port: port,
        });
    }

    // budget checks: imports per via, exports per via
    for (pid, plist) in ports.iter().enumerate() {
        let g1 = plist.iter().filter(|(v, _)| *v == 0).count();
        let g4 = plist.iter().filter(|(v, _)| *v == 1).count();
        if g1 > geom.g1_ports || g4 > geom.g4_ports {
            return Err(CompileError::RoutingInfeasible {
                component: plan.cluster[pid] as usize,
                states: per_partition[pid].len(),
                reason: format!(
                    "partition {pid} needs {g1} G1 / {g4} G4 import ports \
                     (budget {}/{})",
                    geom.g1_ports, geom.g4_ports
                ),
            });
        }
        images[pid].import_dest = plist.iter().map(|&(_, w)| Mask256::from_words(w)).collect();
    }
    let mut exports: BTreeMap<(u32, u8), std::collections::BTreeSet<u8>> = BTreeMap::new();
    for r in &routes {
        let via = if r.via == RouteVia::G1 { 0u8 } else { 1 };
        exports.entry((r.src_partition, via)).or_default().insert(r.src_ste);
    }
    for (&(pid, via), stes) in &exports {
        let budget = if via == 0 { geom.g1_ports } else { geom.g4_ports };
        if stes.len() > budget {
            return Err(CompileError::RoutingInfeasible {
                component: plan.cluster[pid as usize] as usize,
                states: per_partition[pid as usize].len(),
                reason: format!(
                    "partition {pid} exports {} STEs via {} (budget {budget})",
                    stes.len(),
                    if via == 0 { "G1" } else { "G4" },
                ),
            });
        }
    }

    // Full architectural validation is the Validate pass's job
    // (`pipeline::ValidatePass`); emit only enforces the port budgets it
    // can still do something about (they drive the retry policy).
    let bitstream = Bitstream { design, geometry: *geom, partitions: images, routes };
    Ok((bitstream, state_map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use ca_automata::analysis::connected_components;
    use ca_automata::regex::compile_patterns;

    fn trivial_place(n: usize, geom: &CacheGeometry) -> Vec<PartitionLocation> {
        (0..n).map(|i| PartitionLocation::from_index(geom, i)).collect()
    }

    #[test]
    fn single_partition_emission() {
        let nfa = compile_patterns(&["cat", "dog"]).unwrap();
        let cc = connected_components(&nfa);
        let p = plan(
            &nfa,
            &cc,
            0,
            &crate::plan::PortBudget { same_way: 16, cross_way: 8, way_states: 2048 },
            1,
        )
        .unwrap();
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        let locs = trivial_place(p.partitions, &geom);
        let (bs, map) = emit(&nfa, &p, &locs, &geom, DesignKind::Performance).unwrap();
        assert_eq!(bs.partitions.len(), 1);
        assert!(bs.routes.is_empty());
        assert_eq!(bs.ste_count(), 6);
        assert_eq!(map.len(), 6);
        // every state mapped to a unique column
        let set: std::collections::HashSet<_> = map.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn cross_partition_routes_share_import_ports_by_mask() {
        use crate::plan::LogicalPlan;
        use ca_automata::{CharClass, HomNfa, ReportCode, StartKind};
        // Two source states in partition 0 target the SAME state in
        // partition 1 -> identical dest masks -> one shared import port.
        // A third source targets a different state -> second port.
        let mut nfa = HomNfa::new();
        let a = nfa.add_state_full(CharClass::byte(b'a'), StartKind::AllInput, None);
        let b = nfa.add_state_full(CharClass::byte(b'b'), StartKind::AllInput, None);
        let c = nfa.add_state_full(CharClass::byte(b'c'), StartKind::AllInput, None);
        let x = nfa.add_state_full(CharClass::byte(b'x'), StartKind::None, Some(ReportCode(0)));
        let y = nfa.add_state_full(CharClass::byte(b'y'), StartKind::None, Some(ReportCode(1)));
        nfa.add_edge(a, x);
        nfa.add_edge(b, x);
        nfa.add_edge(c, y);
        // force a split: {a,b,c} and {x,y} in different partitions
        let plan = LogicalPlan {
            assignment: vec![0, 0, 0, 1, 1],
            partitions: 2,
            cluster: vec![0, 0],
            kway_invocations: 0,
        };
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        let locs = trivial_place(2, &geom); // same way -> G1
        let (bs, _) = emit(&nfa, &plan, &locs, &geom, DesignKind::Performance).unwrap();
        assert_eq!(bs.routes.len(), 3, "one route per (src ste, dst)");
        assert!(bs.routes.iter().all(|r| r.via == RouteVia::G1));
        // ports: {x} shared by a,b; {y} for c -> 2 ports at partition 1
        assert_eq!(bs.partitions[1].import_dest.len(), 2);
        // behaviour check through the fabric
        use ca_automata::engine::{Engine, SparseEngine};
        let mut fabric = ca_sim::Fabric::new(&bs).unwrap();
        for input in [b"ax".as_slice(), b"bx", b"cy", b"cx", b"ay"] {
            let mut expect = SparseEngine::new(&nfa).run(input);
            let mut got = fabric.run(input).events;
            expect.sort();
            got.sort();
            assert_eq!(expect, got, "{input:?}");
        }
    }

    #[test]
    fn start_and_report_bits_land() {
        let nfa = compile_patterns(&["ab"]).unwrap();
        let cc = connected_components(&nfa);
        let p = plan(
            &nfa,
            &cc,
            0,
            &crate::plan::PortBudget { same_way: 16, cross_way: 8, way_states: 2048 },
            1,
        )
        .unwrap();
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        let locs = trivial_place(p.partitions, &geom);
        let (bs, map) = emit(&nfa, &p, &locs, &geom, DesignKind::Performance).unwrap();
        let img = &bs.partitions[0];
        let (_, col_a) = map[0];
        let (_, col_b) = map[1];
        assert!(img.start_all.get(col_a));
        assert!(!img.start_all.get(col_b));
        assert_eq!(img.reports.len(), 1);
        assert_eq!(img.reports[0].0, col_b);
        // edge a -> b present in the local switch
        assert!(img.local[col_a as usize].get(col_b));
    }
}
