//! Logical planning: connected components → 256-STE logical partitions.
//!
//! Implements §3.2 of the paper: connected components are atomic mapping
//! units; components that fit a partition are bin-packed (several per
//! partition when possible); oversized components are split k ways with the
//! multilevel partitioner so that cross-partition transitions are minimized.
//!
//! Beyond raw edge cut, the hardware constrains *ports*: at most 16 STEs of
//! a partition may export through the per-way G-switch and only 16 import
//! wires exist (8 more via G-switch-4). The planner therefore scores each
//! candidate split by its port pressure and searches a few partitioner
//! seeds and split factors for one that fits — mirroring the paper's
//! observation that METIS keeps inter-partition transitions under 16.

use crate::error::CompileError;
use ca_automata::analysis::Components;
use ca_automata::HomNfa;
use ca_partition::{partition_kway, Graph, PartitionOptions};
use ca_sim::STES_PER_PARTITION;
use std::collections::{BTreeMap, BTreeSet};

/// The state → logical-partition mapping plus cluster structure.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// `assignment[state]` = logical partition index.
    pub assignment: Vec<u32>,
    /// Number of logical partitions.
    pub partitions: usize,
    /// `cluster[p]` = cluster id of logical partition `p`; the parts of one
    /// split component share a cluster and must be placed routably.
    pub cluster: Vec<u32>,
    /// How many k-way partitioner invocations planning needed.
    pub kway_invocations: usize,
}

impl LogicalPlan {
    /// States assigned to each logical partition, ascending state ids.
    pub fn partition_states(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.partitions];
        for (s, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(s as u32);
        }
        out
    }
}

/// Worst-case port pressure of a candidate split of one component:
/// `(max exporting STEs per part, max import wire groups per part)`.
fn port_pressure(edges: &[(u32, u32)], assignment: &[u32], parts: usize) -> (usize, usize) {
    let mut exports: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); parts];
    // per destination part: the set of distinct destination groups; two
    // sources can share an import wire iff they activate the same set.
    let mut dest_sets: BTreeMap<(u32, u32), BTreeSet<u32>> = BTreeMap::new();
    for &(s, t) in edges {
        let (a, b) = (assignment[s as usize], assignment[t as usize]);
        if a == b {
            continue;
        }
        exports[a as usize].insert(s);
        dest_sets.entry((b, s)).or_default().insert(t);
    }
    let mut imports: Vec<BTreeSet<Vec<u32>>> = vec![BTreeSet::new(); parts];
    for ((b, _src), dests) in dest_sets {
        imports[b as usize].insert(dests.into_iter().collect());
    }
    (
        exports.iter().map(BTreeSet::len).max().unwrap_or(0),
        imports.iter().map(BTreeSet::len).max().unwrap_or(0),
    )
}

/// Per-part port usage: `(exports[p], imports[p])`.
fn port_usage(
    edges: &[(u32, u32)],
    assignment: &[u32],
    parts: usize,
) -> (Vec<BTreeSet<u32>>, Vec<BTreeSet<Vec<u32>>>) {
    let mut exports: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); parts];
    let mut dest_sets: BTreeMap<(u32, u32), BTreeSet<u32>> = BTreeMap::new();
    for &(s, t) in edges {
        let (a, b) = (assignment[s as usize], assignment[t as usize]);
        if a == b {
            continue;
        }
        exports[a as usize].insert(s);
        dest_sets.entry((b, s)).or_default().insert(t);
    }
    let mut imports: Vec<BTreeSet<Vec<u32>>> = vec![BTreeSet::new(); parts];
    for ((b, _src), dests) in dest_sets {
        imports[b as usize].insert(dests.into_iter().collect());
    }
    (exports, imports)
}

/// Total port-budget violation of an assignment.
fn port_violation(edges: &[(u32, u32)], assignment: &[u32], parts: usize, budget: usize) -> usize {
    let (exports, imports) = port_usage(edges, assignment, parts);
    exports
        .iter()
        .map(|e| e.len().saturating_sub(budget))
        .chain(imports.iter().map(|i| i.len().saturating_sub(budget)))
        .sum()
}

/// Greedy local repair: move boundary states between parts to bring port
/// usage under budget without overflowing the part capacity. Returns `true`
/// when the violation reaches zero.
fn repair_ports(
    edges: &[(u32, u32)],
    assignment: &mut [u32],
    parts: usize,
    capacity: usize,
    budget: usize,
) -> bool {
    let n = assignment.len();
    // adjacency (undirected view) for candidate targets
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(s, t) in edges {
        adj[s as usize].push(t);
        adj[t as usize].push(s);
    }
    let mut sizes = vec![0usize; parts];
    for &a in assignment.iter() {
        sizes[a as usize] += 1;
    }
    let mut current = port_violation(edges, assignment, parts, budget);
    for _round in 0..48 {
        if current == 0 {
            return true;
        }
        let (exports, imports) = port_usage(edges, assignment, parts);
        // candidate movers: exporters of over-budget parts plus states
        // inside over-budget importers' source sets (approximated by all
        // boundary states touching those parts).
        let mut candidates: BTreeSet<u32> = BTreeSet::new();
        for p in 0..parts {
            if exports[p].len() > budget {
                candidates.extend(exports[p].iter().copied());
            }
            if imports[p].len() > budget {
                for &(s, t) in edges {
                    if assignment[t as usize] == p as u32 && assignment[s as usize] != p as u32 {
                        candidates.insert(s);
                        candidates.insert(t);
                    }
                }
            }
        }
        let mut best: Option<(usize, u32, u32)> = None; // (violation, state, target)
        for &s in &candidates {
            let from = assignment[s as usize];
            let mut targets: BTreeSet<u32> = adj[s as usize]
                .iter()
                .map(|&u| assignment[u as usize])
                .filter(|&p| p != from)
                .collect();
            targets.remove(&from);
            for &to in &targets {
                if sizes[to as usize] + 1 > capacity {
                    continue;
                }
                assignment[s as usize] = to;
                let v = port_violation(edges, assignment, parts, budget);
                assignment[s as usize] = from;
                if v < current && best.as_ref().is_none_or(|(bv, _, _)| v < *bv) {
                    best = Some((v, s, to));
                }
            }
        }
        match best {
            Some((v, s, to)) => {
                let from = assignment[s as usize];
                sizes[from as usize] -= 1;
                sizes[to as usize] += 1;
                assignment[s as usize] = to;
                current = v;
            }
            None => break,
        }
    }
    current == 0
}

/// Splits one oversized component, searching split factors and seeds for a
/// balanced, port-feasible partitioning. Returns the local assignment.
fn split_component(
    graph: &Graph,
    edges: &[(u32, u32)],
    size: usize,
    extra_parts: usize,
    budget: &PortBudget,
    seed: u64,
    kway_invocations: &mut usize,
) -> Option<Vec<u32>> {
    // A component bigger than a way must route some pairs through the
    // cross-way switch, whose import budget is tighter (8 wires vs 16);
    // score candidates against the stricter bound in that case. The
    // emitter re-checks the real per-tier budgets either way.
    let port_budget = if size > budget.way_states && budget.cross_way > 0 {
        budget.cross_way
    } else {
        budget.same_way
    };
    let capacity = STES_PER_PARTITION;
    let base_k = size.div_ceil(capacity) + extra_parts;
    let max_k = (base_k * 2).max(base_k + 4);
    // best candidate so far: (port score, assignment)
    let mut best: Option<(usize, Vec<u32>)> = None;
    for k in base_k..=max_k {
        for attempt in 0..4u64 {
            *kway_invocations += 1;
            let opts = PartitionOptions {
                seed: seed.wrapping_add(k as u64 * 131).wrapping_add(attempt * 7919),
                epsilon: 0.03,
                ..Default::default()
            };
            let p = partition_kway(graph, k, &opts);
            let max_part = p.part_weights(graph).into_iter().max().unwrap_or(0);
            if max_part as usize > capacity {
                continue;
            }
            let (exp, imp) = port_pressure(edges, &p.assignment, k);
            let score = exp.max(imp);
            if score <= port_budget {
                return Some(p.assignment);
            }
            // near misses are usually repairable in a few moves
            if score <= port_budget + 6 {
                let mut repaired = p.assignment.clone();
                if repair_ports(edges, &mut repaired, k, capacity, port_budget) {
                    return Some(repaired);
                }
            }
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, p.assignment));
            }
        }
    }
    // No candidate met the budget outright; try greedy port repair on the
    // least-pressured candidate, then hand it back either way and let the
    // emitter's budget check (and the compile retry loop) decide.
    best.map(|(_, mut a)| {
        let parts = a.iter().map(|&x| x as usize + 1).max().unwrap_or(1);
        repair_ports(edges, &mut a, parts, capacity, port_budget);
        a
    })
}

/// Per-partition G-switch port budgets used to score candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortBudget {
    /// Import/export wires through the per-way G-switch (16).
    pub same_way: usize,
    /// Import/export wires through the cross-way G-switch (8; 0 on CA_P).
    pub cross_way: usize,
    /// States one way holds (decides when a component must span ways).
    pub way_states: usize,
}

/// Builds the logical plan.
///
/// `extra_parts` adds slack to every oversized component's initial `k`
/// (used by the compile retry loop when routing constraints bite);
/// `budget` carries the per-partition G-switch port budgets used to score
/// candidate splits.
///
/// # Errors
///
/// [`CompileError::RoutingInfeasible`] if a component cannot be balanced
/// into ≤256-state parts even with generous k.
pub fn plan(
    nfa: &HomNfa,
    cc: &Components,
    extra_parts: usize,
    budget: &PortBudget,
    seed: u64,
) -> Result<LogicalPlan, CompileError> {
    let capacity = STES_PER_PARTITION;
    let mut assignment = vec![u32::MAX; nfa.len()];
    let mut cluster: Vec<u32> = Vec::new();
    let mut next_partition = 0u32;
    let mut next_cluster = 0u32;
    let mut kway_invocations = 0usize;
    // open bins for small-component packing: (partition id, free slots);
    // seeded with the residual space of split-component partitions so a
    // split that leaves partitions 80% full costs nothing overall.
    let mut bins: Vec<(u32, usize)> = Vec::new();

    // --- large components first: balanced k-way splits -------------------
    for ci in 0..cc.len() {
        let members = &cc.components[ci];
        if members.len() <= capacity {
            continue;
        }
        let mut local = std::collections::HashMap::with_capacity(members.len());
        for (li, s) in members.iter().enumerate() {
            local.insert(s.0, li as u32);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for s in members {
            let ls = local[&s.0];
            for t in nfa.successors(*s) {
                let lt = local[&t.0];
                if ls != lt {
                    edges.push((ls, lt));
                }
            }
        }
        let weighted: Vec<(u32, u32, u32)> = edges.iter().map(|&(a, b)| (a, b, 1)).collect();
        let graph = Graph::from_edges(members.len(), &weighted);

        let Some(local_assignment) = split_component(
            &graph,
            &edges,
            members.len(),
            extra_parts,
            budget,
            seed,
            &mut kway_invocations,
        ) else {
            return Err(CompileError::RoutingInfeasible {
                component: ci,
                states: members.len(),
                reason: format!("could not balance into {capacity}-state parts"),
            });
        };
        // renumber non-empty parts densely; record residual capacity
        let max_part = local_assignment.iter().map(|&a| a as usize + 1).max().unwrap_or(1);
        let mut part_map: Vec<Option<u32>> = vec![None; max_part];
        let mut part_fill: BTreeMap<u32, usize> = BTreeMap::new();
        for (li, s) in members.iter().enumerate() {
            let part = local_assignment[li] as usize;
            let pid = match part_map[part] {
                Some(pid) => pid,
                None => {
                    let pid = next_partition;
                    next_partition += 1;
                    cluster.push(next_cluster);
                    part_map[part] = Some(pid);
                    pid
                }
            };
            *part_fill.entry(pid).or_insert(0) += 1;
            assignment[s.index()] = pid;
        }
        for (pid, fill) in part_fill {
            if capacity > fill {
                bins.push((pid, capacity - fill));
            }
        }
        next_cluster += 1;
    }

    // --- small components: first-fit-decreasing into residuals + new bins
    let mut small: Vec<usize> =
        (0..cc.len()).filter(|&i| cc.components[i].len() <= capacity).collect();
    small.sort_by_key(|&i| std::cmp::Reverse(cc.components[i].len()));
    for &ci in &small {
        let size = cc.components[ci].len();
        let slot = bins.iter_mut().find(|(_, free)| *free >= size);
        let pid = match slot {
            Some((pid, free)) => {
                *free -= size;
                *pid
            }
            None => {
                let pid = next_partition;
                next_partition += 1;
                cluster.push(next_cluster);
                next_cluster += 1;
                bins.push((pid, capacity - size));
                pid
            }
        };
        for s in &cc.components[ci] {
            assignment[s.index()] = pid;
        }
    }

    debug_assert!(assignment.iter().all(|&a| a != u32::MAX));
    Ok(LogicalPlan { assignment, partitions: next_partition as usize, cluster, kway_invocations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::analysis::connected_components;
    use ca_automata::regex::compile_patterns;
    use ca_automata::{CharClass, ReportCode, StartKind};

    fn plan16(nfa: &HomNfa, cc: &Components, extra: usize, seed: u64) -> LogicalPlan {
        let budget = PortBudget { same_way: 16, cross_way: 8, way_states: 2048 };
        plan(nfa, cc, extra, &budget, seed).unwrap()
    }

    #[test]
    fn small_components_pack_together() {
        // 10 patterns of 10 states each = 100 states -> 1 partition.
        let patterns: Vec<String> = (0..10).map(|i| format!("pat{i:06}")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        let cc = connected_components(&nfa);
        let plan = plan16(&nfa, &cc, 0, 1);
        assert_eq!(plan.partitions, 1);
        assert!(plan.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn packing_respects_capacity() {
        // 30 components x 30 states = 900 states -> 4 partitions (256 cap).
        let patterns: Vec<String> = (0..30).map(|i| format!("{:a>28}{i:02}", "")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        let cc = connected_components(&nfa);
        let plan = plan16(&nfa, &cc, 0, 1);
        assert_eq!(plan.partitions, 4);
        for states in plan.partition_states() {
            assert!(states.len() <= STES_PER_PARTITION);
        }
        // components stay whole
        for comp in &cc.components {
            let p0 = plan.assignment[comp[0].index()];
            assert!(comp.iter().all(|s| plan.assignment[s.index()] == p0));
        }
    }

    fn chain(n: u32) -> HomNfa {
        let mut nfa = HomNfa::new();
        let mut prev = None;
        for i in 0..n {
            let start = if i == 0 { StartKind::AllInput } else { StartKind::None };
            let report = if i == n - 1 { Some(ReportCode(0)) } else { None };
            let id = nfa.add_state_full(CharClass::byte(b'a'), start, report);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
        nfa
    }

    #[test]
    fn large_component_splits_balanced() {
        let nfa = chain(1000);
        let cc = connected_components(&nfa);
        let p = plan16(&nfa, &cc, 0, 1);
        assert!(p.partitions >= 4);
        for states in p.partition_states() {
            assert!(states.len() <= STES_PER_PARTITION);
            assert!(!states.is_empty());
        }
        // all parts share one cluster
        assert!(p.cluster.iter().all(|&c| c == p.cluster[0]));
        // chain cuts are near-optimal: k-1 edges for k parts; a chain's port
        // pressure is 1-2, far below budget
        let mut cross = 0;
        for (id, _) in nfa.iter() {
            for t in nfa.successors(id) {
                if p.assignment[id.index()] != p.assignment[t.index()] {
                    cross += 1;
                }
            }
        }
        assert!(cross <= 3 * p.partitions, "cross {cross} for {} parts", p.partitions);
    }

    #[test]
    fn small_components_reuse_split_residuals() {
        // a 300-state chain (2 partitions, ~150 each) + 20 small 5-state
        // components: the smalls fit in the split partitions' residual
        // space, so the total stays at 2 partitions.
        let mut nfa = chain(300);
        let patterns: Vec<String> = (0..20).map(|i| format!("zz{i:03}")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        nfa.append(&compile_patterns(&refs).unwrap());
        let cc = connected_components(&nfa);
        let p = plan16(&nfa, &cc, 0, 1);
        assert_eq!(p.partitions, 2, "smalls should pack into residuals");
    }

    #[test]
    fn extra_parts_increases_partitions() {
        let nfa = chain(500);
        let cc = connected_components(&nfa);
        let base = plan16(&nfa, &cc, 0, 1);
        let boosted = plan16(&nfa, &cc, 2, 1);
        assert!(boosted.partitions > base.partitions);
    }

    #[test]
    fn port_pressure_counts_sharable_wires() {
        // two sources in part 0 with identical dest sets in part 1 share a
        // wire; a third source with a different set needs its own.
        let edges = vec![(0u32, 10u32), (1, 10), (2, 10), (2, 11)];
        let mut assignment = vec![0u32; 12];
        for a in assignment.iter_mut().skip(10) {
            *a = 1;
        }
        let (exp, imp) = port_pressure(&edges, &assignment, 2);
        assert_eq!(exp, 3); // sources 0,1,2 all export
        assert_eq!(imp, 2); // {10} shared by 0,1; {10,11} for 2
    }
}
