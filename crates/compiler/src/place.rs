//! Physical placement: logical partitions → cache locations.
//!
//! Routing constraints (paper §2.4): partitions joined by transitions must
//! share a way (G-switch-1) or — on the space design — a slice's chained
//! G-switch-4 domain. Placement therefore keeps each split component's
//! parts within one way when they fit, otherwise groups them into ways with
//! a second level of graph partitioning (minimizing cross-way G4 traffic)
//! inside a single slice.

use crate::error::CompileError;
use crate::plan::LogicalPlan;
use ca_partition::{partition_kway, Graph, PartitionOptions};
use ca_sim::{CacheGeometry, PartitionLocation};

/// Free-slot tracker over the ways of the geometry.
struct SlotTable<'a> {
    geom: &'a CacheGeometry,
    /// used[global_way] = slots consumed
    used: Vec<usize>,
}

impl<'a> SlotTable<'a> {
    fn new(geom: &'a CacheGeometry) -> SlotTable<'a> {
        SlotTable { geom, used: vec![0; geom.slices * geom.automata_ways] }
    }

    fn way_capacity(&self) -> usize {
        self.geom.partitions_per_way()
    }

    fn free(&self, global_way: usize) -> usize {
        self.way_capacity() - self.used[global_way]
    }

    fn slice_free(&self, slice: usize) -> usize {
        (0..self.geom.automata_ways).map(|w| self.free(slice * self.geom.automata_ways + w)).sum()
    }

    /// Takes `n` slots from `global_way`, returning their locations.
    fn take(&mut self, global_way: usize, n: usize) -> Vec<PartitionLocation> {
        assert!(self.free(global_way) >= n, "way overflow");
        let slice = global_way / self.geom.automata_ways;
        let way = global_way % self.geom.automata_ways;
        let base = slice * self.geom.partitions_per_slice() + way * self.way_capacity();
        let start = self.used[global_way];
        self.used[global_way] += n;
        (start..start + n)
            .map(|slot| PartitionLocation::from_index(self.geom, base + slot))
            .collect()
    }

    fn find_way_with(&self, n: usize) -> Option<usize> {
        (0..self.used.len()).find(|&w| self.free(w) >= n)
    }
}

/// Places every logical partition, honoring cluster routability.
///
/// `quotient` lists weighted edges between logical partitions (the
/// cross-partition transition counts from the plan).
///
/// # Errors
///
/// * [`CompileError::CapacityExceeded`] when the geometry runs out of
///   partitions;
/// * [`CompileError::RoutingInfeasible`] when a cluster spans more than a
///   way on a design without G-switch-4, or more than a slice.
pub fn place(
    plan: &LogicalPlan,
    quotient: &[(u32, u32, u32)],
    geom: &CacheGeometry,
    seed: u64,
) -> Result<Vec<PartitionLocation>, CompileError> {
    if plan.partitions > geom.total_partitions() {
        return Err(CompileError::CapacityExceeded {
            needed: plan.partitions,
            available: geom.total_partitions(),
        });
    }
    let mut slots = SlotTable::new(geom);
    let mut locations: Vec<Option<PartitionLocation>> = vec![None; plan.partitions];

    // group partitions by cluster
    let cluster_count = plan.cluster.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); cluster_count];
    for (p, &c) in plan.cluster.iter().enumerate() {
        clusters[c as usize].push(p as u32);
    }
    let mut order: Vec<usize> = (0..cluster_count).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(clusters[c].len()));

    let mut singles: Vec<u32> = Vec::new();
    for &ci in &order {
        let parts = &clusters[ci];
        match parts.len() {
            0 => {}
            1 => singles.push(parts[0]),
            n if n <= slots.way_capacity() => {
                let way = slots.find_way_with(n).ok_or(CompileError::CapacityExceeded {
                    needed: plan.partitions,
                    available: geom.total_partitions(),
                })?;
                for (part, loc) in parts.iter().zip(slots.take(way, n)) {
                    locations[*part as usize] = Some(loc);
                }
            }
            n => {
                if geom.gswitch4_ways == 0 {
                    return Err(CompileError::RoutingInfeasible {
                        component: ci,
                        states: n * ca_sim::STES_PER_PARTITION,
                        reason: format!(
                            "cluster needs {n} partitions but the performance design \
                             routes only within a way ({} partitions)",
                            slots.way_capacity()
                        ),
                    });
                }
                place_slice_spanning(quotient, parts, &mut slots, &mut locations, ci, seed)?;
            }
        }
    }
    // singles anywhere, first fit
    for part in singles {
        let way = slots.find_way_with(1).ok_or(CompileError::CapacityExceeded {
            needed: plan.partitions,
            available: geom.total_partitions(),
        })?;
        locations[part as usize] = Some(slots.take(way, 1)[0]);
    }
    Ok(locations.into_iter().map(|l| l.expect("every partition placed")).collect())
}

/// Chunks a BFS order of the graph into groups of at most `chunk` vertices
/// — the always-feasible fallback grouping. Neighbors tend to land in the
/// same chunk, keeping cross-way traffic moderate.
fn bfs_chunks(graph: &Graph, chunk: usize) -> Vec<u32> {
    let n = graph.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n as u32 {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (u, _) in graph.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    let mut assign = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        assign[v as usize] = (i / chunk) as u32;
    }
    assign
}

/// Places a cluster larger than a way: group its parts into way-sized
/// chunks (minimizing cross-way edges) and put all chunks in one slice.
fn place_slice_spanning(
    quotient: &[(u32, u32, u32)],
    parts: &[u32],
    slots: &mut SlotTable<'_>,
    locations: &mut [Option<PartitionLocation>],
    cluster_idx: usize,
    seed: u64,
) -> Result<(), CompileError> {
    let geom = slots.geom;
    let n = parts.len();
    let ppw = slots.way_capacity();
    if n > geom.partitions_per_slice() {
        return Err(CompileError::RoutingInfeasible {
            component: cluster_idx,
            states: n * ca_sim::STES_PER_PARTITION,
            reason: format!(
                "cluster needs {n} partitions but a slice's G4 domain holds {}",
                geom.partitions_per_slice()
            ),
        });
    }
    // quotient subgraph over this cluster's parts
    let mut local = std::collections::HashMap::new();
    for (i, &p) in parts.iter().enumerate() {
        local.insert(p, i as u32);
    }
    let edges: Vec<(u32, u32, u32)> = quotient
        .iter()
        .filter_map(|&(a, b, w)| match (local.get(&a), local.get(&b)) {
            (Some(&la), Some(&lb)) if la != lb => Some((la, lb, w)),
            _ => None,
        })
        .collect();
    let graph = Graph::from_edges(n, &edges);
    // Group parts into exactly ceil(n/ppw) way-sized groups: more groups
    // than that cannot bin-pack into the slice's ways once the group sizes
    // exceed half a way. Try a few partitioner seeds for a balanced cut;
    // if none lands within the way capacity, fall back to chunking a BFS
    // order of the quotient graph (always feasible, decent locality).
    let n_groups = n.div_ceil(ppw);
    let mut groups_assign: Option<Vec<u32>> = None;
    if n_groups < n {
        for attempt in 0..6u64 {
            let p = partition_kway(
                &graph,
                n_groups,
                &PartitionOptions {
                    seed: seed.wrapping_add(attempt * 6151 + 1),
                    epsilon: 0.02,
                    ..Default::default()
                },
            );
            let max = p.part_weights(&graph).into_iter().max().unwrap_or(0) as usize;
            if max <= ppw {
                groups_assign = Some(p.assignment);
                break;
            }
        }
    }
    let groups_assign = groups_assign.unwrap_or_else(|| bfs_chunks(&graph, ppw));
    let group_count = groups_assign.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); group_count];
    for (i, &g) in groups_assign.iter().enumerate() {
        groups[g as usize].push(parts[i]);
    }
    groups.retain(|g| !g.is_empty());
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    debug_assert!(groups.iter().all(|g| g.len() <= ppw));

    // find a slice where each group fits a way
    'slices: for slice in 0..geom.slices {
        if slots.slice_free(slice) < n {
            continue;
        }
        let base_way = slice * geom.automata_ways;
        let snapshot = slots.used.clone();
        let mut placed: Vec<(u32, PartitionLocation)> = Vec::new();
        for group in &groups {
            let way = (0..geom.automata_ways)
                .map(|w| base_way + w)
                .find(|&w| slots.free(w) >= group.len());
            let Some(way) = way else {
                slots.used = snapshot; // rollback and try the next slice
                continue 'slices;
            };
            for (part, loc) in group.iter().zip(slots.take(way, group.len())) {
                placed.push((*part, loc));
            }
        }
        for (part, loc) in placed {
            locations[part as usize] = Some(loc);
        }
        return Ok(());
    }
    Err(CompileError::RoutingInfeasible {
        component: cluster_idx,
        states: n * ca_sim::STES_PER_PARTITION,
        reason: "no slice has room for the cluster's way groups".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_sim::DesignKind;

    fn plan_of(partitions: usize, cluster: Vec<u32>) -> LogicalPlan {
        LogicalPlan { assignment: Vec::new(), partitions, cluster, kway_invocations: 0 }
    }

    #[test]
    fn singles_fill_first_fit() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        let plan = plan_of(3, vec![0, 1, 2]);
        let locs = place(&plan, &[], &geom, 1).unwrap();
        assert_eq!(locs.len(), 3);
        // all distinct
        let set: std::collections::HashSet<_> = locs.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn cluster_stays_in_one_way() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        // 5 parts in one cluster (way capacity is 8)
        let plan = plan_of(5, vec![0; 5]);
        let locs = place(&plan, &[], &geom, 1).unwrap();
        assert!(locs.iter().all(|l| l.same_way(&locs[0])), "{locs:?}");
    }

    #[test]
    fn performance_design_rejects_way_overflow() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        // 9 parts > 8 per way, no G4 on CA_P
        let plan = plan_of(9, vec![0; 9]);
        let err = place(&plan, &[], &geom, 1).unwrap_err();
        assert!(matches!(err, CompileError::RoutingInfeasible { .. }), "{err}");
    }

    #[test]
    fn space_design_spans_ways_within_slice() {
        let geom = CacheGeometry::for_design(DesignKind::Space, 1);
        // 20 parts > 16 per way: needs 2 ways, fine on CA_S
        // quotient: a chain 0-1-2-...-19
        let quotient: Vec<(u32, u32, u32)> = (0..19u32).map(|i| (i, i + 1, 4)).collect();
        let plan = plan_of(20, vec![0; 20]);
        let locs = place(&plan, &quotient, &geom, 1).unwrap();
        // all in one slice
        assert!(locs.iter().all(|l| l.slice == locs[0].slice));
        // at most 16 per way
        let mut per_way = std::collections::HashMap::new();
        for l in &locs {
            *per_way.entry(l.way).or_insert(0usize) += 1;
        }
        assert!(per_way.values().all(|&n| n <= 16));
        assert_eq!(per_way.len(), 2);
    }

    #[test]
    fn capacity_exceeded() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1); // 64 partitions
        let plan = plan_of(65, (0..65).collect());
        let err = place(&plan, &[], &geom, 1).unwrap_err();
        assert!(matches!(err, CompileError::CapacityExceeded { needed: 65, available: 64 }));
    }

    #[test]
    fn slice_domain_overflow_rejected() {
        let geom = CacheGeometry::for_design(DesignKind::Space, 2);
        // one cluster bigger than a slice (128 partitions)
        let plan = plan_of(129, vec![0; 129]);
        let err = place(&plan, &[], &geom, 1).unwrap_err();
        assert!(matches!(err, CompileError::RoutingInfeasible { .. }), "{err}");
    }

    #[test]
    fn bfs_chunks_is_total_and_bounded() {
        // a 7-vertex path chunked by 3: groups {0,1,2},{3,4,5},{6}
        let edges: Vec<(u32, u32, u32)> = (0..6u32).map(|i| (i, i + 1, 1)).collect();
        let g = Graph::from_edges(7, &edges);
        let assign = bfs_chunks(&g, 3);
        assert_eq!(assign.len(), 7);
        let mut counts = std::collections::HashMap::new();
        for &a in &assign {
            *counts.entry(a).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 3));
        assert_eq!(counts.len(), 3);
        // BFS locality: path neighbors mostly share chunks
        assert_eq!(assign[0], assign[1]);
        // disconnected graph still covered
        let g = Graph::from_edges(5, &[]);
        let assign = bfs_chunks(&g, 2);
        assert_eq!(assign.iter().map(|&a| a as usize + 1).max(), Some(3));
    }

    #[test]
    fn mixed_clusters_and_singles() {
        let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
        // cluster of 6 + cluster of 4 + 3 singles = 13 partitions
        let mut cluster = vec![0; 6];
        cluster.extend([1; 4]);
        cluster.extend([2, 3, 4]);
        let plan = plan_of(13, cluster);
        let locs = place(&plan, &[], &geom, 1).unwrap();
        assert!(locs[0..6].iter().all(|l| l.same_way(&locs[0])));
        assert!(locs[6..10].iter().all(|l| l.same_way(&locs[6])));
        let set: std::collections::HashSet<_> = locs.iter().collect();
        assert_eq!(set.len(), 13);
    }
}
