//! End-to-end differential property tests: for any well-formed automaton,
//! the compiled fabric must produce exactly the CPU engines' match stream.

use ca_automata::engine::{Engine, SparseEngine};
use ca_automata::{CharClass, HomNfa, ReportCode, StartKind, StateId};
use ca_compiler::{compile, CompilerOptions};
use ca_sim::DesignKind;
use proptest::prelude::*;

/// Random automata sized to span multiple partitions now and then.
fn nfa_strategy(max_states: usize) -> impl Strategy<Value = HomNfa> {
    let state = (
        prop::collection::vec(prop::sample::select(b"abcd".to_vec()), 1..4),
        0..3u8,
        prop::bool::weighted(0.2),
    );
    prop::collection::vec(state, 1..max_states).prop_flat_map(|specs| {
        let n = specs.len();
        let edges = prop::collection::vec((0..n, 0..n), 0..n * 2);
        (Just(specs), edges).prop_map(|(specs, edges)| {
            let mut nfa = HomNfa::new();
            for (i, (bytes, start_sel, report)) in specs.iter().enumerate() {
                let start = match start_sel {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let report = if *report { Some(ReportCode(i as u32)) } else { None };
                nfa.add_state_full(CharClass::of(bytes), start, report);
            }
            for (a, b) in edges {
                nfa.add_edge(StateId(a as u32), StateId(b as u32));
            }
            if nfa.start_states().is_empty() {
                nfa.state_mut(StateId(0)).start = StartKind::AllInput;
            }
            if nfa.reporting_states().is_empty() {
                nfa.state_mut(StateId(0)).report = Some(ReportCode(500));
            }
            nfa
        })
    })
}

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abcde".to_vec()), 0..80)
}

fn check_equivalence(nfa: &HomNfa, design: DesignKind, input: &[u8]) -> Result<(), TestCaseError> {
    let compiled = compile(nfa, &CompilerOptions::for_design(design))
        .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
    let mut cpu = SparseEngine::new(nfa);
    let mut fabric = compiled.fabric().expect("compiled bitstream is valid");
    let mut expect = cpu.run(input);
    let mut got = fabric.run(input).events;
    expect.sort();
    got.sort();
    prop_assert_eq!(expect, got);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fabric == CPU on the performance design (small automata, packed).
    #[test]
    fn fabric_matches_cpu_performance(nfa in nfa_strategy(48), input in input_strategy()) {
        check_equivalence(&nfa, DesignKind::Performance, &input)?;
    }

    /// Fabric == CPU on the space design.
    #[test]
    fn fabric_matches_cpu_space(nfa in nfa_strategy(48), input in input_strategy()) {
        check_equivalence(&nfa, DesignKind::Space, &input)?;
    }

    /// Compiled mapping is a bijection onto occupied columns and the stats
    /// are mutually consistent.
    #[test]
    fn mapping_is_consistent(nfa in nfa_strategy(64)) {
        let compiled = compile(&nfa, &CompilerOptions::default())
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        prop_assert_eq!(compiled.state_map.len(), nfa.len());
        let mut seen = std::collections::HashSet::new();
        for &(pid, col) in &compiled.state_map {
            prop_assert!((pid as usize) < compiled.bitstream.partitions.len());
            let img = &compiled.bitstream.partitions[pid as usize];
            prop_assert!((col as usize) < img.labels.len());
            prop_assert!(seen.insert((pid, col)), "column double-booked");
        }
        prop_assert_eq!(compiled.bitstream.ste_count(), nfa.len());
        prop_assert_eq!(
            compiled.stats.g1_routes + compiled.stats.g4_routes,
            compiled.bitstream.routes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Larger multi-partition automata (chains with random shortcuts) stay
    /// equivalent across the partition boundary routing.
    #[test]
    fn fabric_matches_cpu_multi_partition(
        shortcuts in prop::collection::vec((0usize..600, 0usize..600), 0..40),
        input in prop::collection::vec(prop::sample::select(b"ab".to_vec()), 0..120),
    ) {
        let mut nfa = HomNfa::new();
        let n = 600;
        let mut prev: Option<StateId> = None;
        for i in 0..n {
            let start = if i % 97 == 0 { StartKind::AllInput } else { StartKind::None };
            let report = if i % 101 == 100 { Some(ReportCode(i)) } else { None };
            let label = if i % 2 == 0 { b'a' } else { b'b' };
            let id = nfa.add_state_full(CharClass::byte(label), start, report);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
        nfa.state_mut(StateId(n - 1)).report = Some(ReportCode(9999));
        for (a, b) in shortcuts {
            nfa.add_edge(StateId(a as u32), StateId(b as u32));
        }
        check_equivalence(&nfa, DesignKind::Performance, &input)?;
        check_equivalence(&nfa, DesignKind::Space, &input)?;
    }
}
