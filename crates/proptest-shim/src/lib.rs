//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the property tests running as
//! *randomized differential tests*: every `proptest!` block still generates
//! the configured number of seeded-random cases and runs the body against
//! them. What it deliberately does not implement is shrinking — a failing
//! case is reported as-is (with its case number and a fixed per-test seed,
//! so it reproduces deterministically).

#![forbid(unsafe_code)]

// ------------------------------------------------------------------ runner

/// Test-runner types (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed (as opposed to rejected) test case.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* source behind every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so each test owns a fixed,
        /// reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h } }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

// ---------------------------------------------------------------- strategy

/// Strategy trait and combinators (mirrors `proptest::strategy`).
pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no value tree or
    /// shrinking: a strategy is just a seeded random generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Retries generation until `f` accepts the value.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, f }
        }

        /// Recursive strategies: `recurse` receives the strategy built so
        /// far and wraps it one level deeper; `depth` controls nesting.
        /// The `desired_size`/`expected_branch_size` hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = OneOf::new(vec![(1, leaf.clone()), (2, recurse(cur).boxed())]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence);
        }
    }

    /// Always yields a clone of one value (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!` backend).
    #[derive(Clone)]
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as usize) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub use strategy::{BoxedStrategy, Just, OneOf, Strategy};

// --------------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Implemented by types `any::<T>()` supports.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::new(rng.next_u64())
        }
    }

    /// The strategy [`any`] returns.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub use arbitrary::any;

// -------------------------------------------------------------- prop:: mod

/// Namespaced strategy constructors (mirrors the `proptest::prop` facade
/// reached as `prop::...` from the prelude).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// `Vec` of `element` values with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// The uniform boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted { p }
        }

        /// See [`weighted`].
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted {
            p: f64,
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit() < self.p
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed set of values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select([]) has nothing to choose");
            Select { values }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.values[rng.below(self.values.len())].clone()
            }
        }

        /// An index into a collection whose size is only known at use time.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            pub(crate) fn new(raw: u64) -> Index {
                Index(raw)
            }

            /// Resolves against a collection of `size` elements.
            ///
            /// # Panics
            ///
            /// Panics if `size == 0`, as the real proptest does.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index(0)");
                (self.0 % size as u64) as usize
            }
        }
    }
}

// Allow `prop::sample::Index` paths from the prelude *and* plain
// `sample::select` as some strategies import it directly.
pub use prop::sample;

// ----------------------------------------------------------------- prelude

/// One-stop import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ------------------------------------------------------------------ macros

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds (no retry, unlike real
/// proptest — the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Weighted or unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = { $cfg }.cases;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                let values = ($($crate::strategy::Strategy::generate(&{ $strategy }, &mut rng),)+);
                let result = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($binding,)+) = values;
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 3usize..9, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_select(
            s in prop_oneof![2 => Just("a"), 1 => prop::sample::select(vec!["b", "c"])],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(["a", "b", "c"].contains(&s));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn flat_map_dependent_sizes(
            (n, v) in (1usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 1..4)))
        ) {
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just(1usize)];
        let nested = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(|v| v.iter().sum::<usize>() + 1)
        });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..200 {
            assert!(nested.generate(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_carry_case_numbers() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) { prop_assert!(x >= 4, "x was {}", x); }
        }
        always_fails();
    }
}
