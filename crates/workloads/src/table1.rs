//! Published Table 1 targets: the structural characteristics each
//! synthesizer aims for (performance-optimized columns).

/// One row of the paper's Table 1 (performance-optimized automaton).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Total states.
    pub states: usize,
    /// Connected components.
    pub connected_components: usize,
    /// Largest component size.
    pub largest_cc: usize,
    /// Average active states per cycle on the paper's 10 MB traces.
    pub avg_active: f64,
    /// Space-optimized state count.
    pub space_states: usize,
    /// Space-optimized connected components.
    pub space_ccs: usize,
    /// Space-optimized average active states.
    pub space_avg_active: f64,
}

/// The 20 rows of Table 1.
pub const TABLE1: [Table1Row; 20] = [
    Table1Row {
        name: "Dotstar03",
        states: 12144,
        connected_components: 299,
        largest_cc: 92,
        avg_active: 3.78,
        space_states: 11124,
        space_ccs: 56,
        space_avg_active: 0.84,
    },
    Table1Row {
        name: "Dotstar06",
        states: 12640,
        connected_components: 298,
        largest_cc: 104,
        avg_active: 37.55,
        space_states: 11598,
        space_ccs: 54,
        space_avg_active: 3.40,
    },
    Table1Row {
        name: "Dotstar09",
        states: 12431,
        connected_components: 297,
        largest_cc: 104,
        avg_active: 38.07,
        space_states: 11229,
        space_ccs: 59,
        space_avg_active: 4.39,
    },
    Table1Row {
        name: "Ranges05",
        states: 12439,
        connected_components: 299,
        largest_cc: 94,
        avg_active: 6.00,
        space_states: 11596,
        space_ccs: 63,
        space_avg_active: 1.53,
    },
    Table1Row {
        name: "Ranges1",
        states: 12464,
        connected_components: 297,
        largest_cc: 96,
        avg_active: 6.43,
        space_states: 11418,
        space_ccs: 57,
        space_avg_active: 1.46,
    },
    Table1Row {
        name: "ExactMatch",
        states: 12439,
        connected_components: 297,
        largest_cc: 87,
        avg_active: 5.99,
        space_states: 11270,
        space_ccs: 53,
        space_avg_active: 1.42,
    },
    Table1Row {
        name: "Bro217",
        states: 2312,
        connected_components: 187,
        largest_cc: 84,
        avg_active: 3.40,
        space_states: 1893,
        space_ccs: 59,
        space_avg_active: 1.89,
    },
    Table1Row {
        name: "TCP",
        states: 19704,
        connected_components: 715,
        largest_cc: 391,
        avg_active: 12.94,
        space_states: 13819,
        space_ccs: 47,
        space_avg_active: 2.21,
    },
    Table1Row {
        name: "Snort",
        states: 69029,
        connected_components: 2585,
        largest_cc: 222,
        avg_active: 431.43,
        space_states: 34480,
        space_ccs: 73,
        space_avg_active: 29.59,
    },
    Table1Row {
        name: "Brill",
        states: 42568,
        connected_components: 1962,
        largest_cc: 67,
        avg_active: 1662.76,
        space_states: 26364,
        space_ccs: 1,
        space_avg_active: 14.29,
    },
    Table1Row {
        name: "ClamAV",
        states: 49538,
        connected_components: 515,
        largest_cc: 542,
        avg_active: 82.84,
        space_states: 42543,
        space_ccs: 41,
        space_avg_active: 4.30,
    },
    Table1Row {
        name: "Dotstar",
        states: 96438,
        connected_components: 2837,
        largest_cc: 95,
        avg_active: 45.05,
        space_states: 38951,
        space_ccs: 90,
        space_avg_active: 3.25,
    },
    Table1Row {
        name: "EntityResolution",
        states: 95136,
        connected_components: 1000,
        largest_cc: 96,
        avg_active: 1192.84,
        space_states: 5672,
        space_ccs: 5,
        space_avg_active: 7.88,
    },
    Table1Row {
        name: "Levenshtein",
        states: 2784,
        connected_components: 24,
        largest_cc: 116,
        avg_active: 114.21,
        space_states: 2784,
        space_ccs: 1,
        space_avg_active: 114.21,
    },
    Table1Row {
        name: "Hamming",
        states: 11346,
        connected_components: 93,
        largest_cc: 122,
        avg_active: 285.1,
        space_states: 11254,
        space_ccs: 69,
        space_avg_active: 240.09,
    },
    Table1Row {
        name: "Fermi",
        states: 40783,
        connected_components: 2399,
        largest_cc: 17,
        avg_active: 4715.96,
        space_states: 39032,
        space_ccs: 648,
        space_avg_active: 4715.96,
    },
    Table1Row {
        name: "SPM",
        states: 100500,
        connected_components: 5025,
        largest_cc: 20,
        avg_active: 6964.47,
        space_states: 18126,
        space_ccs: 1,
        space_avg_active: 1432.55,
    },
    Table1Row {
        name: "RandomForest",
        states: 33220,
        connected_components: 1661,
        largest_cc: 20,
        avg_active: 398.24,
        space_states: 33220,
        space_ccs: 1,
        space_avg_active: 398.24,
    },
    Table1Row {
        name: "PowerEN",
        states: 14109,
        connected_components: 1000,
        largest_cc: 48,
        avg_active: 61.02,
        space_states: 12194,
        space_ccs: 62,
        space_avg_active: 30.02,
    },
    Table1Row {
        name: "Protomata",
        states: 42011,
        connected_components: 2340,
        largest_cc: 123,
        avg_active: 1578.51,
        space_states: 38243,
        space_ccs: 513,
        space_avg_active: 594.68,
    },
];

/// Looks up a Table 1 row by name.
pub fn table1_row(name: &str) -> Option<&'static Table1Row> {
    TABLE1.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(table1_row("Snort").unwrap().states, 69029);
        assert!(table1_row("Nope").is_none());
    }

    #[test]
    fn twenty_rows_totals() {
        assert_eq!(TABLE1.len(), 20);
        let total: usize = TABLE1.iter().map(|r| r.states).sum();
        assert_eq!(total, 694_035);
    }
}
