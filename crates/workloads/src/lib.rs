//! Synthesizers for the 20 ANMLZoo / Regex benchmarks of the Cache
//! Automaton evaluation, plus matching input-stream generators.
//!
//! The original benchmark files are distributed outside this repository
//! (ANMLZoo rule files, proprietary traces); per the reproduction's
//! substitution policy (DESIGN.md §1) each benchmark is regenerated with
//! the *published structural characteristics* of the paper's Table 1 —
//! exact component counts, state counts within a few percent, comparable
//! largest components — using either exact constructions (Levenshtein,
//! Hamming automata) or faithful pattern synthesis (Snort-style rules,
//! ClamAV signatures, PROSITE motifs, ...).
//!
//! # Examples
//!
//! ```
//! use ca_workloads::{Benchmark, Scale};
//!
//! // A CI-sized Levenshtein workload and a 4 KB input trace.
//! let w = Benchmark::Levenshtein.build(Scale::tiny(), 42);
//! let input = w.input(4096, 7);
//! assert_eq!(input.len(), 4096);
//! assert!(w.nfa.len() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod editdist;
pub mod entity;
pub mod patterns;
pub mod table1;

pub use table1::{table1_row, Table1Row, TABLE1};

use ca_automata::regex::compile_patterns;
use ca_automata::{HomNfa, ReportCode};
use editdist::{hamming_nfa, levenshtein_nfa};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload size relative to the paper (1.0 = Table 1 scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Paper scale: component counts match Table 1.
    pub fn full() -> Scale {
        Scale(1.0)
    }

    /// CI scale: ~4% of the paper's components (fast tests).
    pub fn tiny() -> Scale {
        Scale(0.04)
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(1)
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale::full()
    }
}

/// The 20 benchmarks of the paper's evaluation (Table 1 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Dotstar03,
    Dotstar06,
    Dotstar09,
    Ranges05,
    Ranges1,
    ExactMatch,
    Bro217,
    Tcp,
    Snort,
    Brill,
    ClamAv,
    Dotstar,
    EntityResolution,
    Levenshtein,
    Hamming,
    Fermi,
    Spm,
    RandomForest,
    PowerEn,
    Protomata,
}

impl Benchmark {
    /// All benchmarks in Table 1 order.
    pub fn all() -> [Benchmark; 20] {
        use Benchmark::*;
        [
            Dotstar03,
            Dotstar06,
            Dotstar09,
            Ranges05,
            Ranges1,
            ExactMatch,
            Bro217,
            Tcp,
            Snort,
            Brill,
            ClamAv,
            Dotstar,
            EntityResolution,
            Levenshtein,
            Hamming,
            Fermi,
            Spm,
            RandomForest,
            PowerEn,
            Protomata,
        ]
    }

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Dotstar03 => "Dotstar03",
            Benchmark::Dotstar06 => "Dotstar06",
            Benchmark::Dotstar09 => "Dotstar09",
            Benchmark::Ranges05 => "Ranges05",
            Benchmark::Ranges1 => "Ranges1",
            Benchmark::ExactMatch => "ExactMatch",
            Benchmark::Bro217 => "Bro217",
            Benchmark::Tcp => "TCP",
            Benchmark::Snort => "Snort",
            Benchmark::Brill => "Brill",
            Benchmark::ClamAv => "ClamAV",
            Benchmark::Dotstar => "Dotstar",
            Benchmark::EntityResolution => "EntityResolution",
            Benchmark::Levenshtein => "Levenshtein",
            Benchmark::Hamming => "Hamming",
            Benchmark::Fermi => "Fermi",
            Benchmark::Spm => "SPM",
            Benchmark::RandomForest => "RandomForest",
            Benchmark::PowerEn => "PowerEN",
            Benchmark::Protomata => "Protomata",
        }
    }

    /// The published Table 1 row for this benchmark.
    pub fn table1(self) -> &'static Table1Row {
        table1_row(self.name()).expect("every benchmark has a Table 1 row")
    }

    /// Synthesizes the workload at the given scale.
    ///
    /// Identical `(scale, seed)` pairs produce identical workloads.
    pub fn build(self, scale: Scale, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        let row = self.table1();
        let count = scale.count(row.connected_components);
        let (nfa, alphabet, splice_rate): (HomNfa, &[u8], f64) = match self {
            Benchmark::Dotstar03 => (
                from_patterns(&patterns::dotstar_patterns(&mut rng, count, 0.03)),
                patterns::ALNUM,
                0.0003,
            ),
            Benchmark::Dotstar06 => (
                from_patterns(&patterns::dotstar_patterns(&mut rng, count, 0.06)),
                patterns::ALNUM,
                0.004,
            ),
            Benchmark::Dotstar09 => (
                from_patterns(&patterns::dotstar_patterns(&mut rng, count, 0.09)),
                patterns::ALNUM,
                0.003,
            ),
            Benchmark::Ranges05 => (
                from_patterns(&patterns::ranges_patterns(&mut rng, count, 0.5)),
                patterns::ALNUM,
                0.0012,
            ),
            Benchmark::Ranges1 => (
                from_patterns(&patterns::ranges_patterns(&mut rng, count, 1.0)),
                patterns::ALNUM,
                0.0012,
            ),
            Benchmark::ExactMatch => (
                from_patterns(&patterns::exact_match_patterns(&mut rng, count)),
                patterns::ALNUM,
                0.0012,
            ),
            Benchmark::Bro217 => {
                (from_patterns(&patterns::bro_patterns(&mut rng, count)), patterns::ALNUM, 0.0015)
            }
            Benchmark::Tcp => {
                (from_patterns(&patterns::tcp_patterns(&mut rng, count)), patterns::ALNUM, 0.0015)
            }
            Benchmark::Snort => {
                (from_patterns(&patterns::snort_patterns(&mut rng, count)), patterns::ALNUM, 0.06)
            }
            Benchmark::Brill => (
                from_patterns(&patterns::brill_patterns(&mut rng, count)),
                b"abcdefghijklmnopqrstuvwxyz ",
                0.45,
            ),
            Benchmark::ClamAv => {
                (from_patterns(&patterns::clamav_patterns(&mut rng, count)), &[], 0.05)
            }
            Benchmark::Dotstar => (
                from_patterns(&patterns::dotstar_mixed_patterns(&mut rng, count)),
                patterns::ALNUM,
                0.0012,
            ),
            Benchmark::EntityResolution => {
                // Name parts from shared vocabularies — the sharing is what
                // the space-optimized design merges. Real name data clusters
                // (by region/culture), which is why the paper's merged ER
                // automaton splits into few connected components (5 in
                // Table 1). Our structural merging keeps more states than
                // the paper's semantic restructuring, so we use 12 pools —
                // each merged component then fits one way and routes via
                // the 16-port G-switch (see EXPERIMENTS.md section 4).
                const POOLS: usize = 12;
                let pools: Vec<Vec<String>> = (0..POOLS)
                    .map(|k| {
                        // disjoint initial-letter ranges keep the pools'
                        // merged components separate (ab, cd, ef, ...)
                        let initials: Vec<u8> = (0..2).map(|i| b'a' + (k * 2 + i) as u8).collect();
                        (0..30)
                            .map(|_| {
                                let len = rng.gen_range(4..10);
                                let first = initials[rng.gen_range(0..initials.len())] as char;
                                format!(
                                    "{first}{}",
                                    patterns::literal(&mut rng, len, b"abcdefghijklmnopqrstuvwxyz")
                                )
                            })
                            .collect()
                    })
                    .collect();
                let mut parts = Vec::new();
                for i in 0..count {
                    let pool = &pools[i % POOLS];
                    let pick = |rng: &mut StdRng| pool[rng.gen_range(0..pool.len())].clone();
                    let (p1, p2, p3) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
                    parts.push(entity::entity_nfa(
                        [p1.as_bytes(), p2.as_bytes(), p3.as_bytes()],
                        ReportCode(i as u32),
                    ));
                }
                (HomNfa::union_all(parts.iter(), false), b"abcdefghijklmnopqrstuvwxyz ", 0.4)
            }
            Benchmark::Levenshtein => {
                let mut parts = Vec::new();
                for i in 0..count {
                    let pattern = patterns::literal(&mut rng, 12, b"acgt");
                    parts.push(levenshtein_nfa(pattern.as_bytes(), 3, ReportCode(i as u32)));
                }
                (HomNfa::union_all(parts.iter(), false), b"acgtnrywskmbdhv-", 0.01)
            }
            Benchmark::Hamming => {
                let mut parts = Vec::new();
                for i in 0..count {
                    let pattern = patterns::literal(&mut rng, 24, b"acgt");
                    parts.push(hamming_nfa(pattern.as_bytes(), 2, ReportCode(i as u32)));
                }
                (HomNfa::union_all(parts.iter(), false), b"acgt", 0.01)
            }
            Benchmark::Fermi => (
                from_patterns(&patterns::fermi_patterns(&mut rng, count)),
                b"0123456789abcdef",
                0.7,
            ),
            Benchmark::Spm => {
                (from_patterns(&patterns::spm_patterns(&mut rng, count)), b"ix0123456789;", 0.5)
            }
            Benchmark::RandomForest => (
                from_patterns(&patterns::random_forest_patterns(&mut rng, count)),
                patterns::ALNUM,
                0.35,
            ),
            Benchmark::PowerEn => {
                (from_patterns(&patterns::poweren_patterns(&mut rng, count)), patterns::ALNUM, 0.02)
            }
            Benchmark::Protomata => (
                from_patterns(&patterns::protomata_patterns(&mut rng, count)),
                patterns::AMINO,
                0.4,
            ),
        };
        // harvest input fragments: literal-ish prefixes of the automaton's
        // chains, reconstructed by walking from start states
        let fragments = harvest_fragments(&nfa, &mut rng, 64);
        let alphabet: Vec<u8> = if alphabet.is_empty() {
            (0u8..=255).collect() // ClamAV scans binary data
        } else {
            alphabet.to_vec()
        };
        Workload { benchmark: self, nfa, fragments, alphabet, splice_rate }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn from_patterns(patterns: &[String]) -> HomNfa {
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    compile_patterns(&refs).expect("synthesized patterns always compile")
}

/// Walks forward from random start states, picking one symbol per label,
/// producing realistic "hot" fragments for input synthesis.
fn harvest_fragments(nfa: &HomNfa, rng: &mut StdRng, how_many: usize) -> Vec<Vec<u8>> {
    let starts = nfa.start_states();
    if starts.is_empty() {
        return Vec::new();
    }
    let mut fragments = Vec::with_capacity(how_many);
    for _ in 0..how_many {
        let mut state = starts[rng.gen_range(0..starts.len())];
        let mut frag = Vec::new();
        for _ in 0..rng.gen_range(4..24) {
            let label = nfa.state(state).label;
            let symbols: Vec<u8> = label.iter().take(8).collect();
            if symbols.is_empty() {
                break;
            }
            frag.push(symbols[rng.gen_range(0..symbols.len())]);
            let succ = nfa.successors(state);
            if succ.is_empty() {
                break;
            }
            state = succ[rng.gen_range(0..succ.len())];
        }
        if !frag.is_empty() {
            fragments.push(frag);
        }
    }
    fragments
}

/// A synthesized benchmark workload: automaton plus input generator.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The performance-optimized (baseline) automaton.
    pub nfa: HomNfa,
    fragments: Vec<Vec<u8>>,
    alphabet: Vec<u8>,
    splice_rate: f64,
}

impl Workload {
    /// Generates `len` bytes of benchmark-flavoured input: alphabet noise
    /// with pattern fragments spliced in at the benchmark's hit rate.
    pub fn input(&self, len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1257_ace0);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            if !self.fragments.is_empty() && rng.gen_bool(self.splice_rate) {
                let frag = &self.fragments[rng.gen_range(0..self.fragments.len())];
                out.extend_from_slice(frag);
            } else {
                out.push(self.alphabet[rng.gen_range(0..self.alphabet.len())]);
            }
        }
        out.truncate(len);
        out
    }

    /// The space-optimized automaton: dead-state removal plus common-prefix
    /// merging (the paper's CA_S input).
    pub fn space_optimized(&self) -> HomNfa {
        ca_automata::optimize::space_optimize(&self.nfa).0
    }

    /// Generates a worst-case trace: wall-to-wall pattern fragments with no
    /// noise. Drives maximum automaton activity (used by the DFA-blowup
    /// study and stress tests).
    pub fn adversarial_input(&self, len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xadf7_541e);
        let mut out = Vec::with_capacity(len + 32);
        while out.len() < len {
            if self.fragments.is_empty() {
                out.push(self.alphabet[rng.gen_range(0..self.alphabet.len())]);
            } else {
                let frag = &self.fragments[rng.gen_range(0..self.fragments.len())];
                out.extend_from_slice(frag);
            }
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::analysis::connected_components;

    #[test]
    fn tiny_scale_builds_every_benchmark() {
        for b in Benchmark::all() {
            let w = b.build(Scale::tiny(), 1);
            assert!(w.nfa.validate().is_ok(), "{b} invalid");
            assert!(!w.nfa.is_empty(), "{b} empty");
            let input = w.input(512, 3);
            assert_eq!(input.len(), 512);
        }
    }

    #[test]
    fn component_counts_scale() {
        let w = Benchmark::ExactMatch.build(Scale(0.1), 2);
        let cc = connected_components(&w.nfa);
        let expect = (297.0f64 * 0.1).round() as usize;
        assert_eq!(cc.len(), expect);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Benchmark::Snort.build(Scale::tiny(), 9);
        let b = Benchmark::Snort.build(Scale::tiny(), 9);
        assert_eq!(a.nfa, b.nfa);
        assert_eq!(a.input(256, 1), b.input(256, 1));
        let c = Benchmark::Snort.build(Scale::tiny(), 10);
        assert_ne!(a.nfa, c.nfa);
    }

    #[test]
    fn space_optimization_shrinks_mergeable_benchmarks() {
        for b in [Benchmark::Spm, Benchmark::EntityResolution, Benchmark::Brill] {
            let w = b.build(Scale::tiny(), 5);
            let opt = w.space_optimized();
            assert!(opt.len() < w.nfa.len(), "{b}: {} !< {}", opt.len(), w.nfa.len());
        }
    }

    #[test]
    fn inputs_trigger_matches() {
        use ca_automata::engine::{Engine, SparseEngine};
        // hot benchmarks should report on their own input streams
        for b in [Benchmark::Fermi, Benchmark::Spm, Benchmark::Brill] {
            let w = b.build(Scale::tiny(), 11);
            let input = w.input(16 * 1024, 13);
            let ev = SparseEngine::new(&w.nfa).run(&input);
            assert!(!ev.is_empty(), "{b} produced no matches on its own trace");
        }
    }

    #[test]
    fn table1_links() {
        assert_eq!(Benchmark::Snort.table1().states, 69029);
        assert_eq!(Benchmark::Tcp.name(), "TCP");
        assert_eq!(Benchmark::all().len(), 20);
    }
}
