//! Exact constructions: Levenshtein and Hamming distance automata.
//!
//! These two ANMLZoo benchmarks are not rule files but parametric automata;
//! we build them from first principles (the classical edit-distance NFA
//! lattice) and homogenize them with the toolchain's standard transform —
//! the same route the original ANML designs took.

use ca_automata::homogenize::homogenize;
use ca_automata::{CharClass, ClassicalNfa, HomNfa, ReportCode, StartKind};

/// Builds a homogeneous automaton accepting every string within edit
/// distance `k` (substitutions, insertions, deletions) of `pattern`,
/// reporting `code` at the end of an occurrence.
///
/// The classical construction is the (m+1)x(k+1) lattice; ε-deletions are
/// eliminated and the result homogenized, exactly matching ANMLZoo's
/// Levenshtein automata in structure (~`2m(k+1)` STEs).
///
/// # Panics
///
/// Panics if `pattern` is empty or `k >= pattern.len()` (the automaton
/// would accept the empty string).
pub fn levenshtein_nfa(pattern: &[u8], k: usize, code: ReportCode) -> HomNfa {
    assert!(!pattern.is_empty(), "empty pattern");
    assert!(k < pattern.len(), "k must be smaller than the pattern length");
    let m = pattern.len();
    let mut nfa = ClassicalNfa::new();
    // state (i, j): consumed i pattern chars with j errors
    let id = |i: usize, j: usize| (i * (k + 1) + j) as u32;
    for _ in 0..(m + 1) * (k + 1) {
        nfa.add_state();
    }
    nfa.add_start(id(0, 0));
    for i in 0..=m {
        for j in 0..=k {
            if let Some(&sym) = pattern.get(i) {
                let c = CharClass::byte(sym);
                // match
                nfa.add_transition(id(i, j), c, id(i + 1, j));
                if j < k {
                    // substitution: consume a wrong symbol, advance
                    nfa.add_transition(id(i, j), c.negate(), id(i + 1, j + 1));
                    // deletion: skip a pattern symbol without consuming
                    nfa.add_epsilon(id(i, j), id(i + 1, j + 1));
                }
            }
            if j < k {
                // insertion: consume any symbol, no advance
                nfa.add_transition(id(i, j), CharClass::ALL, id(i, j + 1));
            }
        }
    }
    for j in 0..=k {
        nfa.set_accept(id(m, j), code);
    }
    let no_eps = nfa.without_epsilon();
    let hom = homogenize(&no_eps, StartKind::AllInput).expect("lattice homogenizes");
    // prune states that cannot reach a report (ε-elimination leaves some)
    let (pruned, _) = ca_automata::optimize::remove_dead_states(&hom);
    pruned
}

/// Builds a homogeneous automaton accepting strings within Hamming
/// distance `k` (substitutions only) of `pattern`.
///
/// # Panics
///
/// Panics if `pattern` is empty or `k >= pattern.len()`.
pub fn hamming_nfa(pattern: &[u8], k: usize, code: ReportCode) -> HomNfa {
    assert!(!pattern.is_empty(), "empty pattern");
    assert!(k < pattern.len(), "k must be smaller than the pattern length");
    let m = pattern.len();
    let mut nfa = ClassicalNfa::new();
    let id = |i: usize, j: usize| (i * (k + 1) + j) as u32;
    for _ in 0..(m + 1) * (k + 1) {
        nfa.add_state();
    }
    nfa.add_start(id(0, 0));
    for (i, &sym) in pattern.iter().enumerate() {
        for j in 0..=k {
            let c = CharClass::byte(sym);
            nfa.add_transition(id(i, j), c, id(i + 1, j));
            if j < k {
                nfa.add_transition(id(i, j), c.negate(), id(i + 1, j + 1));
            }
        }
    }
    for j in 0..=k {
        nfa.set_accept(id(m, j), code);
    }
    let hom = homogenize(&nfa, StartKind::AllInput).expect("ladder homogenizes");
    let (pruned, _) = ca_automata::optimize::remove_dead_states(&hom);
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::engine::{Engine, SparseEngine};

    fn matches(nfa: &HomNfa, input: &[u8]) -> bool {
        !SparseEngine::new(nfa).run(input).is_empty()
    }

    #[test]
    fn levenshtein_accepts_within_distance() {
        let nfa = levenshtein_nfa(b"kitten", 2, ReportCode(0));
        assert!(matches(&nfa, b"kitten")); // exact
        assert!(matches(&nfa, b"sitten")); // 1 substitution
        assert!(matches(&nfa, b"sittin")); // 2 substitutions
        assert!(matches(&nfa, b"kiten")); // 1 deletion
        assert!(matches(&nfa, b"kititen")); // 1 insertion
        assert!(matches(&nfa, b"xkittenx")); // embedded occurrence
                                             // NOTE: "sitting" DOES match unanchored k=2 — its substring
                                             // "sittin" is within two substitutions of "kitten".
        assert!(matches(&nfa, b"sitting"));
        assert!(!matches(&nfa, b"zzzzzzzz")); // nothing close anywhere
        assert!(!matches(&nfa, b"dog"));
    }

    #[test]
    fn hamming_rejects_indels() {
        let nfa = hamming_nfa(b"kitten", 2, ReportCode(0));
        assert!(matches(&nfa, b"kitten"));
        assert!(matches(&nfa, b"sittin")); // 2 subs
                                           // deletions are NOT within Hamming distance; no 6-symbol window of
                                           // this 4-symbol string exists, so nothing can match.
        assert!(!matches(&nfa, b"kien"));
        assert!(!matches(&nfa, b"xxyyzz"));
    }

    #[test]
    fn structure_matches_anmlzoo_scale() {
        // ANMLZoo Levenshtein: 24 components x ~116 states. With the
        // homogenized lattice that corresponds to 12-symbol patterns, k=3.
        let nfa = levenshtein_nfa(b"acgtacgtacgt", 3, ReportCode(0));
        assert!((90..=150).contains(&nfa.len()), "unexpected lattice size {}", nfa.len());
        // Hamming rows: ~122 states at m=24, k=2.
        let h = hamming_nfa(b"acgtacgtacgtacgtacgtacgt", 2, ReportCode(0));
        assert!((100..=140).contains(&h.len()), "unexpected ladder size {}", h.len());
    }

    #[test]
    fn distance_zero_is_exact_match() {
        let nfa = hamming_nfa(b"abc", 0, ReportCode(3));
        assert!(matches(&nfa, b"abc"));
        assert!(!matches(&nfa, b"abd"));
        let ev = SparseEngine::new(&nfa).run(b"zabcz");
        assert_eq!(ev[0].pos, 3);
        assert_eq!(ev[0].code, ReportCode(3));
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn oversized_k_panics() {
        levenshtein_nfa(b"ab", 2, ReportCode(0));
    }

    #[test]
    fn hamming_exhaustive_small() {
        // all strings of length 4 over {a,b}: distance from "aaaa" is the
        // count of b's; k=1 accepts <= 1.
        let nfa = hamming_nfa(b"aaaa", 1, ReportCode(0));
        for bits in 0..16u32 {
            let s: Vec<u8> = (0..4).map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' }).collect();
            let want = bits.count_ones() <= 1;
            assert_eq!(matches(&nfa, &s), want, "{s:?}");
        }
    }

    #[test]
    fn levenshtein_exhaustive_small() {
        // strings over {a,b} length <= 5 vs pattern "aba", k=1: compare to a
        // reference edit-distance (with the unanchored "substring" rule).
        fn edit(a: &[u8], b: &[u8]) -> usize {
            let mut d: Vec<Vec<usize>> = vec![vec![0; b.len() + 1]; a.len() + 1];
            for (i, row) in d.iter_mut().enumerate() {
                row[0] = i;
            }
            for (j, cell) in d[0].iter_mut().enumerate() {
                *cell = j;
            }
            for i in 1..=a.len() {
                for j in 1..=b.len() {
                    let cost = usize::from(a[i - 1] != b[j - 1]);
                    d[i][j] = (d[i - 1][j] + 1).min(d[i][j - 1] + 1).min(d[i - 1][j - 1] + cost);
                }
            }
            d[a.len()][b.len()]
        }
        let pattern = b"aba";
        let nfa = levenshtein_nfa(pattern, 1, ReportCode(0));
        for len in 0..=5usize {
            for mask in 0..(1u32 << len) {
                let s: Vec<u8> =
                    (0..len).map(|i| if mask >> i & 1 == 1 { b'b' } else { b'a' }).collect();
                // unanchored: any substring within distance 1 counts
                let mut want = false;
                for i in 0..=s.len() {
                    for j in i..=s.len() {
                        if edit(pattern, &s[i..j]) <= 1 {
                            want = true;
                        }
                    }
                }
                assert_eq!(matches(&nfa, &s), want, "input {s:?}");
            }
        }
    }
}
