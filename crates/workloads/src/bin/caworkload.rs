//! `caworkload` — exports the synthesized evaluation benchmarks as ANML
//! files plus input traces, for use with `cactl` or any other automata
//! tool.
//!
//! ```text
//! caworkload list
//! caworkload export <benchmark|all> <out-dir> [--scale F] [--kib N] [--seed N] [--space]
//! caworkload stats  <benchmark> [--scale F] [--seed N]
//! ```

use ca_automata::analysis::connected_components;
use ca_automata::anml::to_anml;
use ca_workloads::{Benchmark, Scale};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("caworkload: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(mut args: Vec<String>) -> Result<String, String> {
    let mut scale = Scale::full();
    let mut kib = 256usize;
    let mut seed = 2017u64;
    let mut space = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = Scale(take(&mut args, i, "--scale")?);
            }
            "--kib" => {
                kib = take(&mut args, i, "--kib")?;
            }
            "--seed" => {
                seed = take(&mut args, i, "--seed")?;
            }
            "--space" => {
                space = true;
                args.remove(i);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => i += 1,
        }
    }
    let mut out = String::new();
    match args.first().map(String::as_str) {
        Some("list") => {
            for b in Benchmark::all() {
                let t = b.table1();
                out.push_str(&format!(
                    "{:<18} {:>7} states {:>5} components (paper Table 1)\n",
                    b.name(),
                    t.states,
                    t.connected_components
                ));
            }
        }
        Some("export") => {
            let [_, which, dir] = args.as_slice() else {
                return Err("export needs a benchmark name (or 'all') and an output dir".into());
            };
            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            let targets: Vec<Benchmark> =
                if which == "all" { Benchmark::all().to_vec() } else { vec![lookup(which)?] };
            for b in targets {
                let w = b.build(scale, seed);
                let nfa = if space { w.space_optimized() } else { w.nfa.clone() };
                let stem = b.name().to_lowercase();
                let anml_path = Path::new(dir).join(format!("{stem}.anml"));
                let trace_path = Path::new(dir).join(format!("{stem}.trace"));
                std::fs::write(&anml_path, to_anml(&nfa, b.name()))
                    .map_err(|e| format!("{}: {e}", anml_path.display()))?;
                std::fs::write(&trace_path, w.input(kib * 1024, seed + 1))
                    .map_err(|e| format!("{}: {e}", trace_path.display()))?;
                out.push_str(&format!(
                    "{:<18} {:>7} states -> {} + {}\n",
                    b.name(),
                    nfa.len(),
                    anml_path.display(),
                    trace_path.display()
                ));
            }
        }
        Some("stats") => {
            let [_, which] = args.as_slice() else {
                return Err("stats needs a benchmark name".into());
            };
            let b = lookup(which)?;
            let w = b.build(scale, seed);
            let cc = connected_components(&w.nfa);
            let merged = w.space_optimized();
            let t = b.table1();
            out.push_str(&format!("benchmark      : {}\n", b.name()));
            out.push_str(&format!("states         : {} (paper {})\n", w.nfa.len(), t.states));
            out.push_str(&format!(
                "components     : {} (paper {})\n",
                cc.len(),
                t.connected_components
            ));
            out.push_str(&format!("largest        : {} (paper {})\n", cc.largest(), t.largest_cc));
            out.push_str(&format!(
                "space states   : {} (paper {})\n",
                merged.len(),
                t.space_states
            ));
        }
        _ => return Err("usage: caworkload <list|export|stats> ...".into()),
    }
    Ok(out)
}

fn take<T: std::str::FromStr>(args: &mut Vec<String>, i: usize, flag: &str) -> Result<T, String> {
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    value.parse().map_err(|_| format!("{flag}: bad value '{value}'"))
}

fn lookup(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark '{name}' (try 'list')"))
}
