//! Entity-resolution automata (Bo et al., the paper's reference \[7\]).
//!
//! An entity's name parts may appear in any order ("arun kumar subra" vs
//! "subra arun kumar"); the automaton accepts every permutation. Built as a
//! *permutation tree* sharing chains by prefix — one connected component of
//! ~96 states per entity, matching ANMLZoo's EntityResolution structure.

use ca_automata::{CharClass, HomNfa, ReportCode, StartKind, StateId};

/// Builds the permutation automaton of three name parts: any ordering,
/// single-space separated, reporting `code` on the last symbol.
///
/// # Panics
///
/// Panics if any part is empty.
pub fn entity_nfa(parts: [&[u8]; 3], code: ReportCode) -> HomNfa {
    assert!(parts.iter().all(|p| !p.is_empty()), "empty name part");
    let mut nfa = HomNfa::new();

    // Adds the chain for `part`, returning (first, last) ids. The first
    // state of a level-0 chain is a start state.
    let add_chain = |nfa: &mut HomNfa, part: &[u8], start: bool| -> (StateId, StateId) {
        let mut first = None;
        let mut prev: Option<StateId> = None;
        for (i, &b) in part.iter().enumerate() {
            let kind = if i == 0 && start { StartKind::AllInput } else { StartKind::None };
            let id = nfa.add_state_full(CharClass::byte(b), kind, None);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            if first.is_none() {
                first = Some(id);
            }
            prev = Some(id);
        }
        (first.expect("non-empty part"), prev.expect("non-empty part"))
    };

    let space = CharClass::byte(b' ');
    // level 2 first: ONE closing chain per part, shared by the two
    // permutations that end with it — this both joins the automaton into a
    // single component and keeps it compact (~4*sum(len)+6 states).
    let mut sp1 = Vec::with_capacity(3);
    for &third_part in &parts {
        let (l2_start, l2_end) = add_chain(&mut nfa, third_part, false);
        nfa.state_mut(l2_end).report = Some(code);
        let sp = nfa.add_state(space);
        nfa.add_edge(sp, l2_start);
        sp1.push(sp);
    }
    // level 0: each part may come first
    for (first_idx, &first_part) in parts.iter().enumerate() {
        let (_, l0_end) = add_chain(&mut nfa, first_part, true);
        let sp0 = nfa.add_state(space);
        nfa.add_edge(l0_end, sp0);
        // level 1: one of the two remaining parts, then the shared closer
        for (second_idx, &second_part) in parts.iter().enumerate() {
            if second_idx == first_idx {
                continue;
            }
            let (l1_start, l1_end) = add_chain(&mut nfa, second_part, false);
            nfa.add_edge(sp0, l1_start);
            let third_idx = 3 - first_idx - second_idx;
            nfa.add_edge(l1_end, sp1[third_idx]);
        }
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::analysis::connected_components;
    use ca_automata::engine::{Engine, SparseEngine};

    fn matches(nfa: &HomNfa, input: &[u8]) -> bool {
        !SparseEngine::new(nfa).run(input).is_empty()
    }

    #[test]
    fn accepts_all_six_orderings() {
        let nfa = entity_nfa([b"ann", b"bo", b"cruz"], ReportCode(0));
        for s in [
            "ann bo cruz",
            "ann cruz bo",
            "bo ann cruz",
            "bo cruz ann",
            "cruz ann bo",
            "cruz bo ann",
        ] {
            assert!(matches(&nfa, s.as_bytes()), "{s}");
        }
        assert!(!matches(&nfa, b"ann bo"));
        assert!(!matches(&nfa, b"ann ann cruz"));
        assert!(!matches(&nfa, b"annbocruz"));
    }

    #[test]
    fn one_component_of_expected_size() {
        // sum(len) = 17 -> 4*17 + 6 = 74 states, one component
        let nfa = entity_nfa([b"abcdef", b"ghijkl", b"mnopq"], ReportCode(0));
        let cc = connected_components(&nfa);
        assert_eq!(cc.len(), 1);
        assert_eq!(nfa.len(), 74);
    }

    #[test]
    fn embedded_occurrence_reports_position() {
        let nfa = entity_nfa([b"aa", b"bb", b"cc"], ReportCode(5));
        let ev = SparseEngine::new(&nfa).run(b"xx bb cc aa yy");
        assert!(!ev.is_empty());
        assert_eq!(ev[0].pos, 10); // last symbol of "bb cc aa"
        assert_eq!(ev[0].code, ReportCode(5));
    }

    #[test]
    fn prefix_merging_collapses_shared_names_across_entities() {
        use ca_automata::optimize::merge_common_prefixes;
        // Two entities sharing two name parts (as real name data does):
        // their level-0 chains merge.
        let a = entity_nfa([b"maria", b"garcia", b"lopez"], ReportCode(0));
        let b = entity_nfa([b"maria", b"garcia", b"silva"], ReportCode(1));
        let both = HomNfa::union_all([&a, &b], false);
        let (merged, stats) = merge_common_prefixes(&both);
        assert!(merged.len() < both.len(), "expected shared names to merge");
        assert!(stats.reduction() > 0.10, "reduction {}", stats.reduction());
    }
}
