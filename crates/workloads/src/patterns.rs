//! Regex-pattern synthesizers for the suite's rule-based benchmarks
//! (Regex suite, Snort, ClamAV, PowerEN, Protomata, ...).
//!
//! Each function produces a deterministic pattern list whose compiled
//! automaton matches the published Table 1 structure (state count within a
//! few percent, exact component count, comparable largest component).

use rand::rngs::StdRng;
use rand::Rng;

/// Lowercase letters and digits — safe in regex literals without escaping.
pub const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

/// The 20 amino-acid one-letter codes (Protomata's alphabet).
pub const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

/// Draws a literal string of `len` symbols from `alphabet`.
pub fn literal(rng: &mut StdRng, len: usize, alphabet: &[u8]) -> String {
    (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char).collect()
}

/// Length mixture: `frac_long` of draws come from the long range.
fn mixed_len(
    rng: &mut StdRng,
    short: (usize, usize),
    long: (usize, usize),
    frac_long: f64,
) -> usize {
    if rng.gen_bool(frac_long) {
        rng.gen_range(long.0..=long.1)
    } else {
        rng.gen_range(short.0..=short.1)
    }
}

/// Draws a pool of shared literal prefixes. Real rule sets share protocol
/// headers / hex stubs / common words, which is exactly what the paper's
/// space-optimized flow merges; generators prepend pool prefixes so the
/// published Table 1 space-column reductions reproduce.
pub(crate) fn prefix_pool(
    rng: &mut StdRng,
    pool: usize,
    len: usize,
    alphabet: &[u8],
) -> Vec<String> {
    (0..pool).map(|_| literal(rng, len, alphabet)).collect()
}

fn pick<'a>(rng: &mut StdRng, pool: &'a [String]) -> &'a str {
    &pool[rng.gen_range(0..pool.len())]
}

/// Regex-suite `DotstarNN`: literals with probability `dot_prob` of a `.*`
/// insertion between adjacent symbols (Becchi et al. workload flavour).
pub fn dotstar_patterns(rng: &mut StdRng, count: usize, dot_prob: f64) -> Vec<String> {
    let pool = prefix_pool(rng, 30, 4, ALNUM);
    (0..count)
        .map(|_| {
            let len = mixed_len(rng, (16, 51), (52, 84), 0.10);
            let mut out = pick(rng, &pool).to_string();
            for i in 0..len {
                if i > 0 && rng.gen_bool(dot_prob) {
                    out.push_str(".*");
                }
                out.push(ALNUM[rng.gen_range(0..ALNUM.len())] as char);
            }
            out
        })
        .collect()
}

/// Regex-suite `RangesNN`: literals where each symbol becomes a character
/// range with probability `range_prob`.
pub fn ranges_patterns(rng: &mut StdRng, count: usize, range_prob: f64) -> Vec<String> {
    let pool = prefix_pool(rng, 30, 4, ALNUM);
    (0..count)
        .map(|_| {
            let len = mixed_len(rng, (16, 51), (52, 86), 0.10);
            let mut out = pick(rng, &pool).to_string();
            for _ in 0..len {
                if rng.gen_bool(range_prob) {
                    let lo = rng.gen_range(0..20usize);
                    let hi = lo + rng.gen_range(1..6usize);
                    out.push('[');
                    out.push(ALNUM[lo] as char);
                    out.push('-');
                    out.push(ALNUM[hi.min(ALNUM.len() - 1)] as char);
                    out.push(']');
                } else {
                    out.push(ALNUM[rng.gen_range(0..ALNUM.len())] as char);
                }
            }
            out
        })
        .collect()
}

/// Regex-suite `ExactMatch`: plain literals.
pub fn exact_match_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let pool = prefix_pool(rng, 30, 4, ALNUM);
    (0..count)
        .map(|_| {
            let len = mixed_len(rng, (16, 51), (52, 78), 0.10);
            format!("{}{}", pick(rng, &pool), literal(rng, len, ALNUM))
        })
        .collect()
}

/// Bro HTTP signatures: short URI/header tokens with a few long ones.
pub fn bro_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let verbs = ["ge", "po", "he", "pu", "de", "op", "tr", "co"];
    (0..count)
        .map(|i| {
            let len = mixed_len(rng, (5, 15), (62, 80), 0.01);
            let path = literal(rng, len, ALNUM);
            format!("{}z{}", verbs[i % verbs.len()], path)
        })
        .collect()
}

/// TCP-stream signatures: medium literals, some with long counted gaps
/// (the suite's 391-state component comes from one such rule).
pub fn tcp_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let pool = prefix_pool(rng, 50, 9, ALNUM);
    (0..count)
        .map(|i| {
            if i == 0 {
                // the giant rule: header then a 380-symbol bounded wildcard
                format!("{}[^\\n]{{380}}{}", literal(rng, 5, ALNUM), literal(rng, 5, ALNUM))
            } else if i % 20 == 1 {
                let gap = rng.gen_range(40..90);
                format!("{}[^\\n]{{{gap}}}{}", literal(rng, 8, ALNUM), literal(rng, 8, ALNUM))
            } else {
                let len = rng.gen_range(5..29);
                format!("{}{}", pick(rng, &pool), literal(rng, len, ALNUM))
            }
        })
        .collect()
}

/// Snort-like content rules: literals, classes, `\d` runs and occasional
/// dotstar joins between two content strings.
pub fn snort_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let pool = prefix_pool(rng, 40, 13, ALNUM);
    (0..count)
        .map(|i| {
            let base = mixed_len(rng, (4, 20), (100, 190), 0.015);
            let mut out = format!("{}{}", pick(rng, &pool), literal(rng, base / 2, ALNUM));
            match i % 5 {
                0 => out.push_str(&format!(".*{}", literal(rng, base / 2, ALNUM))),
                1 => out.push_str(&format!("[0-9]{{{}}}", (base / 2).max(1))),
                2 => out.push_str(&format!("[a-f]{}", literal(rng, base / 2, ALNUM))),
                _ => out.push_str(&literal(rng, base / 2, ALNUM)),
            }
            out
        })
        .collect()
}

/// ClamAV virus signatures: hex-byte literals with counted wildcard gaps.
pub fn clamav_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let stub_pool: Vec<String> = (0..30)
        .map(|_| (0..14).map(|_| format!("\\x{:02x}", rng.gen_range(0u32..256))).collect())
        .collect();
    (0..count)
        .map(|_| {
            let len = mixed_len(rng, (26, 116), (286, 500), 0.03);
            let mut out = stub_pool[rng.gen_range(0..stub_pool.len())].clone();
            let mut emitted = 0usize;
            while emitted < len {
                if emitted > 0 && emitted + 8 < len && rng.gen_bool(0.02) {
                    let gap = rng.gen_range(2..6usize);
                    out.push_str(&format!(".{{{gap}}}"));
                    emitted += gap;
                } else {
                    out.push_str(&format!("\\x{:02x}", rng.gen_range(0u32..256)));
                    emitted += 1;
                }
            }
            out
        })
        .collect()
}

/// Mixed Dotstar corpus (the large `Dotstar` benchmark): per-pattern
/// dot probability drawn from {0, 0.03, 0.06, 0.09}.
pub fn dotstar_mixed_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let probs = [0.0, 0.03, 0.06, 0.09];
    let pool = prefix_pool(rng, 60, 21, ALNUM);
    (0..count)
        .flat_map(|i| {
            let p = probs[i % probs.len()];
            let mut one = dotstar_patterns_with_len(rng, 1, p, (2, 27), (28, 64), 0.05);
            for pat in one.iter_mut() {
                *pat = format!("{}{}", pick(rng, &pool), pat);
            }
            one
        })
        .collect()
}

fn dotstar_patterns_with_len(
    rng: &mut StdRng,
    count: usize,
    dot_prob: f64,
    short: (usize, usize),
    long: (usize, usize),
    frac_long: f64,
) -> Vec<String> {
    (0..count)
        .map(|_| {
            let len = mixed_len(rng, short, long, frac_long);
            let mut out = String::new();
            for i in 0..len {
                if i > 0 && dot_prob > 0.0 && rng.gen_bool(dot_prob) {
                    out.push_str(".*");
                }
                out.push(ALNUM[rng.gen_range(0..ALNUM.len())] as char);
            }
            out
        })
        .collect()
}

/// PowerEN-style patterns: short tokens with classes.
pub fn poweren_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let pool = prefix_pool(rng, 20, 2, ALNUM);
    (0..count)
        .map(|i| {
            let len = mixed_len(rng, (4, 16), (28, 44), 0.02);
            let prefix = pick(rng, &pool).to_string();
            if i % 3 == 0 {
                format!(
                    "{prefix}{}[0-9a-f]{}",
                    literal(rng, len / 2, ALNUM),
                    literal(rng, len / 2, ALNUM)
                )
            } else {
                format!("{prefix}{}", literal(rng, len, ALNUM))
            }
        })
        .collect()
}

/// Protomata: PROSITE-style protein motifs — residue classes, exact
/// residues and bounded `x(m,n)` gaps over the 20-letter alphabet.
pub fn protomata_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let pool = prefix_pool(rng, 100, 2, AMINO);
    (0..count)
        .map(|_| {
            let elements = mixed_len(rng, (7, 17), (73, 98), 0.01);
            let mut out = pick(rng, &pool).to_string();
            for _ in 0..elements {
                match rng.gen_range(0..10u32) {
                    0..=4 => out.push(AMINO[rng.gen_range(0..AMINO.len())] as char),
                    5..=7 => {
                        // residue class of 2-4 amino acids
                        let k = rng.gen_range(2..5usize);
                        out.push('[');
                        for _ in 0..k {
                            out.push(AMINO[rng.gen_range(0..AMINO.len())] as char);
                        }
                        out.push(']');
                    }
                    _ => {
                        // x(m,n) gap: any residues, bounded
                        let m = rng.gen_range(1..3usize);
                        let n = m + rng.gen_range(0..3usize);
                        if n == m {
                            out.push_str(&format!(".{{{m}}}"));
                        } else {
                            out.push_str(&format!(".{{{m},{n}}}"));
                        }
                    }
                }
            }
            out
        })
        .collect()
}

/// Fermi track triggers: short fixed-length hit-pattern literals.
pub fn fermi_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    (0..count).map(|_| literal(rng, 17, b"0123456789abcdef")).collect()
}

/// Brill tagging rules: two or three vocabulary words joined with spaces
/// plus a tag suffix. A shared vocabulary gives the space-optimized design
/// prefixes to merge, as in the paper.
pub fn brill_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let vocab: Vec<String> = (0..300)
        .map(|_| {
            let len = rng.gen_range(4..11);
            literal(rng, len, b"abcdefghijklmnopqrstuvwxyz")
        })
        .collect();
    let tags = ["nn", "vb", "jj", "rb", "dt", "in"];
    (0..count)
        .map(|i| {
            let tag = tags[i % tags.len()];
            // ~1% of rules are long five-word contexts (the suite's
            // 67-state components); the rest alternate two- and three-word
            // contexts.
            let words = if i % 97 == 0 {
                5
            } else if i % 2 == 0 {
                3
            } else {
                2
            };
            let mut rule = String::new();
            for w in 0..words {
                let word = if i % 97 == 0 {
                    // long words for the big rules
                    let len = rng.gen_range(10..13);
                    literal(rng, len, b"abcdefghijklmnopqrstuvwxyz")
                } else {
                    vocab[rng.gen_range(0..vocab.len())].clone()
                };
                if w > 0 {
                    rule.push(' ');
                }
                rule.push_str(&word);
            }
            format!("{rule} {tag}")
        })
        .collect()
}

/// Entity-resolution automata: every ordering of a person's three name
/// parts, separated by single spaces — one alternation per entity.
pub fn entity_resolution_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    (0..count)
        .map(|_| {
            // three parts whose lengths sum to ~14 -> 6*(14+2) = 96 states
            let l1 = rng.gen_range(3..7usize);
            let l2 = rng.gen_range(3..7usize);
            let l3 = 14usize.saturating_sub(l1 + l2).max(2);
            let p1 = literal(rng, l1, b"abcdefghijklmnopqrstuvwxyz");
            let p2 = literal(rng, l2, b"abcdefghijklmnopqrstuvwxyz");
            let p3 = literal(rng, l3, b"abcdefghijklmnopqrstuvwxyz");
            let orders = [
                format!("{p1} {p2} {p3}"),
                format!("{p1} {p3} {p2}"),
                format!("{p2} {p1} {p3}"),
                format!("{p2} {p3} {p1}"),
                format!("{p3} {p1} {p2}"),
                format!("{p3} {p2} {p1}"),
            ];
            orders.join("|")
        })
        .collect()
}

/// Sequential-pattern-mining automata: 3–4 item codes from a small shared
/// vocabulary separated by "any items until separator" gaps.
pub fn spm_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    let items: Vec<String> = (0..20).map(|i| format!("i{i:02}x")).collect();
    (0..count)
        .map(|i| {
            let k = if i % 2 == 0 { 3 } else { 4 };
            let picks: Vec<&str> =
                (0..k).map(|_| items[rng.gen_range(0..items.len())].as_str()).collect();
            picks.join("[^;]*;")
        })
        .collect()
}

/// Random-forest chains: one root-to-leaf decision path per tree leaf,
/// encoded as a 20-symbol feature-threshold string over a wide alphabet
/// (wide so prefixes rarely collide, matching the paper's observation that
/// RandomForest gains nothing from state merging).
pub fn random_forest_patterns(rng: &mut StdRng, count: usize) -> Vec<String> {
    (0..count).map(|_| literal(rng, 20, ALNUM)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::regex::compile_patterns;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn literals_draw_from_alphabet() {
        let s = literal(&mut rng(), 50, b"ab");
        assert_eq!(s.len(), 50);
        assert!(s.bytes().all(|b| b == b'a' || b == b'b'));
    }

    #[test]
    fn all_generators_produce_compilable_patterns() {
        let mut r = rng();
        for patterns in [
            dotstar_patterns(&mut r, 5, 0.06),
            ranges_patterns(&mut r, 5, 0.5),
            exact_match_patterns(&mut r, 5),
            bro_patterns(&mut r, 5),
            tcp_patterns(&mut r, 25),
            snort_patterns(&mut r, 10),
            clamav_patterns(&mut r, 4),
            dotstar_mixed_patterns(&mut r, 8),
            poweren_patterns(&mut r, 6),
            protomata_patterns(&mut r, 6),
            fermi_patterns(&mut r, 5),
            brill_patterns(&mut r, 6),
            entity_resolution_patterns(&mut r, 3),
            spm_patterns(&mut r, 6),
            random_forest_patterns(&mut r, 5),
        ] {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let nfa = compile_patterns(&refs).unwrap_or_else(|e| panic!("{e} in {:?}", &patterns));
            assert!(nfa.validate().is_ok());
        }
    }

    #[test]
    fn dotstar_probability_inserts_dots() {
        let mut r = rng();
        let none: usize =
            dotstar_patterns(&mut r, 20, 0.0).iter().map(|p| p.matches(".*").count()).sum();
        let some: usize =
            dotstar_patterns(&mut r, 20, 0.09).iter().map(|p| p.matches(".*").count()).sum();
        assert_eq!(none, 0);
        assert!(some > 10);
    }

    #[test]
    fn entity_resolution_has_six_orderings() {
        let p = entity_resolution_patterns(&mut rng(), 1);
        assert_eq!(p[0].matches('|').count(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = snort_patterns(&mut StdRng::seed_from_u64(3), 5);
        let b = snort_patterns(&mut StdRng::seed_from_u64(3), 5);
        assert_eq!(a, b);
        let c = snort_patterns(&mut StdRng::seed_from_u64(4), 5);
        assert_ne!(a, c);
    }

    #[test]
    fn fermi_components_are_17_states() {
        let p = fermi_patterns(&mut rng(), 3);
        let refs: Vec<&str> = p.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        assert_eq!(nfa.len(), 51);
    }
}
