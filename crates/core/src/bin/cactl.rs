//! `cactl` — command-line front-end for the Cache Automaton reproduction.
//!
//! ```text
//! cactl compile <rules> [--design P|S] [--slices N] [--pages OUT] [--out ARTIFACT]
//! cactl run     <rules> <input-file> [--design P|S] [--limit N] [--trace OUT] [--shards N]
//!                       [--metrics OUT]
//! cactl run     --program <artifact> <input-file> [--limit N] [--shards N] [--metrics OUT]
//! cactl inspect <rules> [--design P|S]
//! cactl anml    <rules>
//! cactl frompages <image.capg> <input-file>
//! cactl bench   <rules> <input-file> [--design P|S]
//! cactl mux     <rules> <input-file>... [--design P|S] [--workers N] [--metrics OUT]
//! cactl mux     --program <artifact> <input-file>... [--workers N] [--metrics OUT]
//! cactl serve   <rules> --listen <addr> [--design P|S] [--workers N] [--metrics OUT]
//! cactl connect --listen <addr> [<input-file>...] [--reload RULES] [--limit N]
//! cactl cache-serve --listen <addr> --cache-dir DIR [--metrics OUT]
//! cactl cache   <stats|clear> [--cache-dir DIR] [--remote <addr>]
//! cactl checkmetrics <metrics.jsonl>
//!
//! <rules> is either an ANML document (*.anml) or a newline-separated
//! regex pattern file (# comments allowed). Pattern i reports with code i.
//!
//! `mux` scans every input file (or FIFO) as an independent logical
//! stream through one ScanPool: streams are read incrementally, fed
//! concurrently, and multiplexed over `--workers` threads sharing a
//! bounded pool of recycled fabric instances.
//!
//! `compile --out` writes a versioned program artifact (.capr); `run
//! --program` loads one instead of compiling, so compilation and scanning
//! can happen in different processes (or on different days).
//!
//! `run --metrics OUT` streams telemetry (compile pass timings, scan
//! stripe spans, fabric activity counters) to OUT as JSON lines;
//! `checkmetrics` validates such a file against the schema.
//!
//! `--cache-dir DIR` (or the `CACHE_AUTOMATON_DIR` environment variable)
//! attaches a persistent disk tier to the compilation cache: any command
//! that compiles rules first looks for a previously stored artifact under
//! DIR and, on a miss, stores what it compiled so the *next* process
//! starts warm. `cache stats` summarizes what's on disk; `cache clear`
//! empties it.
//!
//! `--remote-cache ADDR` (or `CACHE_AUTOMATON_REMOTE`) chains a fleet
//! tier behind the disk tier: artifacts missing locally are fetched from
//! the cache peer at ADDR, and fresh compiles are pushed to it.
//! `cache-serve` runs that peer — a daemon answering CACHE_GET/CACHE_PUT
//! over the same wire protocol, backed by its own `--cache-dir`; `cache
//! stats --remote ADDR` asks a running peer for its request counters
//! instead of scanning a local directory.
//!
//! `serve` compiles the rules and answers the wire protocol on `--listen`
//! (`host:port` or `unix:<path>`) until killed; `connect` scans each
//! input file as one stream of a running daemon (`--reload RULES` hot-
//! swaps the daemon's rule set first, `--reload same` recompiles its
//! current rules). With no inputs, `connect` just prints daemon stats.
//! ```
//!
//! Exit codes are [`CaError::code`], shared with the daemon's wire-level
//! ERROR frames: 0 success, 2 usage/configuration, 3 i/o, 4 pattern or
//! ANML front-end, 5 mapping compiler, 6 artifact decode, 7 internal
//! (worker thread panic), 8 wire-protocol violation, 9 unsupported
//! request (e.g. cache frames sent to a scan daemon, or vice versa). An
//! error reported by a remote daemon exits with the code the daemon sent.

use ca_baselines::measure_cpu as ca_baselines_measure;
use cache_automaton::serve::daemon::nfa_from_rules_text;
use cache_automaton::{
    CaError, CacheAutomaton, CacheServer, Client, Daemon, DaemonOptions, Design, JsonLinesWriter,
    Parallelism, PoolOptions, Program, RunReport, ScanPool, Telemetry,
};
use std::fmt::Write as _;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("cactl: {err}");
            // One stable exit code per error class — the same table the
            // wire protocol uses — so scripts can branch on failure kind
            // without parsing stderr, locally or against a daemon.
            ExitCode::from(err.code())
        }
    }
}

fn io_err(path: &str, e: impl std::fmt::Display) -> CaError {
    CaError::Io(format!("{path}: {e}"))
}

struct Options {
    design: Design,
    slices: usize,
    pages_out: Option<String>,
    artifact_out: Option<String>,
    program_in: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    limit: usize,
    shards: Option<Parallelism>,
    workers: Option<usize>,
    listen: Option<String>,
    reload: Option<String>,
    cache_dir: Option<String>,
    remote_cache: Option<String>,
    remote: Option<String>,
    positional: Vec<String>,
}

fn parse_args(args: Vec<String>) -> Result<(String, Options), CaError> {
    let mut it = args.into_iter();
    let command = it.next().ok_or_else(|| CaError::Config(USAGE.to_string()))?;
    let mut opts = Options {
        design: Design::Performance,
        slices: 8,
        pages_out: None,
        artifact_out: None,
        program_in: None,
        trace_out: None,
        metrics_out: None,
        limit: 20,
        shards: None,
        workers: None,
        listen: None,
        reload: None,
        cache_dir: None,
        remote_cache: None,
        remote: None,
        positional: Vec::new(),
    };
    let bad = |msg: &str| CaError::Config(msg.to_string());
    let mut rest: Vec<String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--design" => {
                let v = rest.get(i + 1).ok_or_else(|| bad("--design needs P or S"))?;
                opts.design = match v.to_ascii_uppercase().as_str() {
                    "P" | "CA_P" | "PERFORMANCE" => Design::Performance,
                    "S" | "CA_S" | "SPACE" => Design::Space,
                    other => {
                        return Err(CaError::Config(format!(
                            "unknown design '{other}' (use P or S)"
                        )))
                    }
                };
                rest.drain(i..=i + 1);
            }
            "--slices" => {
                opts.slices = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("--slices needs a number"))?;
                rest.drain(i..=i + 1);
            }
            "--pages" => {
                opts.pages_out =
                    Some(rest.get(i + 1).ok_or_else(|| bad("--pages needs a path"))?.clone());
                rest.drain(i..=i + 1);
            }
            "--out" => {
                opts.artifact_out =
                    Some(rest.get(i + 1).ok_or_else(|| bad("--out needs a path"))?.clone());
                rest.drain(i..=i + 1);
            }
            "--program" => {
                opts.program_in =
                    Some(rest.get(i + 1).ok_or_else(|| bad("--program needs a path"))?.clone());
                rest.drain(i..=i + 1);
            }
            "--trace" => {
                opts.trace_out =
                    Some(rest.get(i + 1).ok_or_else(|| bad("--trace needs a path"))?.clone());
                rest.drain(i..=i + 1);
            }
            "--metrics" => {
                opts.metrics_out =
                    Some(rest.get(i + 1).ok_or_else(|| bad("--metrics needs a path"))?.clone());
                rest.drain(i..=i + 1);
            }
            "--limit" => {
                opts.limit = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("--limit needs a number"))?;
                rest.drain(i..=i + 1);
            }
            "--listen" => {
                opts.listen = Some(
                    rest.get(i + 1)
                        .ok_or_else(|| bad("--listen needs host:port or unix:<path>"))?
                        .clone(),
                );
                rest.drain(i..=i + 1);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(
                    rest.get(i + 1).ok_or_else(|| bad("--cache-dir needs a directory"))?.clone(),
                );
                rest.drain(i..=i + 1);
            }
            "--remote-cache" => {
                opts.remote_cache = Some(
                    rest.get(i + 1)
                        .ok_or_else(|| bad("--remote-cache needs host:port or unix:<path>"))?
                        .clone(),
                );
                rest.drain(i..=i + 1);
            }
            "--remote" => {
                opts.remote = Some(
                    rest.get(i + 1)
                        .ok_or_else(|| bad("--remote needs host:port or unix:<path>"))?
                        .clone(),
                );
                rest.drain(i..=i + 1);
            }
            "--reload" => {
                opts.reload = Some(
                    rest.get(i + 1)
                        .ok_or_else(|| bad("--reload needs a rules file or 'same'"))?
                        .clone(),
                );
                rest.drain(i..=i + 1);
            }
            "--workers" => {
                opts.workers = Some(
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("--workers needs a number"))?,
                );
                rest.drain(i..=i + 1);
            }
            "--shards" => {
                let v = rest.get(i + 1).ok_or_else(|| bad("--shards needs a number or 'auto'"))?;
                opts.shards = Some(if v == "auto" {
                    Parallelism::Auto
                } else {
                    Parallelism::Threads(
                        v.parse().map_err(|_| bad("--shards needs a number or 'auto'"))?,
                    )
                });
                rest.drain(i..=i + 1);
            }
            flag if flag.starts_with("--") => {
                return Err(CaError::Config(format!("unknown flag {flag}")))
            }
            _ => {
                opts.positional.push(rest[i].clone());
                i += 1;
            }
        }
    }
    Ok((command, opts))
}

const USAGE: &str = "usage: cactl <compile|run|mux|serve|connect|cache-serve|cache|inspect|anml|\
                     frompages|bench|checkmetrics> <rules> [args] (see --help in the crate docs)";

fn load_rules_text(path: &str) -> Result<String, CaError> {
    std::fs::read_to_string(path).map_err(|e| io_err(path, e))
}

fn load_nfa(path: &str) -> Result<cache_automaton::HomNfa, CaError> {
    let text = load_rules_text(path)?;
    // Same front-end the daemon applies to RELOAD payloads (ANML sniffed
    // by content), so a file served locally and a file pushed over the
    // wire compile identically.
    nfa_from_rules_text(&text).map_err(|e| match e {
        CaError::Config(msg) => CaError::Config(format!("{path}: {msg}")),
        other => other,
    })
}

fn compile_program(opts: &Options, path: &str, telemetry: &Telemetry) -> Result<Program, CaError> {
    let nfa = load_nfa(path)?;
    configured_builder(opts, telemetry).build().compile_nfa(&nfa)
}

/// The builder every compiling command shares: design, slices, telemetry,
/// and — when `--cache-dir` / `--remote-cache` were given — the
/// persistent disk and fleet tiers. Without the flags the builder still
/// honors `CACHE_AUTOMATON_DIR` and `CACHE_AUTOMATON_REMOTE` on its own.
fn configured_builder(opts: &Options, telemetry: &Telemetry) -> cache_automaton::Builder {
    let mut builder = CacheAutomaton::builder()
        .design(opts.design)
        .slices(opts.slices)
        .telemetry_handle(telemetry.clone());
    if let Some(dir) = &opts.cache_dir {
        builder = builder.disk_cache(dir);
    }
    if let Some(addr) = &opts.remote_cache {
        builder = builder.remote_cache(addr);
    }
    builder
}

/// Opens the `--metrics` sink if requested, else a disabled handle whose
/// event calls compile down to a single predictable branch.
fn open_metrics(opts: &Options) -> Result<Telemetry, CaError> {
    match &opts.metrics_out {
        Some(path) => {
            let writer = JsonLinesWriter::create(path).map_err(|e| io_err(path, e))?;
            Ok(Telemetry::new(writer))
        }
        None => Ok(Telemetry::disabled()),
    }
}

fn read_input(path: &str) -> Result<Vec<u8>, CaError> {
    std::fs::read(path).map_err(|e| io_err(path, e))
}

fn run(args: Vec<String>) -> Result<String, CaError> {
    let (command, opts) = parse_args(args)?;
    let telemetry = open_metrics(&opts)?;
    let mut out = String::new();
    match command.as_str() {
        "compile" => {
            let [rules] = opts.positional.as_slice() else {
                return Err(CaError::Config("compile needs exactly one rules file".into()));
            };
            let program = compile_program(&opts, rules, &telemetry)?;
            let s = program.stats();
            let _ = writeln!(out, "design            : {}", program.design());
            let _ = writeln!(out, "states            : {}", s.states);
            let _ = writeln!(out, "components        : {}", s.connected_components);
            let _ = writeln!(out, "partitions        : {}", s.partitions_used);
            let _ = writeln!(out, "cache utilization : {:.3} MB", program.utilization_mb());
            let _ = writeln!(out, "G1 / G4 routes    : {} / {}", s.g1_routes, s.g4_routes);
            let _ = writeln!(out, "peak throughput   : {} Gb/s", program.throughput_gbps());
            let _ = writeln!(
                out,
                "pass timings      : plan {:.2} ms, place {:.2} ms, emit {:.2} ms, validate {:.2} ms",
                s.timings.plan_ms, s.timings.place_ms, s.timings.emit_ms, s.timings.validate_ms
            );
            let image = ca_sim::emit_pages(&program.compiled().bitstream);
            let _ = writeln!(
                out,
                "config image      : {} pages, {} KB, loads in {:.3} ms",
                image.pages.len(),
                image.total_bytes() / 1024,
                image.config_time_ms()
            );
            if let Some(path) = &opts.pages_out {
                write_pages(&image, path)?;
                let _ = writeln!(out, "pages written     : {path}");
            }
            if let Some(path) = &opts.artifact_out {
                program.save(path).map_err(|e| match e {
                    CaError::Io(msg) => CaError::Io(format!("{path}: {msg}")),
                    other => other,
                })?;
                let _ = writeln!(out, "artifact written  : {path}");
            }
        }
        "run" => {
            let (program, input) = if let Some(artifact) = &opts.program_in {
                let [input_path] = opts.positional.as_slice() else {
                    return Err(CaError::Config(
                        "run --program needs exactly one input file".into(),
                    ));
                };
                let mut program = Program::load(artifact)?;
                // loaded artifacts carry a disabled handle; attach the sink
                program.set_telemetry(telemetry.clone());
                (program, read_input(input_path)?)
            } else {
                let [rules, input_path] = opts.positional.as_slice() else {
                    return Err(CaError::Config("run needs a rules file and an input file".into()));
                };
                (compile_program(&opts, rules, &telemetry)?, read_input(input_path)?)
            };
            let report = if let Some(trace_path) = &opts.trace_out {
                // per-cycle trace alongside the scan
                let mut fabric = program.compiled().fabric().map_err(|e| io_err(trace_path, e))?;
                let file = std::fs::File::create(trace_path).map_err(|e| io_err(trace_path, e))?;
                let mut sink = std::io::BufWriter::new(file);
                let exec = fabric
                    .run_traced(&input, &ca_sim::RunOptions::default(), &mut sink)
                    .map_err(|e| io_err(trace_path, e))?;
                let _ = writeln!(out, "cycle trace written  : {trace_path}");
                // reuse the architectural reporting path for consistency
                let mut r = program.run(&input);
                r.matches = exec.events;
                r
            } else if let Some(parallelism) = opts.shards {
                // sharded parallel scan: stripes on concurrent fabric
                // instances, stitched into a serial-identical match list
                program.run_parallel(&input, parallelism)?
            } else {
                // stream the file through a scan session in FIFO-refill
                // sized chunks — what a deployed driver would do
                let mut scanner = program.scanner();
                for chunk in input.chunks(ca_sim::fabric::FIFO_REFILL_BYTES) {
                    scanner.feed(chunk);
                }
                scanner.finish()
            };
            let _ = writeln!(
                out,
                "scanned {} bytes: {} matches, {} interrupts",
                input.len(),
                report.matches.len(),
                report.exec.output_interrupts
            );
            for m in report.matches.iter().take(opts.limit) {
                let _ = writeln!(out, "  pattern {:>4} @ byte {}", m.code.0, m.pos);
            }
            if report.matches.len() > opts.limit {
                let _ = writeln!(out, "  ... {} more", report.matches.len() - opts.limit);
            }
            let _ = writeln!(
                out,
                "simulated: {:.3} ms at {} Gb/s | {:.3} nJ/symbol, {:.2} W avg",
                report.simulated_seconds * 1e3,
                program.throughput_gbps(),
                report.energy.per_symbol_nj,
                report.energy.avg_power_w
            );
            if let Some(path) = &opts.metrics_out {
                telemetry.flush();
                let _ = writeln!(out, "metrics written      : {path}");
            }
        }
        "mux" => {
            let (program, inputs) = if let Some(artifact) = &opts.program_in {
                if opts.positional.is_empty() {
                    return Err(CaError::Config(
                        "mux --program needs at least one input file".into(),
                    ));
                }
                let mut program = Program::load(artifact)?;
                program.set_telemetry(telemetry.clone());
                (program, opts.positional.clone())
            } else {
                let Some((rules, inputs)) = opts.positional.split_first() else {
                    return Err(CaError::Config(
                        "mux needs a rules file and at least one input file".into(),
                    ));
                };
                if inputs.is_empty() {
                    return Err(CaError::Config("mux needs at least one input file".into()));
                }
                (compile_program(&opts, rules, &telemetry)?, inputs.to_vec())
            };
            let workers = opts.workers.unwrap_or_else(|| {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                cores.min(inputs.len()).max(1)
            });
            let pool = ScanPool::new(&program, PoolOptions { workers, ..PoolOptions::default() })?;
            let started = std::time::Instant::now();
            // One feeder thread per input: each reads its file (or FIFO)
            // incrementally and feeds its own logical stream; the pool
            // multiplexes the scans over the shared workers and fabrics.
            let results: Vec<Result<(RunReport, u64), CaError>> = std::thread::scope(|scope| {
                let feeders: Vec<_> = inputs
                    .iter()
                    .map(|path| {
                        let stream = pool.open_stream();
                        scope.spawn(move || -> Result<(RunReport, u64), CaError> {
                            let mut stream = stream?;
                            let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
                            let mut reader = std::io::BufReader::new(file);
                            let mut buf = vec![0u8; 64 * 1024];
                            let mut total = 0u64;
                            loop {
                                let n = reader.read(&mut buf).map_err(|e| io_err(path, e))?;
                                if n == 0 {
                                    break;
                                }
                                total += n as u64;
                                stream.feed(&buf[..n])?;
                            }
                            Ok((stream.finish()?, total))
                        })
                    })
                    .collect();
                feeders
                    .into_iter()
                    .map(|handle| {
                        handle.join().unwrap_or_else(|_| {
                            Err(CaError::Internal("mux feeder thread panicked".into()))
                        })
                    })
                    .collect()
            });
            let wall = started.elapsed();
            pool.shutdown()?;
            let mut total_bytes = 0u64;
            let mut total_matches = 0usize;
            let mut simulated_max = 0.0f64;
            for (path, result) in inputs.iter().zip(results) {
                let (report, bytes) = result?;
                total_bytes += bytes;
                total_matches += report.matches.len();
                simulated_max = simulated_max.max(report.simulated_seconds);
                let _ = writeln!(
                    out,
                    "stream {path}: {bytes} bytes, {} matches, {:.3} ms simulated",
                    report.matches.len(),
                    report.simulated_seconds * 1e3
                );
            }
            let wall_s = wall.as_secs_f64();
            let _ = writeln!(
                out,
                "aggregate: {} streams x{workers} workers | {total_bytes} bytes, \
                 {total_matches} matches | wall {:.1} ms ({:.2} MB/s) | simulated makespan {:.3} ms",
                inputs.len(),
                wall_s * 1e3,
                total_bytes as f64 / wall_s.max(1e-12) / 1e6,
                simulated_max * 1e3
            );
            if let Some(path) = &opts.metrics_out {
                telemetry.flush();
                let _ = writeln!(out, "metrics written      : {path}");
            }
        }
        "serve" => {
            let [rules] = opts.positional.as_slice() else {
                return Err(CaError::Config("serve needs exactly one rules file".into()));
            };
            let addr = opts.listen.as_deref().ok_or_else(|| {
                CaError::Config("serve needs --listen host:port or unix:<path>".into())
            })?;
            let workers = opts
                .workers
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
            let ca = configured_builder(&opts, &telemetry).build();
            let rules_text = load_rules_text(rules)?;
            let options = DaemonOptions { pool: PoolOptions { workers, ..PoolOptions::default() } };
            let daemon = Daemon::bind(&ca, &rules_text, addr, options)?;
            // Announce before blocking — scripts wait for this line to
            // know the socket is ready.
            println!(
                "serving {rules} on {} ({workers} workers, generation 0)",
                daemon.local_addr()
            );
            let _ = std::io::Write::flush(&mut std::io::stdout());
            daemon.wait();
        }
        "connect" => {
            let addr = opts.listen.as_deref().ok_or_else(|| {
                CaError::Config("connect needs --listen host:port or unix:<path>".into())
            })?;
            let mut client = Client::connect(addr)?;
            if let Some(reload) = &opts.reload {
                // `--reload same` recompiles the daemon's current rules —
                // a generation bump to an identical program.
                let rules_text =
                    if reload == "same" { None } else { Some(load_rules_text(reload)?) };
                let generation = client.reload(rules_text.as_deref())?;
                let _ = writeln!(out, "reloaded: generation {generation}");
            }
            let mut total_bytes = 0u64;
            let mut total_matches = 0usize;
            for path in &opts.positional {
                let (stream, generation) = client.open_stream()?;
                let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
                let mut reader = std::io::BufReader::new(file);
                let mut buf = vec![0u8; 64 * 1024];
                let mut bytes = 0u64;
                let mut live = 0usize;
                loop {
                    let n = reader.read(&mut buf).map_err(|e| io_err(path, e))?;
                    if n == 0 {
                        break;
                    }
                    bytes += n as u64;
                    client.feed(stream, &buf[..n])?;
                    // Drain matches as the stream scans; the FINISH report
                    // still carries the complete, ordered event list.
                    live += client.poll_matches(stream)?.len();
                }
                live += client.poll_matches(stream)?.len();
                let report = client.finish(stream)?;
                total_bytes += bytes;
                total_matches += report.events.len();
                let _ = writeln!(
                    out,
                    "stream {path}: {bytes} bytes, {} matches, {live} delivered live \
                     (generation {generation})",
                    report.events.len()
                );
                for m in report.events.iter().take(opts.limit) {
                    let _ = writeln!(out, "  pattern {:>4} @ byte {}", m.code.0, m.pos);
                }
                if report.events.len() > opts.limit {
                    let _ = writeln!(out, "  ... {} more", report.events.len() - opts.limit);
                }
            }
            if !opts.positional.is_empty() {
                let _ = writeln!(
                    out,
                    "aggregate: {} streams, {total_bytes} bytes, {total_matches} matches",
                    opts.positional.len()
                );
            }
            let stats = client.stats()?;
            let _ = writeln!(
                out,
                "daemon: generation {}, {} reloads, {} streams served, {} live streams, \
                 {} connections",
                stats.generation,
                stats.reloads,
                stats.streams_served,
                stats.live_streams,
                stats.connections
            );
        }
        "inspect" => {
            let [rules] = opts.positional.as_slice() else {
                return Err(CaError::Config("inspect needs exactly one rules file".into()));
            };
            let program = compile_program(&opts, rules, &telemetry)?;
            let bs = &program.compiled().bitstream;
            let _ = writeln!(out, "{} partitions, {} routes", bs.partitions.len(), bs.routes.len());
            for (i, p) in bs.partitions.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  partition {i:>3} @ {} : {:>3} STEs, {:>2} starts, {:>2} reports, {} import ports",
                    p.location,
                    p.ste_count(),
                    p.start_all.count() + p.start_sod.count(),
                    p.reports.len(),
                    p.import_dest.len()
                );
            }
            for r in bs.routes.iter().take(opts.limit) {
                let _ = writeln!(
                    out,
                    "  route p{}:{} --{}--> p{} port {}",
                    r.src_partition, r.src_ste, r.via, r.dst_partition, r.dst_port
                );
            }
        }
        "bench" => {
            let [rules, input_path] = opts.positional.as_slice() else {
                return Err(CaError::Config("bench needs a rules file and an input file".into()));
            };
            let nfa = load_nfa(rules)?;
            let input = read_input(input_path)?;
            let program = compile_program(&opts, rules, &telemetry)?;
            // measured host CPU (VASim-style sparse engine)
            let cpu = ca_baselines_measure(&nfa, &input);
            // simulated hardware
            let report = program.run(&input);
            let hw_gbps = program.throughput_gbps();
            let _ = writeln!(out, "input               : {} bytes", input.len());
            let _ = writeln!(
                out,
                "host CPU (measured) : {:.4} Gb/s ({} matches in {:.3} ms)",
                cpu.throughput_gbps(),
                cpu.matches,
                cpu.seconds * 1e3
            );
            let _ = writeln!(
                out,
                "{} (simulated)    : {:.1} Gb/s ({} matches in {:.3} ms)",
                program.design(),
                hw_gbps,
                report.matches.len(),
                report.simulated_seconds * 1e3
            );
            let _ = writeln!(
                out,
                "speedup             : {:.0}x",
                hw_gbps / cpu.throughput_gbps().max(1e-12)
            );
        }
        "frompages" => {
            let [pages_path, input_path] = opts.positional.as_slice() else {
                return Err(CaError::Config(
                    "frompages needs a .capg file and an input file".into(),
                ));
            };
            let bytes = read_input(pages_path)?;
            let image =
                ca_sim::ConfigImage::from_capg_bytes(&bytes).map_err(|e| io_err(pages_path, e))?;
            let bitstream = ca_sim::load_pages(&image).map_err(|e| io_err(pages_path, e))?;
            let mut fabric = ca_sim::Fabric::new(&bitstream).map_err(|e| io_err(pages_path, e))?;
            let input = read_input(input_path)?;
            let report = fabric.run(&input);
            let _ = writeln!(
                out,
                "loaded {} partitions / {} routes from pages; scanned {} bytes: {} matches",
                bitstream.partitions.len(),
                bitstream.routes.len(),
                input.len(),
                report.events.len()
            );
            for m in report.events.iter().take(opts.limit) {
                let _ = writeln!(out, "  pattern {:>4} @ byte {}", m.code.0, m.pos);
            }
        }
        "cache-serve" => {
            if !opts.positional.is_empty() {
                return Err(CaError::Config("cache-serve takes no positional arguments".into()));
            }
            let addr = opts.listen.as_deref().ok_or_else(|| {
                CaError::Config("cache-serve needs --listen host:port or unix:<path>".into())
            })?;
            let dir = opts
                .cache_dir
                .clone()
                .or_else(|| {
                    std::env::var(cache_automaton::CACHE_DIR_ENV).ok().filter(|v| !v.is_empty())
                })
                .ok_or_else(|| {
                    CaError::Config(format!(
                        "cache-serve needs --cache-dir DIR or {} set",
                        cache_automaton::CACHE_DIR_ENV
                    ))
                })?;
            let server = CacheServer::bind_with_telemetry(addr, &dir, telemetry.clone())?;
            // Announce before blocking — scripts wait for this line to
            // know the socket is ready.
            println!("cache peer serving {dir} on {}", server.local_addr());
            let _ = std::io::Write::flush(&mut std::io::stdout());
            server.wait();
        }
        "cache" => {
            let action = match opts.positional.as_slice() {
                [] => "stats",
                [action] => action.as_str(),
                _ => return Err(CaError::Config("cache takes one action: stats or clear".into())),
            };
            // `--remote` redirects `stats` at a running cache peer: the
            // counters come back over a CACHE_STATS frame instead of a
            // local directory scan.
            if let Some(addr) = &opts.remote {
                if action != "stats" {
                    return Err(CaError::Config(
                        "--remote only supports the stats action (clear is local-only)".into(),
                    ));
                }
                let mut client = Client::connect(addr)?;
                let s = client.cache_stats()?;
                let _ = writeln!(out, "cache peer   : {addr}");
                let _ = writeln!(
                    out,
                    "requests     : {} hits, {} misses, {} puts",
                    s.hits, s.misses, s.puts
                );
                let _ = writeln!(out, "rejected puts: {}", s.rejected);
                let _ = writeln!(
                    out,
                    "bytes        : {} served, {} stored",
                    s.bytes_served, s.bytes_stored
                );
                let _ = writeln!(
                    out,
                    "artifacts    : {} ({:.3} MB on disk)",
                    s.entries,
                    s.disk_bytes as f64 / (1024.0 * 1024.0)
                );
                return Ok(out);
            }
            // Resolve the root exactly as the Builder would: explicit flag
            // first, then the environment.
            let dir = opts
                .cache_dir
                .clone()
                .or_else(|| {
                    std::env::var(cache_automaton::CACHE_DIR_ENV).ok().filter(|v| !v.is_empty())
                })
                .ok_or_else(|| {
                    CaError::Config(format!(
                        "cache needs --cache-dir DIR or {} set",
                        cache_automaton::CACHE_DIR_ENV
                    ))
                })?;
            let disk = cache_automaton::DiskCache::new(&dir);
            match action {
                "stats" => {
                    let (entries, bytes) = disk.scan().map_err(|e| io_err(&dir, e))?;
                    let _ = writeln!(out, "cache root : {dir}");
                    let _ = writeln!(
                        out,
                        "artifacts  : {entries} ({:.3} MB)",
                        bytes as f64 / (1024.0 * 1024.0)
                    );
                }
                "clear" => {
                    disk.clear().map_err(|e| io_err(&dir, e))?;
                    let _ = writeln!(out, "cleared {dir}");
                }
                other => {
                    return Err(CaError::Config(format!(
                        "unknown cache action '{other}' (use stats or clear)"
                    )))
                }
            }
        }
        "checkmetrics" => {
            let [path] = opts.positional.as_slice() else {
                return Err(CaError::Config("checkmetrics needs exactly one metrics file".into()));
            };
            let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
            let summary = cache_automaton::telemetry::validate_jsonl(&text)
                .map_err(|e| CaError::Config(format!("{path}: invalid metrics stream: {e}")))?;
            let _ = writeln!(
                out,
                "{path}: {} events ok ({} counters, {} gauges, {} spans, {} logs)",
                summary.total(),
                summary.counters,
                summary.gauges,
                summary.spans,
                summary.logs
            );
        }
        "anml" => {
            let [rules] = opts.positional.as_slice() else {
                return Err(CaError::Config("anml needs exactly one rules file".into()));
            };
            let nfa = load_nfa(rules)?;
            out = ca_automata::anml::to_anml(&nfa, "cactl");
        }
        _ => return Err(CaError::Config(USAGE.into())),
    }
    Ok(out)
}

/// Writes a config image to disk in the `.capg` framed format.
fn write_pages(image: &ca_sim::ConfigImage, path: &str) -> Result<(), CaError> {
    std::fs::write(path, image.to_capg_bytes()).map_err(|e| io_err(path, e))
}
