//! The unified streaming-session lifecycle.
//!
//! Three front-ends consume the same logical stream lifecycle — feed
//! chunks, drain matches incrementally, finish for the final report:
//!
//! * [`Scanner`](crate::Scanner) — one dedicated fabric, in-process;
//! * [`StreamHandle`](crate::StreamHandle) — a [`ScanPool`](crate::ScanPool)
//!   stream multiplexed over shared workers;
//! * the serving daemon ([`serve::daemon`](crate::serve::daemon)) — a
//!   network stream mapped onto a pool stream.
//!
//! Historically `Scanner::feed` was infallible and returned the chunk's
//! matches while `StreamHandle::feed` was fallible and queueing, so code
//! generic over "a session" could not exist. [`Session`] ends that drift:
//! `feed` is fallible (in-process scanners simply never fail),
//! `poll_matches` is the one incremental delivery path (borrowing from a
//! reusable buffer — no per-call allocation), and `finish` is fallible and
//! returns the final [`RunReport`].
//!
//! # Examples
//!
//! Code written against the trait runs unchanged over a dedicated scanner
//! or a pooled stream:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, PoolOptions, ScanPool, Session};
//!
//! fn drive(mut session: impl Session) -> Result<usize, cache_automaton::CaError> {
//!     let mut seen = 0;
//!     for chunk in [b"the rain in sp".as_slice(), b"ain"] {
//!         session.feed(chunk)?;
//!         seen += session.poll_matches().len();
//!     }
//!     let report = session.finish()?;
//!     assert!(report.matches.len() >= seen);
//!     Ok(report.matches.len())
//! }
//!
//! let program = CacheAutomaton::new().compile_patterns(&["spain"])?;
//! assert_eq!(drive(program.scanner())?, 1);
//! let pool = ScanPool::new(&program, PoolOptions::default())?;
//! assert_eq!(drive(pool.open_stream()?)?, 1);
//! pool.shutdown()?;
//! # Ok(())
//! # }
//! ```

use crate::{CaError, MatchEvent, RunReport};

/// One logical scan stream: feed chunks, poll matches, finish.
///
/// The contract every implementation upholds:
///
/// * **Chunking is invisible.** Feeding a stream in any segmentation
///   yields the same matches (absolute stream offsets) and the same final
///   [`RunReport`] as one monolithic scan.
/// * **`poll_matches` delivers each event exactly once**, in feed order,
///   borrowing from a buffer the session reuses across calls. Events not
///   polled are still present — sorted and deduplicated — in the final
///   report's `matches`.
/// * **`finish` is the only way to observe the stream's report**; it
///   waits for any queued work to drain first.
///
/// `feed` and `finish` are fallible because multiplexed implementations
/// ([`StreamHandle`](crate::StreamHandle), network sessions) can fail
/// mid-stream; the in-process [`Scanner`](crate::Scanner) never returns an
/// error from either.
pub trait Session {
    /// Scans (or queues) the next chunk of the stream. Positions reported
    /// for it are absolute within the logical stream. An empty chunk is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Implementation-specific; [`Scanner`](crate::Scanner) never fails,
    /// pooled/network streams surface [`CaError`] once their backend is
    /// lost or shut down.
    fn feed(&mut self, chunk: &[u8]) -> Result<(), CaError>;

    /// Matches reported since the previous call (or since the stream
    /// opened), in feed order with absolute stream positions. Borrows from
    /// a reusable internal buffer — polling an idle stream allocates
    /// nothing.
    fn poll_matches(&mut self) -> &[MatchEvent];

    /// Ends the session: waits for queued work, renders the accumulated
    /// activity, and returns the final report with *all* matches (sorted,
    /// deduplicated) regardless of what was already polled.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see [`feed`](Session::feed).
    fn finish(self) -> Result<RunReport, CaError>
    where
        Self: Sized;
}
