//! Serializable program artifacts: compile once, run anywhere (on this
//! fabric).
//!
//! A [`Program`] artifact wraps the versioned bitstream encoding from
//! [`ca_sim::artifact`] with the program-level metadata needed to
//! reconstruct an identical [`Program`] in a fresh process: mapping
//! statistics and the state → (partition, column) map. Pipeline timings
//! are diagnostic and deliberately not serialized — a loaded program's
//! [`MappingStats`] compares equal to the compiling
//! process's because equality excludes timings.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    [u8; 4]   "CAPR"
//! version  u16       PROGRAM_ARTIFACT_VERSION
//! reserved u16       zero
//! checksum u64       FNV-1a 64 over the payload
//! len      u64       payload length in bytes
//! payload:
//!   stats      10 × u64   states, components, largest_cc, partitions,
//!                         utilization, g1, g4, kway, retries, seed
//!   state_map  u32 count, then (u32 partition, u8 column) per state
//!   bitstream  u64 length, then a ca-sim "CAAR" artifact blob
//! ```
//!
//! The embedded bitstream blob carries its own magic, version, design tag
//! and checksum, so corruption is caught at whichever layer it hits.

use crate::{CaError, CompiledAutomaton, MappingStats, Program};
use ca_compiler::PassTimings;
use ca_sim::{fnv1a_64, ArtifactError, Bitstream};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening a program artifact.
pub const PROGRAM_ARTIFACT_MAGIC: &[u8; 4] = b"CAPR";

/// Current program-artifact format version.
///
/// Decoders reject other versions ([`ArtifactError::UnsupportedVersion`]);
/// compatible extensions must bump this and keep decoding old versions.
pub const PROGRAM_ARTIFACT_VERSION: u16 = 1;

/// Monotonic discriminator for temp-file names, so concurrent writers in
/// one process never collide.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Durably writes `bytes` to `path`: the data lands in a uniquely named
/// temp file *in the target directory* (rename across filesystems is not
/// atomic), is flushed with `sync_all`, then atomically renamed into
/// place. A crash at any point leaves either the old file or the new one —
/// never a torn artifact. The temp file is cleaned up on failure.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp_name = std::ffi::OsString::from(format!(
        ".{}.{}.tmp-",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    tmp_name.push(name);
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        if self.bytes.len() - self.pos < n {
            return Err(ArtifactError::Malformed(format!("truncated while reading {what}")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| ArtifactError::Malformed(format!("{what} {v} exceeds usize")))
    }
}

fn encode_program(program: &Program) -> Vec<u8> {
    let stats = &program.compiled.stats;
    let mut payload = Vec::new();
    for v in [
        stats.states,
        stats.connected_components,
        stats.largest_cc,
        stats.partitions_used,
        stats.utilization_bytes,
        stats.g1_routes,
        stats.g4_routes,
        stats.kway_invocations,
        stats.retries,
    ] {
        push_u64(&mut payload, v as u64);
    }
    push_u64(&mut payload, stats.seed);
    push_u32(&mut payload, program.compiled.state_map.len() as u32);
    for &(pid, col) in &program.compiled.state_map {
        push_u32(&mut payload, pid);
        payload.push(col);
    }
    let blob = program.compiled.bitstream.encode();
    push_u64(&mut payload, blob.len() as u64);
    payload.extend_from_slice(&blob);

    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(PROGRAM_ARTIFACT_MAGIC);
    out.extend_from_slice(&PROGRAM_ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    push_u64(&mut out, fnv1a_64(&payload));
    push_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn decode_program(bytes: &[u8]) -> Result<Program, ArtifactError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4, "magic")? != PROGRAM_ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2, "version")?.try_into().expect("2 bytes"));
    if version != PROGRAM_ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    r.take(2, "reserved")?;
    let stored = r.u64("checksum")?;
    let len = r.usize("payload length")?;
    let payload = r.take(len, "payload")?;
    if r.pos != bytes.len() {
        return Err(ArtifactError::Malformed(format!(
            "{} trailing bytes after payload",
            bytes.len() - r.pos
        )));
    }
    let computed = fnv1a_64(payload);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader { bytes: payload, pos: 0 };
    let mut fields = [0u64; 9];
    for (field, what) in fields.iter_mut().zip([
        "states",
        "connected components",
        "largest cc",
        "partitions used",
        "utilization bytes",
        "g1 routes",
        "g4 routes",
        "kway invocations",
        "retries",
    ]) {
        *field = r.u64(what)?;
    }
    let seed = r.u64("seed")?;
    let stats = MappingStats {
        states: fields[0] as usize,
        connected_components: fields[1] as usize,
        largest_cc: fields[2] as usize,
        partitions_used: fields[3] as usize,
        utilization_bytes: fields[4] as usize,
        g1_routes: fields[5] as usize,
        g4_routes: fields[6] as usize,
        kway_invocations: fields[7] as usize,
        retries: fields[8] as usize,
        seed,
        timings: PassTimings::default(),
    };
    let map_len = r.u32("state map length")? as usize;
    if map_len != stats.states {
        return Err(ArtifactError::Malformed(format!(
            "state map covers {map_len} states but stats claim {}",
            stats.states
        )));
    }
    let mut state_map = Vec::with_capacity(map_len);
    for _ in 0..map_len {
        let pid = r.u32("state map partition")?;
        let col = r.u8("state map column")?;
        state_map.push((pid, col));
    }
    let blob_len = r.usize("bitstream length")?;
    let blob = r.take(blob_len, "bitstream blob")?;
    if r.pos != payload.len() {
        return Err(ArtifactError::Malformed("payload longer than its contents".into()));
    }
    let bitstream = Bitstream::decode(blob)?;
    if bitstream.partitions.len() != stats.partitions_used {
        return Err(ArtifactError::Malformed(format!(
            "bitstream has {} partitions but stats claim {}",
            bitstream.partitions.len(),
            stats.partitions_used
        )));
    }
    for &(pid, _) in &state_map {
        if pid as usize >= bitstream.partitions.len() {
            return Err(ArtifactError::Malformed(format!(
                "state map references partition {pid} of {}",
                bitstream.partitions.len()
            )));
        }
    }
    let design = bitstream.design;
    Ok(Program {
        design,
        timing: ca_sim::design_timing(design),
        compiled: CompiledAutomaton { bitstream, stats, state_map },
        telemetry: ca_telemetry::Telemetry::disabled(),
    })
}

impl Program {
    /// Serializes the program to its versioned binary artifact.
    ///
    /// Canonical: equal programs produce byte-identical artifacts, so a
    /// round-trip through [`Program::from_bytes`] re-encodes to the same
    /// bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_program(self)
    }

    /// Reconstructs a program from artifact bytes.
    ///
    /// # Errors
    ///
    /// [`CaError::Artifact`] for wrong magic, an unsupported version, a
    /// checksum mismatch, or structural damage (in the program framing or
    /// the embedded bitstream blob).
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, CaError> {
        decode_program(bytes).map_err(CaError::Artifact)
    }

    /// Writes the program artifact to `path` durably: the bytes go to a
    /// temp file in the target directory, are `sync_all`ed, and are then
    /// atomically renamed into place — a crash mid-save can never leave a
    /// torn `CAPR` file where readers expect a whole one.
    ///
    /// # Errors
    ///
    /// [`CaError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CaError> {
        write_atomic(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// Loads a program artifact previously written by [`Program::save`].
    ///
    /// # Errors
    ///
    /// [`CaError::Io`] on filesystem failure, [`CaError::Artifact`] if the
    /// bytes are not a valid program artifact.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Program, CaError> {
        Program::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn sample() -> Program {
        CacheAutomaton::new().compile_patterns(&["art[io]fact", "save", "lo+ad"]).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let program = sample();
        let bytes = program.to_bytes();
        let loaded = Program::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.design(), program.design());
        assert_eq!(loaded.stats(), program.stats());
        assert_eq!(loaded.compiled(), program.compiled());
        // canonical: re-encoding is byte-identical
        assert_eq!(loaded.to_bytes(), bytes);
        // and it runs identically
        let input = b"save the artifact, loooad the artofact";
        let a = program.run(input);
        let b = loaded.run(input);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.exec.cycles, b.exec.cycles);
    }

    #[test]
    fn save_load_files() {
        let dir = std::env::temp_dir().join("ca-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.capr");
        let program = sample();
        program.save(&path).unwrap();
        let loaded = Program::load(&path).unwrap();
        assert_eq!(loaded.compiled(), program.compiled());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_litter() {
        let dir = std::env::temp_dir().join("ca-artifact-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.capr");
        // pre-existing garbage at the destination is replaced wholesale
        std::fs::write(&path, b"torn garbage").unwrap();
        let program = sample();
        program.save(&path).unwrap();
        let loaded = Program::load(&path).unwrap();
        assert_eq!(loaded.compiled(), program.compiled());
        // no temp files survive a successful save
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "leftover temp files: {litter:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = Program::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CaError::Artifact(ArtifactError::ChecksumMismatch { .. })), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let good = sample().to_bytes();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Program::from_bytes(&bad_magic).unwrap_err(),
            CaError::Artifact(ArtifactError::BadMagic)
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 0xfe;
        bad_version[5] = 0xca;
        // version bytes are outside the checksum, so this fails on version
        assert!(matches!(
            Program::from_bytes(&bad_version).unwrap_err(),
            CaError::Artifact(ArtifactError::UnsupportedVersion(0xcafe))
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 10, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(Program::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Program::from_bytes(&extended).is_err(), "trailing byte");
    }

    #[test]
    fn loaded_stats_compare_equal_despite_missing_timings() {
        let program = sample();
        assert!(program.stats().timings.total_ms() > 0.0);
        let loaded = Program::from_bytes(&program.to_bytes()).unwrap();
        assert_eq!(loaded.stats().timings.total_ms(), 0.0);
        assert_eq!(loaded.stats(), program.stats(), "equality excludes timings");
    }
}
