//! # Cache Automaton
//!
//! A full reproduction of *Cache Automaton* (Subramaniyan et al., MICRO-50
//! 2017): in-situ NFA processing in last-level cache, with the mapping
//! compiler, the cycle-level fabric simulator, calibrated timing / energy /
//! area models, and both published design points (performance-optimized
//! **CA_P** at 2 GHz and space-optimized **CA_S** at 1.2 GHz).
//!
//! This crate is the façade: compile patterns (regex strings, ANML
//! documents or prebuilt homogeneous NFAs) into a [`Program`], run it over
//! input streams, and read back matches plus the architectural report
//! (throughput, cache utilization, energy per symbol, power).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, Design};
//!
//! let ca = CacheAutomaton::builder().design(Design::Performance).build();
//! let program = ca.compile_patterns(&["rain", "sp[ai]n", "plain?"])?;
//! let report = program.run(b"the rain in spain stays mainly in the plain");
//!
//! assert_eq!(report.matches.len(), 3);
//! assert_eq!(program.throughput_gbps(), 16.0);    // 2 GHz x 8 bit/cycle
//! assert!(report.energy.per_symbol_nj > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! The layers underneath are available as standalone crates and re-exported
//! in [`automata`], [`sim`], [`compiler`] and [`partition`] for direct use.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Arc, Mutex};

pub mod artifact;
pub mod cache;
pub mod matches;
mod scanner;
pub mod serve;
mod session;
mod shard;

pub use ca_automata as automata;
pub use ca_compiler as compiler;
pub use ca_partition as partition;
pub use ca_sim as sim;
pub use ca_telemetry as telemetry;

pub use artifact::{PROGRAM_ARTIFACT_MAGIC, PROGRAM_ARTIFACT_VERSION};
pub use ca_automata::engine::MatchEvent;
pub use ca_automata::{CharClass, Fingerprint, HomNfa, ReportCode, StartKind, StateId};
pub use ca_compiler::{
    CompileError, CompiledAutomaton, CompilerOptions, MappingStats, PassTimings,
};
pub use ca_sim::DesignKind as Design;
pub use ca_sim::{ArtifactError, EnergyReport, ExecStats, PipelineTiming, Snapshot};
pub use ca_telemetry::{JsonLinesWriter, MemoryRecorder, Telemetry, TelemetrySink};
pub use cache::disk::DiskCache;
pub use cache::remote::RemoteCache;
pub use cache::{ArtifactCache, CacheKey, CacheStats, CacheTier, ProgramCache, TierStats};
pub use scanner::Scanner;
pub use serve::cache_server::CacheServer;
pub use serve::daemon::{Client, ClientOptions, Daemon, DaemonOptions, ListenAddr};
pub use serve::proto::{
    CacheServerStats, Frame, ProtoError, ServerStats, WireReport, PROTO_VERSION,
};
pub use serve::{PoolOptions, ScanPool, StreamHandle};
pub use session::Session;
pub use shard::{Parallelism, ScanOptions};

/// Default bound of the in-process program cache, in entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Environment variable naming the disk-tier cache directory. When set
/// (and non-empty), every instance built without an explicit
/// [`Builder::disk_cache`]/[`Builder::no_disk_cache`] choice persists
/// compiled artifacts there.
pub const CACHE_DIR_ENV: &str = "CACHE_AUTOMATON_DIR";

/// Environment variable naming a remote cache peer (`host:port` or
/// `unix:<path>`, the address of a `cactl cache-serve` process). When set
/// (and non-empty), every instance built without an explicit
/// [`Builder::remote_cache`]/[`Builder::no_remote_cache`] choice consults
/// that peer after the disk tier.
pub const CACHE_REMOTE_ENV: &str = "CACHE_AUTOMATON_REMOTE";

/// Largest LLC slice count the configuration accepts (well past any Xeon
/// die; larger values are treated as configuration mistakes).
pub const MAX_SLICES: usize = 64;

/// Errors surfaced by the high-level API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CaError {
    /// Pattern or ANML front-end failure.
    Automata(ca_automata::Error),
    /// Mapping compiler failure.
    Compile(CompileError),
    /// Invalid configuration or request (slice counts, empty pattern sets,
    /// zero-thread scans, over-subscribed multi-stream scans).
    Config(String),
    /// Input/output failure while reading a stream or image.
    Io(String),
    /// A serialized program artifact failed to decode (bad magic,
    /// unsupported version, checksum mismatch, structural damage).
    Artifact(ArtifactError),
    /// An invariant the library maintains was violated at runtime — e.g. a
    /// worker thread panicked mid-scan. The scan that hit it is lost, but
    /// the process (and any embedding service) survives with a typed
    /// error instead of an abort.
    Internal(String),
    /// A serving-daemon wire-protocol violation (bad frame header,
    /// unsupported version, oversized or malformed payload). See
    /// [`serve::proto`].
    Protocol(String),
    /// A well-formed, in-protocol request this server deliberately does
    /// not serve — e.g. CACHE_GET sent to a scan daemon (only `cactl
    /// cache-serve` answers cache frames), or a scan frame sent to a
    /// cache peer. Distinct from [`CaError::Protocol`] (malformed
    /// traffic): the connection stays healthy, the capability just is
    /// not there, so clients may degrade gracefully — a
    /// [`RemoteCache`] pointed at a scan daemon treats this code as a
    /// permanent miss.
    Unsupported(String),
    /// An error a serving daemon reported over the wire. `code` preserves
    /// the daemon-side [`CaError::code`] value for variants whose typed
    /// payload cannot cross a socket (automata, compiler, artifact
    /// errors), so exit codes survive the round trip.
    Remote {
        /// The daemon-side [`CaError::code`] value.
        code: u8,
        /// The daemon-side error message.
        message: String,
    },
}

impl fmt::Display for CaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaError::Automata(e) => write!(f, "{e}"),
            CaError::Compile(e) => write!(f, "{e}"),
            CaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CaError::Io(msg) => write!(f, "i/o error: {msg}"),
            CaError::Artifact(e) => write!(f, "artifact error: {e}"),
            CaError::Internal(msg) => write!(f, "internal error: {msg}"),
            CaError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            CaError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
            CaError::Remote { code, message } => {
                write!(f, "remote error (code {code}): {message}")
            }
        }
    }
}

impl CaError {
    /// Stable per-variant error code: 2 configuration, 3 i/o, 4 automata
    /// front-end, 5 mapping compiler, 6 artifact decode, 7 internal,
    /// 8 wire-protocol violation, 9 unsupported request. A
    /// [`CaError::Remote`] carries its daemon-side code through unchanged.
    ///
    /// This is the **one** error-code table of the project: `cactl` uses
    /// it as its process exit code for every subcommand, and the serving
    /// daemon's wire protocol carries it in ERROR frames (see
    /// [`serve::proto`]), so a scripted client can branch on failure kind
    /// identically whether the scan ran locally or over a socket.
    pub fn code(&self) -> u8 {
        match self {
            CaError::Config(_) => 2,
            CaError::Io(_) => 3,
            CaError::Automata(_) => 4,
            CaError::Compile(_) => 5,
            CaError::Artifact(_) => 6,
            CaError::Internal(_) => 7,
            CaError::Protocol(_) => 8,
            CaError::Unsupported(_) => 9,
            CaError::Remote { code, .. } => *code,
        }
    }
}

impl std::error::Error for CaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaError::Automata(e) => Some(e),
            CaError::Compile(e) => Some(e),
            CaError::Artifact(e) => Some(e),
            CaError::Config(_)
            | CaError::Io(_)
            | CaError::Internal(_)
            | CaError::Protocol(_)
            | CaError::Unsupported(_)
            | CaError::Remote { .. } => None,
        }
    }
}

/// Converts a thread-join panic payload into [`CaError::Internal`],
/// salvaging the panic message when it is a string.
pub(crate) fn join_panic_to_internal(
    context: &str,
    payload: Box<dyn std::any::Any + Send>,
) -> CaError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    CaError::Internal(format!("{context} thread panicked: {msg}"))
}

#[doc(hidden)]
impl From<std::io::Error> for CaError {
    fn from(e: std::io::Error) -> CaError {
        CaError::Io(e.to_string())
    }
}

#[doc(hidden)]
impl From<ca_automata::Error> for CaError {
    fn from(e: ca_automata::Error) -> CaError {
        CaError::Automata(e)
    }
}

#[doc(hidden)]
impl From<CompileError> for CaError {
    fn from(e: CompileError) -> CaError {
        CaError::Compile(e)
    }
}

#[doc(hidden)]
impl From<ArtifactError> for CaError {
    fn from(e: ArtifactError) -> CaError {
        CaError::Artifact(e)
    }
}

/// Whether to run the space optimizer (dead-state removal + common-prefix
/// merging) before mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Optimize {
    /// Optimize exactly when the design is [`Design::Space`] — the paper's
    /// CA_S flow.
    #[default]
    Auto,
    /// Always optimize.
    Always,
    /// Never optimize (map the baseline NFA as-is).
    Never,
}

/// Builder for [`CacheAutomaton`].
#[derive(Debug, Clone, Default)]
pub struct Builder {
    design: Design,
    slices: Option<usize>,
    seed: Option<u64>,
    optimize: Optimize,
    cache_capacity: Option<usize>,
    /// Outer `None` = undecided (consult [`CACHE_DIR_ENV`] at build time);
    /// `Some(None)` = explicitly disabled; `Some(Some(path))` = explicit.
    disk_cache: Option<Option<std::path::PathBuf>>,
    /// Same tri-state as `disk_cache`, against [`CACHE_REMOTE_ENV`].
    remote_cache: Option<Option<String>>,
    remote_cache_timeout: Option<std::time::Duration>,
    telemetry: Telemetry,
}

impl Builder {
    /// Selects the design point (default: [`Design::Performance`]).
    #[must_use]
    pub fn design(mut self, design: Design) -> Builder {
        self.design = design;
        self
    }

    /// Number of LLC slices to use (default: 8, the paper's prototype).
    ///
    /// Validated when a program is compiled: zero or more than
    /// [`MAX_SLICES`] slices is a [`CaError::Config`].
    #[must_use]
    pub fn slices(mut self, slices: usize) -> Builder {
        self.slices = Some(slices);
        self
    }

    /// Seed for the (deterministic) graph partitioner.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Builder {
        self.seed = Some(seed);
        self
    }

    /// Space-optimization policy (default: [`Optimize::Auto`]).
    #[must_use]
    pub fn optimize(mut self, optimize: Optimize) -> Builder {
        self.optimize = optimize;
        self
    }

    /// Bound of the in-process program cache, in entries (default:
    /// [`DEFAULT_CACHE_CAPACITY`]; 0 disables caching).
    ///
    /// Recompiling an identical (NFA, options) pair returns the cached
    /// [`Program`] — byte-identical bitstream, equal stats — instead of
    /// re-running the mapping pipeline. See [`cache`] for the replacement
    /// and admission policy.
    #[must_use]
    pub fn cache_capacity(mut self, entries: usize) -> Builder {
        self.cache_capacity = Some(entries);
        self
    }

    /// Persists compiled artifacts in a [`DiskCache`] rooted at `path`,
    /// shared by every process pointed at the same directory. Lookups go
    /// memory → disk → compile, and compilations write through to both
    /// tiers; see [`cache`] for the layout and corruption policy.
    ///
    /// Without an explicit choice, a non-empty [`CACHE_DIR_ENV`]
    /// environment variable enables the disk tier at build time.
    #[must_use]
    pub fn disk_cache<P: Into<std::path::PathBuf>>(mut self, path: P) -> Builder {
        self.disk_cache = Some(Some(path.into()));
        self
    }

    /// Disables the disk tier even when [`CACHE_DIR_ENV`] is set.
    #[must_use]
    pub fn no_disk_cache(mut self) -> Builder {
        self.disk_cache = Some(None);
        self
    }

    /// Adds a [`RemoteCache`] tier speaking CACHE_GET / CACHE_PUT frames
    /// to the cache peer at `addr` (`host:port` or `unix:<path>`, the
    /// address of a `cactl cache-serve` process), consulted after the
    /// disk tier. Nothing is dialed until the first compile; a failing
    /// peer degrades to misses, never errors.
    ///
    /// Without an explicit choice, a non-empty [`CACHE_REMOTE_ENV`]
    /// environment variable enables the remote tier at build time.
    #[must_use]
    pub fn remote_cache<S: Into<String>>(mut self, addr: S) -> Builder {
        self.remote_cache = Some(Some(addr.into()));
        self
    }

    /// Disables the remote tier even when [`CACHE_REMOTE_ENV`] is set.
    #[must_use]
    pub fn no_remote_cache(mut self) -> Builder {
        self.remote_cache = Some(None);
        self
    }

    /// Socket budget of the remote tier: connect, read, and write each
    /// get this deadline (default [`RemoteCache::DEFAULT_TIMEOUT`], 5 s).
    /// A peer that stalls past it is a transport error, which latches the
    /// tier broken — a hung peer costs one bounded stall, never a hang.
    #[must_use]
    pub fn remote_cache_timeout(mut self, timeout: std::time::Duration) -> Builder {
        self.remote_cache_timeout = Some(timeout);
        self
    }

    /// Routes pipeline events (compile-pass spans, cache counters, fabric
    /// activity, scan-stripe timings) to `sink` — see the
    /// [`telemetry`] module for the sinks shipped in-tree and DESIGN.md §7
    /// for the event taxonomy. Programs compiled by the resulting instance
    /// inherit the handle; the default is disabled (zero overhead).
    #[must_use]
    pub fn telemetry(mut self, sink: impl TelemetrySink + 'static) -> Builder {
        self.telemetry = Telemetry::new(sink);
        self
    }

    /// Like [`telemetry`](Builder::telemetry), but takes a prebuilt
    /// [`Telemetry`] handle — use this to share one sink (e.g. an
    /// `Arc<MemoryRecorder>` you keep for inspection) across instances.
    #[must_use]
    pub fn telemetry_handle(mut self, telemetry: Telemetry) -> Builder {
        self.telemetry = telemetry;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(self) -> CacheAutomaton {
        let defaults = CompilerOptions::default();
        let capacity = self.cache_capacity.unwrap_or(DEFAULT_CACHE_CAPACITY);
        let mut cache = ArtifactCache::new(capacity);
        cache.set_telemetry(self.telemetry.clone());
        let disk_root = match self.disk_cache {
            Some(choice) => choice,
            // undecided: the environment may opt the process in
            None => std::env::var_os(CACHE_DIR_ENV)
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from),
        };
        if let Some(root) = disk_root {
            cache.push_tier(Box::new(DiskCache::new(root)));
        }
        let remote_addr = match self.remote_cache {
            Some(choice) => choice,
            // undecided: the environment may opt the process in
            None => std::env::var(CACHE_REMOTE_ENV).ok().filter(|v| !v.is_empty()),
        };
        if let Some(addr) = remote_addr {
            let mut remote = RemoteCache::new(addr);
            if let Some(timeout) = self.remote_cache_timeout {
                remote.set_timeout(timeout);
            }
            cache.push_tier(Box::new(remote));
        }
        CacheAutomaton {
            options: CompilerOptions {
                design: self.design,
                slices: self.slices.unwrap_or(defaults.slices),
                seed: self.seed.unwrap_or(defaults.seed),
            },
            optimize: self.optimize,
            cache: Arc::new(Mutex::new(cache)),
            telemetry: self.telemetry,
        }
    }
}

/// A configured Cache Automaton instance (design point + geometry).
///
/// Cloning shares the tiered artifact cache: clones of one instance (and
/// the threads they live on) hit each other's compilations, and instances
/// in *different processes* sharing a disk-cache directory (or a remote
/// cache peer) hit each other's too.
#[derive(Debug, Clone)]
pub struct CacheAutomaton {
    options: CompilerOptions,
    optimize: Optimize,
    cache: Arc<Mutex<ArtifactCache>>,
    telemetry: Telemetry,
}

impl Default for CacheAutomaton {
    fn default() -> CacheAutomaton {
        CacheAutomaton::new()
    }
}

impl CacheAutomaton {
    /// The performance-optimized configuration with paper defaults.
    pub fn new() -> CacheAutomaton {
        CacheAutomaton::builder().build()
    }

    /// Starts a builder.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// The resolved compiler options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Behaviour counters of the in-memory cache tier (hits, misses,
    /// evictions, admission rejections).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("program cache poisoned").memory_stats()
    }

    /// `(name, stats)` counters of every persistent cache tier, in lookup
    /// order (empty when the instance has no disk or remote tier).
    pub fn tier_stats(&self) -> Vec<(&'static str, TierStats)> {
        self.cache.lock().expect("program cache poisoned").tier_stats()
    }

    /// Counters of the disk tier, if one is configured.
    pub fn disk_cache_stats(&self) -> Option<TierStats> {
        self.tier_stats().into_iter().find(|(name, _)| *name == "disk").map(|(_, s)| s)
    }

    /// Compiles a set of regex patterns; pattern `i` reports with code `i`.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] for an empty pattern set; otherwise pattern
    /// parse errors, nullable patterns, or mapping failures.
    pub fn compile_patterns<S: AsRef<str>>(&self, patterns: &[S]) -> Result<Program, CaError> {
        if patterns.is_empty() {
            return Err(CaError::Config(
                "empty pattern set: a program needs at least one pattern".into(),
            ));
        }
        let nfa = ca_automata::regex::compile_patterns(patterns)?;
        self.compile_nfa(&nfa)
    }

    /// Compiles an ANML document.
    ///
    /// # Errors
    ///
    /// ANML parse errors or mapping failures.
    pub fn compile_anml(&self, anml: &str) -> Result<Program, CaError> {
        let nfa = ca_automata::anml::parse_anml(anml)?;
        self.compile_nfa(&nfa)
    }

    /// Compiles a prebuilt homogeneous NFA.
    ///
    /// Under [`Optimize::Auto`] the space optimizer runs first when the
    /// design is [`Design::Space`], mirroring the paper's CA_S flow.
    ///
    /// Results are cached: recompiling an NFA with the same canonical
    /// fingerprint under the same options returns the stored [`Program`]
    /// (byte-identical bitstream) without re-running the mapping pipeline.
    /// With a disk tier configured ([`Builder::disk_cache`] /
    /// [`CACHE_DIR_ENV`]) the lookup goes memory → disk → compile and a
    /// fresh compilation writes through to every tier, so a *second
    /// process* pointed at the same directory skips compilation too.
    /// Failures are never cached.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] for an out-of-range slice count; otherwise
    /// mapping failures (capacity, routability).
    pub fn compile_nfa(&self, nfa: &HomNfa) -> Result<Program, CaError> {
        if self.options.slices == 0 || self.options.slices > MAX_SLICES {
            return Err(CaError::Config(format!(
                "slice count {} out of range (1..={MAX_SLICES})",
                self.options.slices
            )));
        }
        let optimize = match self.optimize {
            Optimize::Always => true,
            Optimize::Never => false,
            Optimize::Auto => self.options.design == Design::Space,
        };
        let key = CacheKey {
            fingerprint: nfa.fingerprint(),
            design: self.options.design,
            slices: self.options.slices,
            seed: self.options.seed,
            optimized: optimize,
        };
        if let Some(mut hit) = self.cache.lock().expect("program cache poisoned").get(&key) {
            // the stored program carries the telemetry of whoever compiled
            // it; the caller gets their own handle
            hit.telemetry = self.telemetry.clone();
            return Ok(hit);
        }
        let owned;
        let source: &HomNfa = if optimize {
            owned = ca_automata::optimize::space_optimize(nfa).0;
            &owned
        } else {
            nfa
        };
        let compiled = ca_compiler::compile_with_telemetry(source, &self.options, &self.telemetry)?;
        let program = Program {
            design: self.options.design,
            timing: ca_sim::design_timing(self.options.design),
            compiled,
            telemetry: self.telemetry.clone(),
        };
        self.cache.lock().expect("program cache poisoned").insert(key, program.clone());
        Ok(program)
    }
}

/// A compiled, loadable automaton program.
#[must_use = "compiling a program is expensive; run or scan it"]
#[derive(Debug, Clone)]
pub struct Program {
    design: Design,
    timing: PipelineTiming,
    compiled: CompiledAutomaton,
    telemetry: Telemetry,
}

impl Program {
    /// The design point the program was compiled for.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Mapping statistics (partitions, utilization, routes).
    pub fn stats(&self) -> &MappingStats {
        &self.compiled.stats
    }

    /// The underlying compiled image.
    pub fn compiled(&self) -> &CompiledAutomaton {
        &self.compiled
    }

    /// Resolved pipeline timing of the design point.
    pub fn timing(&self) -> &PipelineTiming {
        &self.timing
    }

    /// Cache space the program occupies, in MB (Figure 8's metric).
    pub fn utilization_mb(&self) -> f64 {
        self.compiled.stats.utilization_mb()
    }

    /// Deterministic scan throughput, Gbit/s (one symbol per cycle).
    pub fn throughput_gbps(&self) -> f64 {
        self.timing.throughput_gbps()
    }

    /// Scans `input` as one chunk and returns the report.
    ///
    /// This is a convenience wrapper over a one-chunk [`Scanner`] session;
    /// prefer [`scanner`](Program::scanner) for streams that arrive in
    /// pieces and [`run_parallel`](Program::run_parallel) to spread a large
    /// input across several fabric instances.
    pub fn run(&self, input: &[u8]) -> RunReport {
        let mut scanner = self.scanner();
        scanner.feed(input);
        scanner.finish()
    }

    /// Opens a streaming scan session at the start of a fresh stream.
    pub fn scanner(&self) -> Scanner<'_> {
        Scanner::new(self, None)
    }

    /// Reopens a streaming scan session from a suspend image previously
    /// taken with [`Scanner::snapshot`].
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] if the snapshot was taken from a program with a
    /// different partition count — resuming it here would scramble the
    /// active-state vectors.
    pub fn resume_scanner(&self, snapshot: Snapshot) -> Result<Scanner<'_>, CaError> {
        let partitions = self.compiled.bitstream.partitions.len();
        if snapshot.active_vectors.len() != partitions {
            return Err(CaError::Config(format!(
                "resume snapshot carries {} active vectors but this program drives {} \
                 partitions (was it taken from another program?)",
                snapshot.active_vectors.len(),
                partitions
            )));
        }
        Ok(Scanner::new(self, Some(snapshot)))
    }

    /// Routes this program's scan events (fabric activity snapshots,
    /// stripe timings, end-of-run counters) to `telemetry`. Programs
    /// compiled through [`CacheAutomaton`] inherit the builder's handle;
    /// use this for programs loaded from artifacts, or to attach a
    /// different sink per scan site.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle scans of this program report to (a cheap
    /// clone; disabled unless one was installed).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// A fresh fabric instance for this program's bitstream.
    pub(crate) fn fabric(&self) -> ca_sim::Fabric {
        let mut fabric = self.compiled.fabric().expect("compiled bitstream is valid");
        fabric.set_telemetry(self.telemetry.clone());
        fabric
    }

    /// Renders raw fabric activity into a [`RunReport`] using this
    /// program's design point (energy model, operating clock).
    pub(crate) fn report_from(&self, matches: Vec<MatchEvent>, exec: ExecStats) -> RunReport {
        let freq = self.timing.operating_freq_ghz();
        let energy =
            ca_sim::energy_report(&exec, self.design, &ca_sim::EnergyParams::default(), freq);
        let simulated_seconds = exec.cycles as f64 * self.timing.operating_clock_ps() * 1e-12;
        RunReport { matches, exec, energy, simulated_seconds }
    }
}

impl Program {
    /// How many independent instances of this program the configured cache
    /// can hold (the paper: "space savings can be directly translated to
    /// speedup by matching against multiple NFA instances", §5.2).
    pub fn max_instances(&self) -> usize {
        let total = self.compiled.bitstream.geometry.total_partitions();
        let used = self.compiled.stats.partitions_used.max(1);
        (total / used).max(1)
    }

    /// Replicates the program into a multi-stream scanner with `instances`
    /// copies, each processing its own input stream in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::CapacityExceeded`] (wrapped) if the cache
    /// cannot hold that many copies.
    pub fn replicate(&self, instances: usize) -> Result<MultiProgram, CaError> {
        let max = self.max_instances();
        if instances == 0 || instances > max {
            return Err(CaError::Compile(CompileError::CapacityExceeded {
                needed: instances * self.compiled.stats.partitions_used,
                available: self.compiled.bitstream.geometry.total_partitions(),
            }));
        }
        Ok(MultiProgram { program: self.clone(), instances })
    }
}

/// Several instances of one compiled automaton scanning independent input
/// streams concurrently — the throughput-scaling mode of §5.2.
#[derive(Debug, Clone)]
pub struct MultiProgram {
    program: Program,
    instances: usize,
}

impl MultiProgram {
    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// The underlying single-stream program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Aggregate peak throughput: every instance sustains one symbol per
    /// cycle on its own stream.
    pub fn aggregate_throughput_gbps(&self) -> f64 {
        self.program.throughput_gbps() * self.instances as f64
    }

    /// Scans up to [`instances`](MultiProgram::instances) streams in
    /// parallel (one OS thread per stream), returning one report per
    /// stream in order.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] if more streams than instances are supplied;
    /// [`CaError::Internal`] if a stream's scan thread panics.
    pub fn run_streams(&self, streams: &[&[u8]]) -> Result<Vec<RunReport>, CaError> {
        if streams.len() > self.instances {
            return Err(CaError::Config(format!(
                "{} streams exceed the {} configured instances",
                streams.len(),
                self.instances
            )));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream| {
                    let program = &self.program;
                    scope.spawn(move || program.run(stream))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|e| join_panic_to_internal("stream scan", e)))
                .collect()
        })
    }
}

/// The result of running a [`Program`] over an input stream.
#[must_use]
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Reported matches in position order.
    pub matches: Vec<MatchEvent>,
    /// Fabric activity statistics.
    pub exec: ExecStats,
    /// Energy / power at the design's operating frequency.
    pub energy: EnergyReport,
    /// Wall-clock the hardware would take (cycles x clock period).
    pub simulated_seconds: f64,
}

impl RunReport {
    /// Simulated scan throughput in Gbit/s (includes pipeline fill, so it
    /// approaches the design's peak for long streams).
    pub fn achieved_gbps(&self) -> f64 {
        if self.simulated_seconds == 0.0 {
            0.0
        } else {
            self.exec.symbols as f64 * 8.0 / self.simulated_seconds / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let ca = CacheAutomaton::new();
        let program = ca.compile_patterns(&["abc", "a.c"]).unwrap();
        let report = program.run(b"xxabcxx");
        assert_eq!(report.matches.len(), 2); // both patterns end at 'c'
        assert_eq!(report.exec.symbols, 7);
        assert!(report.simulated_seconds > 0.0);
        assert!(report.achieved_gbps() > 10.0);
    }

    #[test]
    fn design_selection_changes_throughput() {
        let p = CacheAutomaton::builder()
            .design(Design::Performance)
            .build()
            .compile_patterns(&["x"])
            .unwrap();
        let s = CacheAutomaton::builder()
            .design(Design::Space)
            .build()
            .compile_patterns(&["x"])
            .unwrap();
        assert_eq!(p.throughput_gbps(), 16.0);
        assert!((s.throughput_gbps() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn auto_optimize_only_on_space() {
        let patterns: Vec<String> = (0..8).map(|i| format!("sharedprefix{i}")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = ca_automata::regex::compile_patterns(&refs).unwrap();
        let p = CacheAutomaton::builder()
            .design(Design::Performance)
            .build()
            .compile_nfa(&nfa)
            .unwrap();
        let s = CacheAutomaton::builder().design(Design::Space).build().compile_nfa(&nfa).unwrap();
        assert_eq!(p.stats().states, nfa.len());
        assert!(s.stats().states < nfa.len(), "space flow must merge prefixes");
        // same matches either way
        let input = b"zz sharedprefix3 sharedprefix7";
        let mp = p.run(input).matches;
        let ms = s.run(input).matches;
        assert_eq!(mp, ms);
    }

    #[test]
    fn anml_entry_point() {
        let anml = r#"<anml-network id="t">
            <state-transition-element id="a" symbol-set="[xy]" start="all-input">
              <activate-on-match element="b"/>
            </state-transition-element>
            <state-transition-element id="b" symbol-set="z">
              <report-on-match reportcode="3"/>
            </state-transition-element>
        </anml-network>"#;
        let program = CacheAutomaton::new().compile_anml(anml).unwrap();
        let report = program.run(b"aaxzaa");
        assert_eq!(report.matches.len(), 1);
        assert_eq!(report.matches[0].code, ReportCode(3));
    }

    #[test]
    fn errors_propagate_with_display() {
        let err = CacheAutomaton::new().compile_patterns(&["("]).unwrap_err();
        assert!(err.to_string().contains("regex parse error"));
        assert!(std::error::Error::source(&err).is_some());
        let err = CacheAutomaton::new().compile_patterns(&["a*"]).unwrap_err();
        assert!(matches!(err, CaError::Automata(ca_automata::Error::NullableRegex)));
    }

    #[test]
    fn utilization_reported() {
        let program = CacheAutomaton::new().compile_patterns(&["hello"]).unwrap();
        assert!((program.utilization_mb() - 8192.0 / 1048576.0).abs() < 1e-12);
        assert_eq!(program.stats().partitions_used, 1);
    }

    #[test]
    fn replication_scales_throughput() {
        let program = CacheAutomaton::new().compile_patterns(&["alpha", "beta"]).unwrap();
        // 1 partition used, 512 available (8 slices x 64)
        assert_eq!(program.max_instances(), 512);
        let multi = program.replicate(4).unwrap();
        assert_eq!(multi.instances(), 4);
        assert_eq!(multi.aggregate_throughput_gbps(), 64.0);
        let streams: Vec<&[u8]> = vec![b"alpha", b"beta beta", b"nothing", b"alphabeta"];
        let reports = multi.run_streams(&streams).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].matches.len(), 1);
        assert_eq!(reports[1].matches.len(), 2);
        assert_eq!(reports[2].matches.len(), 0);
        assert_eq!(reports[3].matches.len(), 2);
    }

    #[test]
    fn replication_respects_capacity() {
        let program = CacheAutomaton::new().compile_patterns(&["x"]).unwrap();
        assert!(program.replicate(0).is_err());
        assert!(program.replicate(program.max_instances()).is_ok());
        assert!(program.replicate(program.max_instances() + 1).is_err());
    }

    #[test]
    fn too_many_streams_is_a_config_error() {
        let program = CacheAutomaton::new().compile_patterns(&["x"]).unwrap();
        let multi = program.replicate(1).unwrap();
        let err = multi.run_streams(&[b"a", b"b"]).unwrap_err();
        assert!(matches!(err, CaError::Config(_)));
        assert!(err.to_string().contains("exceed"));
    }

    #[test]
    fn builder_overrides() {
        let ca = CacheAutomaton::builder().slices(2).seed(7).build();
        assert_eq!(ca.options().slices, 2);
        assert_eq!(ca.options().seed, 7);
    }

    #[test]
    fn empty_pattern_set_is_a_config_error() {
        let err = CacheAutomaton::new().compile_patterns::<&str>(&[]).unwrap_err();
        assert!(matches!(err, CaError::Config(_)));
        assert!(err.to_string().contains("at least one pattern"));
    }

    #[test]
    fn absurd_slice_counts_are_config_errors() {
        for slices in [0usize, MAX_SLICES + 1, usize::MAX] {
            let err = CacheAutomaton::builder()
                .slices(slices)
                .build()
                .compile_patterns(&["x"])
                .unwrap_err();
            assert!(matches!(err, CaError::Config(_)), "slices = {slices}");
            assert!(err.to_string().contains("out of range"));
        }
        assert!(CacheAutomaton::builder()
            .slices(MAX_SLICES)
            .build()
            .compile_patterns(&["x"])
            .is_ok());
    }

    #[test]
    fn io_errors_convert() {
        let err: CaError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(err, CaError::Io(_)));
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
