//! Sharded parallel scanning.
//!
//! [`Program::run_parallel`] splits one input stream into contiguous
//! stripes, scans them concurrently on OS threads (one fabric instance
//! each — the multi-instance replication of paper §5.2 turned loose on a
//! *single* stream), and merges the per-stripe match streams into one
//! deterministic, position-sorted [`RunReport`] that is byte-identical to
//! a serial [`Program::run`].
//!
//! # Boundary-state handoff
//!
//! A stripe that starts mid-stream does not know which carry-over states
//! its predecessor would have left armed. The driver exploits the fabric's
//! union-homomorphism — the transition is linear in the active set, and
//! the per-cycle `start_all` injection is a base term that unions
//! idempotently — to fix that up *after* the parallel phase:
//!
//! 1. **Guess phase (parallel).** Stripe 0 runs fresh; every later stripe
//!    runs from [`Fabric::midstream_snapshot`], i.e. with only the
//!    always-armed start states — a guaranteed *subset* of the true entry
//!    state, so nothing spurious is reported.
//! 2. **Stitch phase (sequential).** Walking left to right, the true exit
//!    of stripe *i−1* becomes stripe *i*'s true entry;
//!    [`Fabric::run_correction`](ca_sim::Fabric::run_correction) then
//!    evolves the true and guessed active sets side by side and emits
//!    exactly the per-cycle *differences* — the matches, matched-STE
//!    counts, partition activations and G-switch signals the guess missed
//!    — so the merged `ExecStats` reconcile field by field with a serial
//!    scan instead of double-counting activity shared by both evolutions.
//!    The correction exits as soon as the evolutions converge, so when
//!    carry-over state decays in a few symbols (literal rulesets such as
//!    SPM or Bro217) the stitch touches only a short prefix of each stripe
//!    and throughput scales almost linearly with the shard count.
//!
//! Matches are identical to a serial scan for *every* ruleset, but the
//! speedup is workload-dependent: patterns with persistent mid-pattern
//! state — e.g. a dotstar infix `a.*b`, whose loop STE stays armed forever
//! once seen — force each correction to rerun its entire stripe, and the
//! critical path degrades toward serial (Snort in the `scaling`
//! experiment's measured table).

use crate::{join_panic_to_internal, CaError, Program, RunReport};
use ca_sim::fabric::{ExecStats, RunOptions, OUTPUT_BUFFER_ENTRIES};
use ca_sim::{Mask256, Snapshot};
use ca_telemetry::SpanGuard;

/// How many fabric instances a parallel scan spreads the stream across.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Parallelism {
    /// One stripe per available CPU, capped so every stripe is at least
    /// [`ScanOptions::min_stripe_bytes`] long (short inputs degrade
    /// gracefully to a serial scan).
    #[default]
    Auto,
    /// Exactly this many stripes (clamped to one per input byte).
    /// `Threads(1)` is the serial scan.
    Threads(usize),
}

/// Tuning knobs for [`Program::run_with_options`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ScanOptions {
    /// Stripe-count policy.
    pub parallelism: Parallelism,
    /// Smallest stripe [`Parallelism::Auto`] will create; ignored for
    /// explicit [`Parallelism::Threads`]. Default 64 KiB.
    pub min_stripe_bytes: usize,
}

impl Default for ScanOptions {
    fn default() -> ScanOptions {
        ScanOptions { parallelism: Parallelism::Auto, min_stripe_bytes: 64 * 1024 }
    }
}

impl ScanOptions {
    /// Options for a fixed stripe count.
    pub fn threads(n: usize) -> ScanOptions {
        ScanOptions { parallelism: Parallelism::Threads(n), ..Default::default() }
    }

    fn resolve_shards(&self, input_len: usize) -> Result<usize, CaError> {
        let requested = match self.parallelism {
            Parallelism::Threads(0) => {
                return Err(CaError::Config(
                    "Parallelism::Threads(0): a scan needs at least one thread".into(),
                ));
            }
            Parallelism::Threads(n) => n,
            Parallelism::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                cores.min(input_len / self.min_stripe_bytes.max(1)).max(1)
            }
        };
        Ok(requested.min(input_len).max(1))
    }
}

/// Near-equal contiguous stripes: every stripe non-empty, first stripes one
/// byte longer when the length does not divide evenly.
fn stripe_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = len / shards;
    let extra = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let end = start + base + usize::from(i < extra);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

impl Program {
    /// Scans `input` with a parallel sharded pipeline, returning a report
    /// whose `matches` are exactly those of a serial [`run`](Program::run)
    /// — same events, same position order.
    ///
    /// Cycle accounting treats the stripes as concurrently executing
    /// fabric instances: `exec.cycles` is the makespan (slowest stripe
    /// plus the sequential boundary-stitch work) and never exceeds the
    /// serial cycle count. Every other counter — symbols, reports,
    /// matched STEs, partition activity, G-switch signals, interrupts —
    /// equals the serial scan's exactly: corrections contribute only the
    /// activity the guesses missed.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] on a zero thread count; [`CaError::Internal`]
    /// if a stripe thread panics.
    pub fn run_parallel(
        &self,
        input: &[u8],
        parallelism: Parallelism,
    ) -> Result<RunReport, CaError> {
        self.run_with_options(input, &ScanOptions { parallelism, ..Default::default() })
    }

    /// [`run_parallel`](Program::run_parallel) with explicit [`ScanOptions`].
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] on a zero thread count; [`CaError::Internal`]
    /// if a stripe thread panics.
    pub fn run_with_options(
        &self,
        input: &[u8],
        options: &ScanOptions,
    ) -> Result<RunReport, CaError> {
        let shards = options.resolve_shards(input.len())?;
        if shards <= 1 {
            return Ok(self.run(input));
        }
        let bounds = stripe_bounds(input.len(), shards);
        let template = self.fabric();
        let telemetry = self.telemetry();
        telemetry.counter("scan.stripes", shards as u64);

        // Guess phase: every stripe on its own thread and fabric instance.
        // A panicking stripe must degrade to a typed error, not abort the
        // process: join failures collect into `CaError::Internal`.
        let stripe_reports = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(start, end))| {
                    let template = &template;
                    let telemetry = telemetry.clone();
                    scope.spawn(move || {
                        let span = SpanGuard::start(&telemetry, "scan.stripe.guess", i as u64);
                        let mut fabric = template.clone();
                        let resume = (start > 0).then(|| fabric.midstream_snapshot(start as u64));
                        let report = fabric.run_with(
                            &input[start..end],
                            &RunOptions { resume, ..Default::default() },
                        );
                        span.finish();
                        report
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|e| join_panic_to_internal("stripe scan", e)).and_then(|res| {
                        res.map_err(|e| {
                            CaError::Internal(format!("stripe scan rejected its resume image: {e}"))
                        })
                    })
                })
                .collect::<Result<Vec<_>, CaError>>()
        })?;

        // Stitch phase: sequential left-to-right boundary handoff.
        let start_all = template.start_all_vectors();
        let makespan_guess = stripe_reports.iter().map(|r| r.stats.cycles).max().unwrap_or(0);
        let mut events = Vec::new();
        let mut stats = ExecStats::default();
        let mut stitch_cycles = 0u64;
        let mut true_exit: Vec<Mask256> = Vec::new();
        for (i, (report, &(start, end))) in stripe_reports.iter().zip(&bounds).enumerate() {
            events.extend(report.events.iter().copied());
            stats.absorb_activity(&report.stats);
            let guess_exit =
                &report.snapshot.as_ref().expect("stripe run returns a snapshot").active_vectors;
            if start == 0 {
                true_exit = guess_exit.clone();
                continue;
            }
            // Skip the correction when the true boundary hands over
            // nothing beyond the armed starts the guess already had.
            let carry: Vec<Mask256> =
                true_exit.iter().zip(start_all).map(|(t, g)| t.and_not(g)).collect();
            if carry.iter().all(Mask256::is_zero) {
                true_exit = guess_exit.clone();
                continue;
            }
            let span = SpanGuard::start(&telemetry, "scan.stripe.correction", i as u64);
            let correction = template
                .run_correction(
                    &input[start..end],
                    &Snapshot {
                        symbol_counter: start as u64,
                        active_vectors: true_exit.clone(),
                        output_buffer_fill: 0,
                    },
                )
                .map_err(|e| {
                    CaError::Internal(format!("boundary correction rejected its entry image: {e}"))
                })?;
            span.finish();
            telemetry.counter("scan.corrections", 1);
            telemetry.counter("scan.correction_symbols", correction.stats.symbols);
            events.extend(correction.events.iter().copied());
            stats.absorb_activity(&correction.stats);
            stitch_cycles += correction.stats.cycles;
            // The correction's exit image is the true exit; on early
            // convergence the guess exit is already correct.
            true_exit = match correction.snapshot {
                Some(snapshot) => snapshot.active_vectors,
                None => guess_exit.clone(),
            };
        }

        events.sort_unstable();
        // One logical stream: symbols/refills cover the input once, the
        // correction runs contributed only the activity the guesses
        // missed, and the output buffer of the merged stream fills as the
        // serial scan's would. Cycles are the explicit schedule: the guess
        // phase ran concurrently (slowest stripe), then the stitch
        // serializes — `absorb_activity` deliberately leaves the field to
        // this decision.
        stats.symbols = input.len() as u64;
        stats.cycles = makespan_guess + stitch_cycles;
        stats.fifo_refills = input.len().div_ceil(ca_sim::fabric::FIFO_REFILL_BYTES) as u64;
        stats.reports = events.len() as u64;
        stats.output_interrupts = stats.reports / OUTPUT_BUFFER_ENTRIES as u64;
        stats.emit_counters(&telemetry);
        Ok(self.report_from(events, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn program() -> Program {
        CacheAutomaton::new().compile_patterns(&["needle", "na+il", "screw"]).unwrap()
    }

    fn haystack() -> Vec<u8> {
        let mut input = Vec::new();
        for i in 0..40 {
            input.extend_from_slice(match i % 5 {
                0 => b"xxneedlexx".as_slice(),
                1 => b"naaailxxxx",
                2 => b"screwxxxxx",
                3 => b"nneedlescr",
                _ => b"ewnailxxxx",
            });
        }
        input
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let program = program();
        let input = haystack();
        let serial = program.run(&input);
        for shards in [1usize, 2, 3, 4, 7, 8] {
            let parallel = program.run_parallel(&input, Parallelism::Threads(shards)).unwrap();
            assert_eq!(parallel.matches, serial.matches, "{shards} shards");
            assert_eq!(parallel.exec.symbols, serial.exec.symbols);
        }
    }

    #[test]
    fn more_shards_than_bytes_is_fine() {
        let program = program();
        let report = program.run_parallel(b"needle", Parallelism::Threads(64)).unwrap();
        assert_eq!(report.matches.len(), 1);
        let empty = program.run_parallel(b"", Parallelism::Threads(4)).unwrap();
        assert!(empty.matches.is_empty());
        assert_eq!(empty.exec.cycles, 0);
    }

    #[test]
    fn zero_threads_is_a_config_error() {
        let program = program();
        let err = program.run_parallel(b"abc", Parallelism::Threads(0)).unwrap_err();
        assert!(matches!(err, CaError::Config(_)));
        assert!(err.to_string().contains("at least one thread"));
    }

    #[test]
    fn auto_on_short_input_stays_serial() {
        let program = program();
        let serial = program.run(b"xxneedle");
        let auto = program.run_parallel(b"xxneedle", Parallelism::Auto).unwrap();
        assert_eq!(auto.matches, serial.matches);
        assert_eq!(auto.exec, serial.exec, "short input takes the serial path");
    }

    #[test]
    fn makespan_beats_serial_cycles() {
        let program = program();
        let input = haystack();
        let serial = program.run(&input);
        let parallel = program.run_parallel(&input, Parallelism::Threads(4)).unwrap();
        assert!(
            parallel.exec.cycles < serial.exec.cycles,
            "4 stripes must shorten the critical path: {} !< {}",
            parallel.exec.cycles,
            serial.exec.cycles
        );
        assert!(parallel.achieved_gbps() > serial.achieved_gbps());
    }

    #[test]
    fn stripe_bounds_cover_input() {
        for len in [1usize, 2, 7, 100, 101] {
            for shards in 1..=7.min(len) {
                let bounds = stripe_bounds(len, shards);
                assert_eq!(bounds.len(), shards);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds.last().unwrap().1, len);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].1 > w[0].0, "non-empty");
                }
            }
        }
    }
}
