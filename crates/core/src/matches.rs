//! Match post-processing utilities.
//!
//! The fabric reports *every* accepting (position, pattern) event — the
//! hardware-faithful stream. Applications usually want aggregations:
//! counts per pattern, hits per line, or first occurrences. These helpers
//! cover the common cases (the `log_scan` example uses line grouping).

use ca_automata::engine::MatchEvent;
use ca_automata::ReportCode;
use ca_telemetry::Telemetry;
use std::collections::BTreeSet;

/// Per-pattern match counts: `counts[code] = events with that code`.
///
/// Codes at or beyond `patterns` are ignored (defensive against foreign
/// event streams).
pub fn count_by_code(events: &[MatchEvent], patterns: usize) -> Vec<u64> {
    let mut counts = vec![0u64; patterns];
    for e in events {
        if let Some(c) = counts.get_mut(e.code.0 as usize) {
            *c += 1;
        }
    }
    counts
}

/// First match position per pattern, if any.
pub fn first_by_code(events: &[MatchEvent], patterns: usize) -> Vec<Option<u64>> {
    let mut first = vec![None; patterns];
    for e in events {
        if let Some(slot) = first.get_mut(e.code.0 as usize) {
            let keep = slot.is_none_or(|p| e.pos < p);
            if keep {
                *slot = Some(e.pos);
            }
        }
    }
    first
}

/// A line of the input that matched at least one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineHit {
    /// 0-based line number.
    pub line: usize,
    /// Byte range of the line in the input (excludes the newline).
    pub span: (usize, usize),
    /// Distinct pattern codes that matched within the line.
    pub codes: Vec<ReportCode>,
}

/// Groups match events by input line (newline-delimited), collapsing
/// repeated reports of the same pattern within a line — what an alerting
/// pipeline does with the raw stream.
///
/// Events whose position lies beyond `input` are dropped — but never
/// silently: see [`group_by_line_with`] for the accounting contract.
pub fn group_by_line(input: &[u8], events: &[MatchEvent]) -> Vec<LineHit> {
    group_by_line_with(input, events, &Telemetry::disabled())
}

/// [`group_by_line`] with telemetry: out-of-range events (position at or
/// beyond `input.len()`) are counted in a `scan.dropped_events` counter
/// before being dropped. Our own fabric can never produce such an event —
/// a report's position always lies within the input that was scanned — so
/// in debug builds any dropped event is treated as corruption and panics
/// (after the counter is emitted); in release builds the count surfaces
/// through metrics instead of vanishing.
pub fn group_by_line_with(
    input: &[u8],
    events: &[MatchEvent],
    telemetry: &Telemetry,
) -> Vec<LineHit> {
    // line start offsets
    let mut starts = vec![0usize];
    for (i, &b) in input.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| match starts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let mut per_line: std::collections::BTreeMap<usize, BTreeSet<ReportCode>> =
        std::collections::BTreeMap::new();
    let mut dropped = 0u64;
    for e in events {
        if (e.pos as usize) < input.len() {
            per_line.entry(line_of(e.pos as usize)).or_default().insert(e.code);
        } else {
            dropped += 1;
        }
    }
    if dropped > 0 {
        // Emit before the debug assertion so the count is recorded even on
        // the path that panics.
        telemetry.counter("scan.dropped_events", dropped);
    }
    debug_assert_eq!(
        dropped, 0,
        "out-of-range match events: the fabric never reports beyond its input"
    );
    per_line
        .into_iter()
        .map(|(line, codes)| {
            let start = starts[line];
            let end = starts.get(line + 1).map(|&s| s.saturating_sub(1)).unwrap_or(input.len());
            LineHit { line, span: (start, end), codes: codes.into_iter().collect() }
        })
        .collect()
}

/// Collapses a raw event stream to at most one event per pattern within
/// every window of `window` symbols — the paper's output buffer can be
/// serviced at a bounded rate, and rate-limiting reports per pattern is
/// the standard mitigation.
pub fn throttle(events: &[MatchEvent], window: u64) -> Vec<MatchEvent> {
    let mut last: std::collections::BTreeMap<ReportCode, u64> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let keep = match last.get(&e.code) {
            Some(&prev) => e.pos >= prev + window,
            None => true,
        };
        if keep {
            last.insert(e.code, e.pos);
            out.push(*e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pos: u64, code: u32) -> MatchEvent {
        MatchEvent::new(pos, ReportCode(code))
    }

    #[test]
    fn counts_and_firsts() {
        let events = [ev(5, 0), ev(9, 1), ev(12, 0), ev(3, 1)];
        assert_eq!(count_by_code(&events, 3), vec![2, 2, 0]);
        assert_eq!(first_by_code(&events, 3), vec![Some(5), Some(3), None]);
        // out-of-range codes ignored
        assert_eq!(count_by_code(&[ev(1, 9)], 2), vec![0, 0]);
    }

    #[test]
    fn line_grouping() {
        let input = b"error a\nok\nerror b error c\n";
        //            0......7 8..11 ...
        let events = [ev(4, 0), ev(6, 1), ev(15, 0), ev(24, 0)];
        let hits = group_by_line(input, &events);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 0);
        assert_eq!(hits[0].codes, vec![ReportCode(0), ReportCode(1)]);
        assert_eq!(&input[hits[0].span.0..hits[0].span.1], b"error a");
        assert_eq!(hits[1].line, 2);
        assert_eq!(hits[1].codes, vec![ReportCode(0)]); // deduped within line
        assert_eq!(&input[hits[1].span.0..hits[1].span.1], b"error b error c");
    }

    #[test]
    fn line_grouping_edge_cases() {
        // no trailing newline; event on the exact newline boundary
        let input = b"ab\ncd";
        let hits = group_by_line(input, &[ev(2, 0), ev(4, 1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 0);
        assert_eq!(hits[1].line, 1);
        assert_eq!(&input[hits[1].span.0..hits[1].span.1], b"cd");
        // empty input, no events
        assert!(group_by_line(b"", &[]).is_empty());
    }

    #[test]
    fn out_of_range_events_are_counted_not_silent() {
        let recorder = std::sync::Arc::new(ca_telemetry::MemoryRecorder::new());
        let telemetry = Telemetry::from_arc(recorder.clone());
        // In-range events never touch the counter.
        group_by_line_with(b"ab\ncd", &[ev(0, 0)], &telemetry);
        assert_eq!(recorder.counter("scan.dropped_events"), 0);

        // An out-of-range event (here: position at input length, from a
        // hypothetically foreign/corrupt stream) increments the counter —
        // and in debug builds also trips the corruption assertion, *after*
        // the counter was emitted.
        let t = telemetry.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group_by_line_with(b"ab", &[ev(1, 0), ev(2, 0), ev(9, 1)], &t)
        }));
        assert_eq!(result.is_err(), cfg!(debug_assertions));
        assert_eq!(recorder.counter("scan.dropped_events"), 2);
        if let Ok(hits) = result {
            assert_eq!(hits.len(), 1, "in-range events still grouped in release builds");
        }
    }

    #[test]
    fn throttling() {
        let events = [ev(0, 0), ev(3, 0), ev(10, 0), ev(4, 1)];
        let kept = throttle(&events, 10);
        assert_eq!(kept, vec![ev(0, 0), ev(10, 0), ev(4, 1)]);
        // window 1 keeps everything that advances
        assert_eq!(throttle(&events, 1).len(), 4);
    }
}
