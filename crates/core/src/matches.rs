//! Match post-processing utilities.
//!
//! The fabric reports *every* accepting (position, pattern) event — the
//! hardware-faithful stream. Applications usually want aggregations:
//! counts per pattern, hits per line, or first occurrences. These helpers
//! cover the common cases (the `log_scan` example uses line grouping).

use ca_automata::engine::MatchEvent;
use ca_automata::ReportCode;
use std::collections::BTreeSet;

/// Per-pattern match counts: `counts[code] = events with that code`.
///
/// Codes at or beyond `patterns` are ignored (defensive against foreign
/// event streams).
pub fn count_by_code(events: &[MatchEvent], patterns: usize) -> Vec<u64> {
    let mut counts = vec![0u64; patterns];
    for e in events {
        if let Some(c) = counts.get_mut(e.code.0 as usize) {
            *c += 1;
        }
    }
    counts
}

/// First match position per pattern, if any.
pub fn first_by_code(events: &[MatchEvent], patterns: usize) -> Vec<Option<u64>> {
    let mut first = vec![None; patterns];
    for e in events {
        if let Some(slot) = first.get_mut(e.code.0 as usize) {
            let keep = slot.is_none_or(|p| e.pos < p);
            if keep {
                *slot = Some(e.pos);
            }
        }
    }
    first
}

/// A line of the input that matched at least one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineHit {
    /// 0-based line number.
    pub line: usize,
    /// Byte range of the line in the input (excludes the newline).
    pub span: (usize, usize),
    /// Distinct pattern codes that matched within the line.
    pub codes: Vec<ReportCode>,
}

/// Groups match events by input line (newline-delimited), collapsing
/// repeated reports of the same pattern within a line — what an alerting
/// pipeline does with the raw stream.
///
/// Events whose position lies beyond `input` are ignored.
pub fn group_by_line(input: &[u8], events: &[MatchEvent]) -> Vec<LineHit> {
    // line start offsets
    let mut starts = vec![0usize];
    for (i, &b) in input.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| match starts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let mut per_line: std::collections::BTreeMap<usize, BTreeSet<ReportCode>> =
        std::collections::BTreeMap::new();
    for e in events {
        if (e.pos as usize) < input.len() {
            per_line.entry(line_of(e.pos as usize)).or_default().insert(e.code);
        }
    }
    per_line
        .into_iter()
        .map(|(line, codes)| {
            let start = starts[line];
            let end = starts.get(line + 1).map(|&s| s.saturating_sub(1)).unwrap_or(input.len());
            LineHit { line, span: (start, end), codes: codes.into_iter().collect() }
        })
        .collect()
}

/// Collapses a raw event stream to at most one event per pattern within
/// every window of `window` symbols — the paper's output buffer can be
/// serviced at a bounded rate, and rate-limiting reports per pattern is
/// the standard mitigation.
pub fn throttle(events: &[MatchEvent], window: u64) -> Vec<MatchEvent> {
    let mut last: std::collections::BTreeMap<ReportCode, u64> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let keep = match last.get(&e.code) {
            Some(&prev) => e.pos >= prev + window,
            None => true,
        };
        if keep {
            last.insert(e.code, e.pos);
            out.push(*e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pos: u64, code: u32) -> MatchEvent {
        MatchEvent::new(pos, ReportCode(code))
    }

    #[test]
    fn counts_and_firsts() {
        let events = [ev(5, 0), ev(9, 1), ev(12, 0), ev(3, 1)];
        assert_eq!(count_by_code(&events, 3), vec![2, 2, 0]);
        assert_eq!(first_by_code(&events, 3), vec![Some(5), Some(3), None]);
        // out-of-range codes ignored
        assert_eq!(count_by_code(&[ev(1, 9)], 2), vec![0, 0]);
    }

    #[test]
    fn line_grouping() {
        let input = b"error a\nok\nerror b error c\n";
        //            0......7 8..11 ...
        let events = [ev(4, 0), ev(6, 1), ev(15, 0), ev(24, 0)];
        let hits = group_by_line(input, &events);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 0);
        assert_eq!(hits[0].codes, vec![ReportCode(0), ReportCode(1)]);
        assert_eq!(&input[hits[0].span.0..hits[0].span.1], b"error a");
        assert_eq!(hits[1].line, 2);
        assert_eq!(hits[1].codes, vec![ReportCode(0)]); // deduped within line
        assert_eq!(&input[hits[1].span.0..hits[1].span.1], b"error b error c");
    }

    #[test]
    fn line_grouping_edge_cases() {
        // no trailing newline; event on the exact newline boundary
        let input = b"ab\ncd";
        let hits = group_by_line(input, &[ev(2, 0), ev(4, 1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 0);
        assert_eq!(hits[1].line, 1);
        assert_eq!(&input[hits[1].span.0..hits[1].span.1], b"cd");
        // empty input / out-of-range events
        assert!(group_by_line(b"", &[ev(0, 0)]).is_empty());
    }

    #[test]
    fn throttling() {
        let events = [ev(0, 0), ev(3, 0), ev(10, 0), ev(4, 1)];
        let kept = throttle(&events, 10);
        assert_eq!(kept, vec![ev(0, 0), ev(10, 0), ev(4, 1)]);
        // window 1 keeps everything that advances
        assert_eq!(throttle(&events, 1).len(), 4);
    }
}
