//! The on-disk artifact tier: a directory of versioned `CAPR` files
//! shared by every process pointed at it.
//!
//! Layout is `namespace/key-prefix/key`:
//!
//! ```text
//! <root>/programs-v1/<aa>/<fingerprint>-<design>-<slices>-<seed>-<opt>.capr
//! ```
//!
//! where `programs-v1` pins [`PROGRAM_ARTIFACT_VERSION`] (a future format
//! bump changes the namespace instead of invalidating files in place),
//! `<aa>` is the first fingerprint byte in hex (fans the files out across
//! 256 directories), and the file name spells out every [`CacheKey`] field
//! in fixed-width hex with `-` separators — injective and composed only of
//! `[0-9a-f.-]`, so it is safe on every filesystem.
//!
//! Failure policy, in keeping with the [tier contract](super::CacheTier):
//!
//! * **Corruption** (bad magic, checksum mismatch, truncation, any decode
//!   error): the file is quarantined by renaming it to `<name>.corrupt`
//!   (removed outright if even the rename fails), `cache.disk.corrupt`
//!   fires, and the load reports a miss. The caller recompiles and the
//!   write-through replaces the entry. Never an error.
//! * **Write contention**: writers take a best-effort advisory lock — a
//!   `<name>.lock` file created with `create_new` (O_EXCL). Losing the
//!   race skips the write: artifacts are canonical, so whatever the winner
//!   writes is byte-identical to what the loser would have written. A lock
//!   older than `LOCK_STALE_AFTER` (60 s) is presumed abandoned (a crashed
//!   writer) and broken — by *renaming* it to a unique name first, so
//!   when several writers judge the same lock stale simultaneously,
//!   exactly one wins the rename and deletes only the file it renamed;
//!   nobody can delete a fresh lock another writer just created.
//! * **I/O errors** (permissions, a full disk): counted under
//!   `cache.disk.errors` and reported as a miss / skipped write.

use super::{CacheKey, CacheTier, TierStats};
use crate::artifact::{write_atomic, PROGRAM_ARTIFACT_VERSION};
use crate::{Design, Program};
use ca_telemetry::Telemetry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Locks older than this are presumed abandoned and broken. Generously
/// longer than any artifact write (artifacts are at most a few MB).
const LOCK_STALE_AFTER: Duration = Duration::from_secs(60);

/// Artifact file extension.
const ARTIFACT_EXT: &str = "capr";

/// Quarantine extension for artifacts that failed validation.
const QUARANTINE_EXT: &str = "corrupt";

/// The disk tier. See the [module docs](self) for layout and failure
/// policy. `Clone`-free and cheap to construct: all state is the root
/// path plus counters.
pub struct DiskCache {
    root: PathBuf,
    stats: TierStats,
    telemetry: Telemetry,
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache").field("root", &self.root).field("stats", &self.stats).finish()
    }
}

/// The version-pinned namespace directory under the cache root.
pub fn namespace() -> String {
    format!("programs-v{PROGRAM_ARTIFACT_VERSION}")
}

/// The relative path (under a cache root) where `key`'s artifact lives.
///
/// Exposed so tests can check the encoding's properties (injectivity,
/// filesystem safety) without constructing a cache.
pub fn relative_path(key: &CacheKey) -> PathBuf {
    let fp = key.fingerprint.0;
    let design = match key.design {
        Design::Performance => 'p',
        Design::Space => 's',
    };
    let name = format!(
        "{fp:032x}-{design}-{slices:x}-{seed:016x}-{opt}.{ARTIFACT_EXT}",
        slices = key.slices,
        seed = key.seed,
        opt = if key.optimized { 'o' } else { 'n' },
    );
    let prefix = format!("{:02x}", (fp >> 120) as u8);
    [namespace(), prefix, name].iter().collect()
}

impl DiskCache {
    /// A disk tier rooted at `root`. The directory is created lazily on
    /// first write; a read against a missing directory is simply a miss.
    pub fn new<P: Into<PathBuf>>(root: P) -> DiskCache {
        DiskCache {
            root: root.into(),
            stats: TierStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of `key`'s artifact file.
    pub fn artifact_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join(relative_path(key))
    }

    fn bump(&mut self, field: fn(&mut TierStats) -> &mut u64, counter: &'static str) {
        *field(&mut self.stats) += 1;
        self.telemetry.counter(counter, 1);
    }

    /// Moves a failed-validation artifact out of the lookup path so it is
    /// never re-read, preserving it for post-mortems when possible.
    fn quarantine(&mut self, path: &Path) {
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".");
        quarantined.push(QUARANTINE_EXT);
        if std::fs::rename(path, &quarantined).is_err() {
            std::fs::remove_file(path).ok();
        }
        self.bump(|s| &mut s.corrupt, "cache.disk.corrupt");
    }

    /// Number of artifacts and total bytes currently stored (diagnostics
    /// for `cactl cache`). Quarantined, lock, and temp files are excluded.
    pub fn scan(&self) -> std::io::Result<(u64, u64)> {
        let ns = self.root.join(namespace());
        let mut entries = 0u64;
        let mut bytes = 0u64;
        if !ns.exists() {
            return Ok((0, 0));
        }
        for shard in std::fs::read_dir(&ns)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for file in std::fs::read_dir(&shard)? {
                let file = file?;
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) == Some(ARTIFACT_EXT) {
                    entries += 1;
                    bytes += file.metadata()?.len();
                }
            }
        }
        Ok((entries, bytes))
    }

    /// Removes the entire namespace directory (all cached artifacts,
    /// quarantined files, and stale locks). Other namespaces — artifacts
    /// from other format versions — are left alone.
    pub fn clear(&self) -> std::io::Result<()> {
        let ns = self.root.join(namespace());
        match std::fs::remove_dir_all(&ns) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Takes the advisory write lock for `path`. Returns a guard that
    /// deletes the lock file on drop, or `None` if another live writer
    /// holds it (in which case the write should be skipped — the winner
    /// writes identical bytes).
    fn try_lock(&mut self, path: &Path) -> Option<LockGuard> {
        let mut lock_path = path.as_os_str().to_owned();
        lock_path.push(".lock");
        let lock_path = PathBuf::from(lock_path);
        for attempt in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&lock_path) {
                Ok(_) => return Some(LockGuard { path: lock_path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&lock_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|mtime| mtime.elapsed().ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale && attempt == 0 {
                        // Break the abandoned lock by *claiming* it with a
                        // rename to a unique name before deleting. Several
                        // writers may judge the same lock stale, but only
                        // one rename succeeds, and each contender deletes
                        // only the file it renamed — a bare remove_file
                        // here would let the slower contender delete the
                        // fresh lock the faster one just created.
                        static BREAK_SEQ: AtomicU64 = AtomicU64::new(0);
                        let mut claimed = lock_path.as_os_str().to_owned();
                        claimed.push(format!(
                            ".broken-{}-{}",
                            std::process::id(),
                            BREAK_SEQ.fetch_add(1, Ordering::Relaxed)
                        ));
                        let claimed = PathBuf::from(claimed);
                        if std::fs::rename(&lock_path, &claimed).is_ok() {
                            // Re-judge on the claimed file: between the
                            // staleness check and the rename, a faster
                            // contender may have broken the old lock and
                            // created a fresh one — which this rename just
                            // stole. Fresh → put it back (link-then-unlink
                            // restores without clobbering anything newer)
                            // and treat the lock as contended.
                            let still_stale = std::fs::metadata(&claimed)
                                .and_then(|m| m.modified())
                                .ok()
                                .and_then(|mtime| mtime.elapsed().ok())
                                .is_some_and(|age| age > LOCK_STALE_AFTER);
                            if !still_stale {
                                let _ = std::fs::hard_link(&claimed, &lock_path);
                                std::fs::remove_file(&claimed).ok();
                                self.telemetry.counter("cache.disk.lock_skipped", 1);
                                return None;
                            }
                            std::fs::remove_file(&claimed).ok();
                        }
                        // The stale lock is gone — broken here or by a
                        // faster contender; retry the exclusive create.
                        continue;
                    }
                    self.telemetry.counter("cache.disk.lock_skipped", 1);
                    return None;
                }
                Err(_) => {
                    self.bump(|s| &mut s.errors, "cache.disk.errors");
                    return None;
                }
            }
        }
        None
    }

    /// The one read path: fetches `key`'s file, fully validates it
    /// ([`Program::from_bytes`] checks magic, version, checksum and
    /// structure), and applies the tier's failure policy — missing file
    /// is a counted miss, unreadable file a counted error, corrupt file
    /// quarantined. Returns the validated bytes together with the decoded
    /// program so callers pick whichever form they need.
    fn read_validated(&mut self, key: &CacheKey) -> Option<(Vec<u8>, Program)> {
        let path = self.artifact_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.bump(|s| &mut s.misses, "cache.disk.misses");
                return None;
            }
            Err(_) => {
                self.bump(|s| &mut s.errors, "cache.disk.errors");
                return None;
            }
        };
        match Program::from_bytes(&bytes) {
            Ok(program) => {
                self.bump(|s| &mut s.hits, "cache.disk.hits");
                Some((bytes, program))
            }
            Err(_) => {
                // failed checksum/decode: quarantine and fall back to a
                // recompile — a damaged cache entry is never an error
                self.quarantine(&path);
                None
            }
        }
    }

    /// Loads `key`'s artifact as validated raw bytes (the canonical
    /// encoding, exactly as stored). Same counters, quarantine, and miss
    /// semantics as the [`CacheTier::load`] path — this is what the cache
    /// server serves over the wire, where re-encoding the decoded program
    /// would be wasted work.
    pub fn load_bytes(&mut self, key: &CacheKey) -> Option<Vec<u8>> {
        self.read_validated(key).map(|(bytes, _)| bytes)
    }
}

/// Deletes the lock file when the write finishes (or fails).
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

impl CacheTier for DiskCache {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn load(&mut self, key: &CacheKey) -> Option<Program> {
        self.read_validated(key).map(|(_, program)| program)
    }

    fn store(&mut self, key: &CacheKey, artifact: &[u8]) {
        let path = self.artifact_path(key);
        let dir = path.parent().expect("artifact path has a parent");
        if std::fs::create_dir_all(dir).is_err() {
            self.bump(|s| &mut s.errors, "cache.disk.errors");
            return;
        }
        let Some(_guard) = self.try_lock(&path) else { return };
        match write_atomic(&path, artifact) {
            Ok(()) => self.bump(|s| &mut s.writes, "cache.disk.writes"),
            Err(_) => self.bump(|s| &mut s.errors, "cache.disk.errors"),
        }
    }

    fn stats(&self) -> TierStats {
        self.stats
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::Fingerprint;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        }
    }

    #[test]
    fn relative_paths_are_filesystem_safe_and_sharded() {
        let path = relative_path(&key(0xab00_0000_0000_0000_0000_0000_0000_0001));
        let parts: Vec<_> =
            path.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
        assert_eq!(parts.len(), 3, "{parts:?}");
        assert_eq!(parts[0], format!("programs-v{PROGRAM_ARTIFACT_VERSION}"));
        assert_eq!(parts[1], "ab", "shard is the first fingerprint byte");
        assert!(parts[2].ends_with(".capr"));
        for part in &parts {
            assert!(
                part.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
                "unsafe character in {part:?}"
            );
        }
    }

    #[test]
    fn every_key_field_changes_the_path() {
        let base = key(1);
        let mut variants = vec![base];
        variants.push(CacheKey { fingerprint: Fingerprint(2), ..base });
        variants.push(CacheKey { design: Design::Space, ..base });
        variants.push(CacheKey { slices: 16, ..base });
        variants.push(CacheKey { seed: 0xcb, ..base });
        variants.push(CacheKey { optimized: true, ..base });
        let paths: Vec<_> = variants.iter().map(relative_path).collect();
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert_ne!(a, b, "colliding paths for distinct keys");
            }
        }
    }

    #[test]
    fn lock_contention_skips_the_write_and_stale_locks_break() {
        let dir = std::env::temp_dir().join(format!("ca-disk-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut cache = DiskCache::new(&dir);
        let target = dir.join("entry.capr");

        // a held (fresh) lock blocks a second writer
        let guard = cache.try_lock(&target).expect("first lock succeeds");
        assert!(cache.try_lock(&target).is_none(), "contended lock is skipped");
        drop(guard);
        assert!(!dir.join("entry.capr.lock").exists(), "guard removed the lock file");

        // an abandoned lock with an ancient mtime is broken and re-taken
        let lock_path = dir.join("entry.capr.lock");
        std::fs::write(&lock_path, b"").unwrap();
        let stale = std::time::SystemTime::now() - Duration::from_secs(3600);
        let file = std::fs::OpenOptions::new().write(true).open(&lock_path).unwrap();
        file.set_modified(stale).unwrap();
        drop(file);
        assert!(cache.try_lock(&target).is_some(), "stale lock is broken");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression test for the stale-lock break race: two writers that
    /// both judge one lock stale used to both `remove_file` it, so the
    /// loser could delete the winner's *fresh* lock and end up with a
    /// second guard on the same path (whose drop then deleted whichever
    /// lock was current). Breaking via rename-to-unique means exactly one
    /// contender ever wins the break.
    #[test]
    fn concurrent_stale_lock_break_elects_exactly_one_winner() {
        let dir = std::env::temp_dir().join(format!(
            "ca-disk-lock-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("entry.capr");
        let lock_path = dir.join("entry.capr.lock");
        for round in 0..8 {
            // plant an abandoned lock with an ancient mtime
            std::fs::write(&lock_path, b"").unwrap();
            let old = std::time::SystemTime::now() - Duration::from_secs(3600);
            let file = std::fs::OpenOptions::new().write(true).open(&lock_path).unwrap();
            file.set_modified(old).unwrap();
            drop(file);

            let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
            let guards: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = std::sync::Arc::clone(&barrier);
                    let dir = dir.clone();
                    let target = target.clone();
                    std::thread::spawn(move || {
                        let mut cache = DiskCache::new(&dir);
                        barrier.wait();
                        cache.try_lock(&target)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            let winners = guards.iter().filter(|g| g.is_some()).count();
            assert_eq!(winners, 1, "round {round}: exactly one contender re-takes the lock");
            assert!(lock_path.exists(), "round {round}: the winner's fresh lock survived");
            drop(guards);
            assert!(!lock_path.exists(), "round {round}: the winner's guard cleaned up");
            // no .broken-* residue from either contender
            let residue: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.contains(".broken-"))
                .collect();
            assert!(residue.is_empty(), "round {round}: leftover break files {residue:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
