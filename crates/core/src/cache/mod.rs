//! The tiered artifact cache: memory → disk → remote.
//!
//! Compiling a large automaton takes seconds (graph partitioning dominates);
//! services that repeatedly instantiate the same rule sets should not pay
//! that more than once — and a fleet of serving processes should not pay it
//! more than once *between* them. [`CacheAutomaton`](crate::CacheAutomaton)
//! therefore consults a tiered [`ArtifactCache`] keyed by the canonical
//! fingerprint of the input NFA plus every compiler option that affects the
//! output:
//!
//! * **Tier 0 — memory.** The bounded in-process [`ProgramCache`]: a
//!   `HashMap` index over an intrusive LRU list, with an LFU-style
//!   admission filter in the spirit of W-TinyLFU. A compact count-min
//!   sketch of 4-bit counters estimates how often each key has been seen,
//!   and when the cache is full a new entry is only admitted if its
//!   estimated frequency exceeds the LRU victim's — one-shot compilations
//!   cannot wash out a popular working set. Counters are halved once the
//!   sketch has absorbed a sample window of accesses, so the frequency
//!   history ages.
//! * **Tier 1 — disk.** A [`DiskCache`](disk::DiskCache) directory of
//!   versioned `CAPR` artifacts shared by every process pointed at it,
//!   written atomically and read with full corruption checking (a damaged
//!   file is quarantined and treated as a miss, never an error).
//! * **Tier 2 — remote.** A [`RemoteCache`](remote::RemoteCache) client
//!   speaking CACHE_GET / CACHE_PUT frames of the serving wire protocol,
//!   so a fleet can share one compilation through a cache peer.
//!
//! Lookups walk the tiers in order; a hit in a lower tier repopulates
//! every tier above it on the way back, and a fresh compilation writes
//! through to all of them. Persistent tiers are *never* load-bearing: any
//! tier failure (I/O, corruption, a dead peer) degrades to a miss plus a
//! telemetry counter, and the caller simply compiles.

pub mod disk;
pub mod remote;

use crate::{Design, Program};
use ca_automata::{Fingerprint, StableHasher};
use ca_telemetry::Telemetry;
use std::collections::HashMap;

/// Everything that determines a compilation's output, in canonical form.
///
/// Two [`compile_nfa`](crate::CacheAutomaton::compile_nfa) calls with equal
/// keys produce byte-identical bitstreams, so a cached [`Program`] is
/// indistinguishable from a fresh compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical fingerprint of the *input* automaton (pre-optimization).
    pub fingerprint: Fingerprint,
    /// Target design point.
    pub design: Design,
    /// Slice count.
    pub slices: usize,
    /// Partitioner seed.
    pub seed: u64,
    /// Whether the space optimizer runs (the *resolved* policy, so
    /// `Optimize::Auto` and an explicit equivalent choice key the same).
    pub optimized: bool,
}

impl CacheKey {
    /// Stable 64-bit hash of the key (drives the frequency sketch).
    pub fn hash64(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_bytes(&self.fingerprint.to_bytes());
        h.write_u8(match self.design {
            Design::Performance => 0,
            Design::Space => 1,
        });
        // Canonical width: `slices` is hashed as u64 so the key is
        // identical on 32- and 64-bit targets.
        h.write_u64(self.slices as u64);
        h.write_u64(self.seed);
        h.write_u8(self.optimized as u8);
        let fp = h.finish().0;
        (fp as u64) ^ ((fp >> 64) as u64)
    }
}

/// Counters describing memory-tier cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (a lower tier or a fresh compilation followed).
    pub misses: u64,
    /// Programs stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Candidates the admission filter turned away (their estimated
    /// frequency did not beat the LRU victim's).
    pub rejected: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters describing one persistent tier's behaviour since construction.
///
/// Mirrored to telemetry as `cache.<tier>.*` counters (`cache.disk.*`,
/// `cache.remote.*`), increment for increment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Loads that produced a usable program.
    pub hits: u64,
    /// Clean lookups that found nothing stored.
    pub misses: u64,
    /// Artifacts stored.
    pub writes: u64,
    /// Stored artifacts that failed the checksum or decode and were
    /// quarantined — each one degrades to a miss, never an error.
    pub corrupt: u64,
    /// Tier-internal failures (I/O errors, a dead peer). Also misses from
    /// the caller's point of view.
    pub errors: u64,
}

/// One persistent layer of the tiered cache (a disk directory, a remote
/// peer). Implementations own their failure policy: every method is
/// infallible from the caller's perspective — a broken tier reports
/// misses and counts errors rather than surfacing them.
pub trait CacheTier: Send {
    /// Short stable tier name; also the telemetry infix (`cache.<name>.*`).
    fn name(&self) -> &'static str;

    /// Loads and fully validates the artifact stored under `key`.
    /// Corrupt entries are quarantined internally and reported as `None`.
    fn load(&mut self, key: &CacheKey) -> Option<Program>;

    /// Stores `artifact` (canonical `CAPR` bytes of the program compiled
    /// for `key`). Best-effort; failures are counted, not returned.
    fn store(&mut self, key: &CacheKey, artifact: &[u8]);

    /// Behaviour counters since construction.
    fn stats(&self) -> TierStats;

    /// Mirrors every [`TierStats`] increment to `telemetry` as a
    /// `cache.<name>.*` counter.
    fn set_telemetry(&mut self, telemetry: Telemetry);
}

/// Count-min sketch of 4-bit counters (the TinyLFU frequency filter).
///
/// Four hash functions index one table of packed counters; an item's
/// estimate is the minimum of its four counters. After `sample_size`
/// increments every counter is halved, aging out stale popularity.
#[derive(Debug)]
struct FrequencySketch {
    /// Packed 4-bit counters, 16 per u64 word. Length is a power of two.
    table: Vec<u64>,
    /// Increments since the last halving.
    ops: u32,
    /// Halve after this many increments.
    sample_size: u32,
}

impl FrequencySketch {
    fn new(capacity: usize) -> FrequencySketch {
        // ≥ 8 counters per cached entry, rounded to a power of two
        let counters = (capacity * 8).next_power_of_two().max(64);
        FrequencySketch {
            table: vec![0u64; counters / 16],
            ops: 0,
            sample_size: (capacity as u32).saturating_mul(10).max(100),
        }
    }

    /// The four counter slots for a key hash.
    fn slots(&self, hash: u64) -> [usize; 4] {
        let mask = self.table.len() * 16 - 1;
        let mut slots = [0usize; 4];
        let mut h = hash | 1;
        for slot in &mut slots {
            // mix per hash function (SplitMix64 finalizer)
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = (z ^ (z >> 31)) as usize & mask;
        }
        slots
    }

    fn get(&self, slot: usize) -> u8 {
        ((self.table[slot / 16] >> ((slot % 16) * 4)) & 0xf) as u8
    }

    fn set(&mut self, slot: usize, value: u8) {
        let shift = (slot % 16) * 4;
        let word = &mut self.table[slot / 16];
        *word = (*word & !(0xfu64 << shift)) | ((value as u64 & 0xf) << shift);
    }

    /// Estimated access frequency of `hash` (0..=15).
    fn estimate(&self, hash: u64) -> u8 {
        self.slots(hash).into_iter().map(|s| self.get(s)).min().unwrap_or(0)
    }

    /// Records one access.
    fn record(&mut self, hash: u64) {
        for slot in self.slots(hash) {
            let v = self.get(slot);
            if v < 15 {
                self.set(slot, v + 1);
            }
        }
        self.ops += 1;
        if self.ops >= self.sample_size {
            self.halve();
        }
    }

    fn halve(&mut self) {
        for word in &mut self.table {
            // halve all 16 packed counters at once
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.ops /= 2;
    }
}

/// Sentinel index for "no node" in the intrusive recency list.
const NIL: usize = usize::MAX;

/// One resident entry: the program plus its position in the LRU list.
struct Node {
    key: CacheKey,
    program: Program,
    /// Towards the MRU end (the entry used more recently than this one).
    prev: usize,
    /// Towards the LRU end (the entry used less recently than this one).
    next: usize,
}

/// A bounded program cache with LRU eviction and TinyLFU admission.
///
/// Lookups and insertions are O(1): a `HashMap` indexes into a slab of
/// entries threaded onto an intrusive doubly-linked recency list, so the
/// tiered cache's extra lookups on every compile stay constant-time no
/// matter the capacity.
///
/// Entry-count capacity (programs are a few KB to a few MB; callers that
/// care about bytes should size conservatively). Not a public long-term
/// API surface: reach it through
/// [`CacheAutomaton`](crate::CacheAutomaton).
pub struct ProgramCache {
    /// Key → slot in `nodes`.
    index: HashMap<CacheKey, usize>,
    /// Slab of entries; freed slots are recycled via `free`.
    nodes: Vec<Option<Node>>,
    /// Recycled slab slots.
    free: Vec<usize>,
    /// Most-recently-used slot (NIL when empty).
    head: usize,
    /// Least-recently-used slot (NIL when empty); the eviction victim.
    tail: usize,
    capacity: usize,
    sketch: FrequencySketch,
    stats: CacheStats,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("len", &self.index.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ProgramCache {
    /// A cache holding at most `capacity` programs (0 disables caching).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            index: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            sketch: FrequencySketch::new(capacity.max(1)),
            stats: CacheStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Mirrors every [`CacheStats`] increment to `telemetry` as a
    /// `cache.*` counter (`cache.hits`, `cache.misses`, `cache.insertions`,
    /// `cache.evictions`, `cache.rejected`), so recorded totals always
    /// equal [`stats`](ProgramCache::stats).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Unlinks `slot` from the recency list (it must be linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let node = self.nodes[slot].as_ref().expect("linked slot is occupied");
            (node.prev, node.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].as_mut().expect("prev slot is occupied").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].as_mut().expect("next slot is occupied").prev = prev,
        }
    }

    /// Links `slot` at the MRU end of the recency list.
    fn link_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let node = self.nodes[slot].as_mut().expect("slot is occupied");
            node.prev = NIL;
            node.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.nodes[h].as_mut().expect("head slot is occupied").prev = slot,
        }
        self.head = slot;
    }

    /// Moves an already-resident `slot` to the MRU position.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Looks up `key`, recording the access in the frequency sketch.
    pub fn get(&mut self, key: &CacheKey) -> Option<Program> {
        self.sketch.record(key.hash64());
        match self.index.get(key).copied() {
            Some(slot) => {
                self.touch(slot);
                self.stats.hits += 1;
                self.telemetry.counter("cache.hits", 1);
                let node = self.nodes[slot].as_ref().expect("indexed slot is occupied");
                Some(node.program.clone())
            }
            None => {
                self.stats.misses += 1;
                self.telemetry.counter("cache.misses", 1);
                None
            }
        }
    }

    /// Offers a freshly compiled program for caching.
    ///
    /// With free room the program is always stored. At capacity the
    /// TinyLFU admission filter decides: the candidate must have a higher
    /// estimated frequency than the LRU victim, otherwise it is rejected
    /// and the cache is left unchanged.
    pub fn insert(&mut self, key: CacheKey, program: Program) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.index.get(&key).copied() {
            // racing compilations of the same key: keep the newer program
            self.nodes[slot].as_mut().expect("indexed slot is occupied").program = program;
            self.touch(slot);
            return;
        }
        if self.index.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "cache at capacity is non-empty");
            let victim_key = self.nodes[victim].as_ref().expect("tail slot is occupied").key;
            let candidate_freq = self.sketch.estimate(key.hash64());
            let victim_freq = self.sketch.estimate(victim_key.hash64());
            if candidate_freq <= victim_freq {
                self.stats.rejected += 1;
                self.telemetry.counter("cache.rejected", 1);
                return;
            }
            self.unlink(victim);
            self.nodes[victim] = None;
            self.free.push(victim);
            self.index.remove(&victim_key);
            self.stats.evictions += 1;
            self.telemetry.counter("cache.evictions", 1);
        }
        let node = Node { key, program, prev: NIL, next: NIL };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(node);
                slot
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.link_front(slot);
        self.index.insert(key, slot);
        self.stats.insertions += 1;
        self.telemetry.counter("cache.insertions", 1);
    }
}

/// The tiered artifact cache behind
/// [`CacheAutomaton`](crate::CacheAutomaton): the in-memory
/// [`ProgramCache`] (tier 0) backed by any number of persistent
/// [`CacheTier`]s consulted in order (disk, then remote, in the default
/// wiring). See the [module docs](self) for the tier walk and failure
/// policy.
pub struct ArtifactCache {
    memory: ProgramCache,
    tiers: Vec<Box<dyn CacheTier>>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("memory", &self.memory)
            .field("tiers", &self.tiers.iter().map(|t| t.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl ArtifactCache {
    /// A tiered cache with a memory tier of `capacity` entries (0 disables
    /// in-memory storage — persistent tiers still serve) and no
    /// persistent tiers yet.
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            memory: ProgramCache::new(capacity),
            tiers: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Appends a persistent tier; lookups consult tiers in push order.
    pub fn push_tier(&mut self, mut tier: Box<dyn CacheTier>) {
        tier.set_telemetry(self.telemetry.clone());
        self.tiers.push(tier);
    }

    /// Routes every tier's counters (`cache.*`, `cache.disk.*`, …) to
    /// `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.memory.set_telemetry(telemetry.clone());
        for tier in &mut self.tiers {
            tier.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Memory-tier counters.
    pub fn memory_stats(&self) -> CacheStats {
        self.memory.stats()
    }

    /// `(name, stats)` for every persistent tier, in lookup order.
    pub fn tier_stats(&self) -> Vec<(&'static str, TierStats)> {
        self.tiers.iter().map(|t| (t.name(), t.stats())).collect()
    }

    /// Direct access to the memory tier (tests and diagnostics).
    pub fn memory(&mut self) -> &mut ProgramCache {
        &mut self.memory
    }

    /// Looks `key` up through the tiers: memory first, then each
    /// persistent tier in order. A hit in tier *i* repopulates the memory
    /// tier and writes through to every persistent tier above *i*, so the
    /// next lookup short-circuits earlier.
    pub fn get(&mut self, key: &CacheKey) -> Option<Program> {
        if let Some(hit) = self.memory.get(key) {
            return Some(hit);
        }
        for i in 0..self.tiers.len() {
            let Some(program) = self.tiers[i].load(key) else { continue };
            self.memory.insert(*key, program.clone());
            if i > 0 {
                // canonical encoding: re-serializing the loaded program
                // yields the exact bytes the lower tier stored
                let bytes = program.to_bytes();
                for earlier in &mut self.tiers[..i] {
                    earlier.store(key, &bytes);
                }
            }
            return Some(program);
        }
        None
    }

    /// Stores a freshly compiled program in the memory tier (subject to
    /// admission) and writes its artifact through to every persistent
    /// tier unconditionally.
    pub fn insert(&mut self, key: CacheKey, program: Program) {
        if !self.tiers.is_empty() {
            let bytes = program.to_bytes();
            for tier in &mut self.tiers {
                tier.store(&key, &bytes);
            }
        }
        self.memory.insert(key, program);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn key_for(tag: &str) -> (CacheKey, Program) {
        let program = CacheAutomaton::new().compile_patterns(&[tag]).unwrap();
        let nfa = ca_automata::regex::compile_patterns(&[tag]).unwrap();
        let key = CacheKey {
            fingerprint: nfa.fingerprint(),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        };
        (key, program)
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut cache = ProgramCache::new(4);
        let (key, program) = key_for("counter");
        assert!(cache.get(&key).is_none());
        cache.insert(key, program);
        assert!(cache.get(&key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ProgramCache::new(0);
        let (key, program) = key_for("nocache");
        cache.insert(key, program);
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn admission_filter_protects_hot_entries() {
        let mut cache = ProgramCache::new(1);
        let (hot_key, hot) = key_for("hot");
        cache.insert(hot_key, hot);
        // make the resident entry popular
        for _ in 0..6 {
            assert!(cache.get(&hot_key).is_some());
        }
        // a cold one-shot candidate must not displace it
        let (cold_key, cold) = key_for("cold");
        assert!(cache.get(&cold_key).is_none()); // records one access
        cache.insert(cold_key, cold);
        assert!(cache.get(&hot_key).is_some(), "hot entry survived");
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn frequent_candidate_evicts_lru_victim() {
        let mut cache = ProgramCache::new(1);
        let (a_key, a) = key_for("victim");
        cache.insert(a_key, a);
        let (b_key, b) = key_for("riser");
        // the candidate becomes more popular than the resident
        for _ in 0..8 {
            let _ = cache.get(&b_key);
        }
        cache.insert(b_key, b);
        assert!(cache.get(&b_key).is_some(), "popular candidate admitted");
        assert!(cache.get(&a_key).is_none(), "victim evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_order_tracks_every_use() {
        // capacity 3 with a, b, c resident; touching a then b must leave c
        // as the eviction victim even though it was inserted last.
        let mut cache = ProgramCache::new(3);
        let (a_key, a) = key_for("lru-a");
        let (b_key, b) = key_for("lru-b");
        let (c_key, c) = key_for("lru-c");
        cache.insert(a_key, a);
        cache.insert(b_key, b);
        cache.insert(c_key, c);
        assert!(cache.get(&a_key).is_some());
        assert!(cache.get(&b_key).is_some());
        // make the challenger frequent enough to pass admission
        let (d_key, d) = key_for("lru-d");
        for _ in 0..8 {
            let _ = cache.get(&d_key);
        }
        cache.insert(d_key, d);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&c_key).is_none(), "stale entry evicted");
        assert!(cache.get(&a_key).is_some());
        assert!(cache.get(&b_key).is_some());
        assert!(cache.get(&d_key).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut cache = ProgramCache::new(2);
        let mut keys = Vec::new();
        for i in 0..6 {
            let (key, program) = key_for(&format!("churn{i}"));
            // strictly increasing popularity, so each new key beats the
            // resident victim's estimate and admission always evicts
            for _ in 0..(2 * i + 1) {
                let _ = cache.get(&key);
            }
            cache.insert(key, program);
            keys.push(key);
        }
        assert_eq!(cache.len(), 2);
        // the slab never grows past capacity: every eviction frees a slot
        assert!(cache.nodes.len() <= 2, "slab has {} slots", cache.nodes.len());
        // and the survivors are exactly the two most recent insertions
        assert!(cache.get(&keys[4]).is_some());
        assert!(cache.get(&keys[5]).is_some());
    }

    #[test]
    fn reinserting_a_resident_key_refreshes_recency() {
        let mut cache = ProgramCache::new(2);
        let (a_key, a) = key_for("fresh-a");
        let (b_key, b) = key_for("fresh-b");
        cache.insert(a_key, a.clone());
        cache.insert(b_key, b);
        // re-inserting `a` (a racing compile) must count as a use
        cache.insert(a_key, a);
        let (c_key, c) = key_for("fresh-c");
        for _ in 0..8 {
            let _ = cache.get(&c_key);
        }
        cache.insert(c_key, c);
        assert!(cache.get(&a_key).is_some(), "refreshed entry survived");
        assert!(cache.get(&b_key).is_none(), "stale entry was the victim");
        // insertions counts only new entries, exactly as before
        assert_eq!(cache.stats().insertions, 3);
    }

    #[test]
    fn sketch_counters_saturate_and_halve() {
        let mut sketch = FrequencySketch::new(4);
        // stay below the sample window (100) so auto-halving doesn't fire
        for _ in 0..50 {
            sketch.record(42);
        }
        assert_eq!(sketch.estimate(42), 15, "counters saturate at 15");
        sketch.halve();
        assert!(sketch.estimate(42) <= 7);
    }

    #[test]
    fn hash64_is_pinned() {
        // Fixed synthetic key (no compiler involved) with a pinned digest:
        // the sketch key must be identical across platforms and builds, or
        // admission decisions would differ between 32- and 64-bit hosts.
        let key = CacheKey {
            fingerprint: ca_automata::Fingerprint(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: true,
        };
        assert_eq!(key.hash64(), 0x66d6_b55c_a98d_575e);
        let space = CacheKey { design: Design::Space, ..key };
        assert_ne!(space.hash64(), key.hash64(), "design is part of the key");
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let (a, _) = key_for("alpha");
        let (b, _) = key_for("beta");
        assert_ne!(a.hash64(), b.hash64());
        let mut a2 = a;
        a2.seed ^= 1;
        assert_ne!(a.hash64(), a2.hash64(), "seed is part of the key");
    }
}
