//! The remote artifact tier: a [`CacheTier`] over CACHE_GET / CACHE_PUT
//! frames of the serving wire protocol.
//!
//! This is the client half of the protocol in
//! [`proto`](crate::serve::proto); the server half is
//! [`CacheServer`](crate::serve::cache_server::CacheServer) (`cactl
//! cache-serve`). A *scan* daemon refuses cache frames with a typed
//! error (code 9, unsupported), which this tier treats as a permanent
//! miss.
//!
//! Failure policy is the bluntest of all tiers, because a network peer
//! is the least trustworthy dependency in the stack:
//!
//! * The connection is dialed lazily on first use, so merely configuring
//!   a remote tier costs nothing until a compile actually happens.
//! * Every socket operation — dial, write, read — carries a deadline
//!   ([`RemoteCache::DEFAULT_TIMEOUT`], 5 s, or
//!   [`Builder::remote_cache_timeout`](crate::Builder::remote_cache_timeout)).
//!   A peer that accepted the connection and went silent is
//!   indistinguishable from a dead one past the deadline; the stall is
//!   bounded and counts as a transport failure.
//! * *Any* failure — dial, transport (a timeout included), a
//!   peer-reported error — marks the tier **broken**: every counter bump
//!   goes to `cache.remote.errors` once, and all subsequent loads and
//!   stores short-circuit to misses without touching the network. A
//!   flaky cache peer can slow one compile, never every compile.
//! * Returned artifacts are fully validated ([`Program::from_bytes`]
//!   checks magic, version, and checksum) before use; a corrupt blob
//!   counts under `cache.remote.corrupt` and degrades to a miss, exactly
//!   like a damaged disk file.

use super::{CacheKey, CacheTier, TierStats};
use crate::serve::daemon::{Client, ClientOptions};
use crate::Program;
use ca_telemetry::Telemetry;
use std::time::Duration;

/// The remote tier. See the [module docs](self) for the failure policy.
pub struct RemoteCache {
    addr: String,
    /// One deadline for connect, read, and write alike.
    timeout: Duration,
    client: Option<Client>,
    /// Latched on the first failure; a broken tier never retries.
    broken: bool,
    stats: TierStats,
    telemetry: Telemetry,
}

impl std::fmt::Debug for RemoteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCache")
            .field("addr", &self.addr)
            .field("connected", &self.client.is_some())
            .field("broken", &self.broken)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RemoteCache {
    /// The default deadline for connect, read, and write, each: a cache
    /// peer that cannot answer in 5 s is slower than recompiling.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

    /// A remote tier speaking to the cache peer at `addr` (`host:port` or
    /// `unix:<path>`). Nothing is dialed until the first load or store.
    pub fn new<S: Into<String>>(addr: S) -> RemoteCache {
        RemoteCache {
            addr: addr.into(),
            timeout: RemoteCache::DEFAULT_TIMEOUT,
            client: None,
            broken: false,
            stats: TierStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The peer address this tier was configured with.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Overrides [`DEFAULT_TIMEOUT`](RemoteCache::DEFAULT_TIMEOUT) for
    /// connect, read, and write alike. Takes effect on the next dial, so
    /// call it before the first load or store.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Whether the tier has latched its broken state.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn bump(&mut self, field: fn(&mut TierStats) -> &mut u64, counter: &'static str) {
        *field(&mut self.stats) += 1;
        self.telemetry.counter(counter, 1);
    }

    /// Latches the broken state (dropping the connection) and counts the
    /// failure.
    fn mark_broken(&mut self) {
        self.broken = true;
        self.client = None;
        self.bump(|s| &mut s.errors, "cache.remote.errors");
    }

    /// The live connection, dialing on first use. `None` once broken.
    fn client(&mut self) -> Option<&mut Client> {
        if self.broken {
            return None;
        }
        if self.client.is_none() {
            match Client::connect_with(&self.addr, ClientOptions::uniform(self.timeout)) {
                Ok(client) => self.client = Some(client),
                Err(_) => {
                    self.mark_broken();
                    return None;
                }
            }
        }
        self.client.as_mut()
    }
}

impl CacheTier for RemoteCache {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn load(&mut self, key: &CacheKey) -> Option<Program> {
        let client = self.client()?;
        match client.cache_get(key) {
            Ok(Some(artifact)) => match Program::from_bytes(&artifact) {
                Ok(program) => {
                    self.bump(|s| &mut s.hits, "cache.remote.hits");
                    Some(program)
                }
                Err(_) => {
                    // the peer handed back garbage: count it, keep the
                    // connection (the transport itself is fine)
                    self.bump(|s| &mut s.corrupt, "cache.remote.corrupt");
                    None
                }
            },
            Ok(None) => {
                self.bump(|s| &mut s.misses, "cache.remote.misses");
                None
            }
            Err(_) => {
                self.mark_broken();
                None
            }
        }
    }

    fn store(&mut self, key: &CacheKey, artifact: &[u8]) {
        let Some(client) = self.client() else { return };
        match client.cache_put(key, artifact) {
            Ok(()) => self.bump(|s| &mut s.writes, "cache.remote.writes"),
            Err(_) => self.mark_broken(),
        }
    }

    fn stats(&self) -> TierStats {
        self.stats
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::proto::{read_frame, write_frame, Frame};
    use crate::{CacheAutomaton, Design};
    use ca_automata::Fingerprint;
    use std::collections::HashMap;
    use std::io::{BufReader, BufWriter, Write};
    use std::net::TcpListener;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        }
    }

    /// A minimal in-memory cache peer: one connection at a time, a
    /// HashMap store, speaking only the CACHE_* frames.
    fn spawn_peer() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut store: HashMap<CacheKey, Vec<u8>> = HashMap::new();
            // serve connections until the test closes the last one
            while let Ok((conn, _)) = listener.accept() {
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut writer = BufWriter::new(conn);
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    let reply = match frame {
                        Frame::CacheGet { key } => match store.get(&key) {
                            Some(artifact) => Frame::CacheFound { artifact: artifact.clone() },
                            None => Frame::CacheMiss,
                        },
                        Frame::CachePut { key, artifact } => {
                            store.insert(key, artifact);
                            Frame::CachePutOk
                        }
                        _ => Frame::Error { code: 8, message: "not a cache frame".into() },
                    };
                    if write_frame(&mut writer, &reply).is_err() || writer.flush().is_err() {
                        break;
                    }
                }
                if store.contains_key(&key(0xdead)) {
                    // the shutdown sentinel was stored; stop accepting
                    break;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn round_trip_miss_corruption_and_shutdown() {
        let (addr, peer) = spawn_peer();
        let mut tier = RemoteCache::new(addr.clone());
        let program = CacheAutomaton::new().compile_patterns(&["remote"]).unwrap();
        let bytes = program.to_bytes();

        // miss, then store, then hit with full validation
        assert!(tier.load(&key(1)).is_none());
        tier.store(&key(1), &bytes);
        let loaded = tier.load(&key(1)).expect("stored artifact comes back");
        assert_eq!(loaded.to_bytes(), bytes, "artifact survives the wire bit-identically");

        // a corrupt blob from the peer is a counted miss, not an error
        let mut torn = bytes.clone();
        torn[30] ^= 0x10;
        tier.store(&key(2), &torn);
        assert!(tier.load(&key(2)).is_none(), "corrupt artifact is rejected");

        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt, s.errors), (1, 1, 2, 1, 0));
        assert!(!tier.is_broken());

        // tell the peer to stop accepting, then drop the connection
        tier.store(&key(0xdead), b"bye");
        drop(tier);
        peer.join().unwrap();

        // a tier pointed at a dead peer breaks once and goes silent
        let mut dead = RemoteCache::new(addr);
        assert!(dead.load(&key(1)).is_none());
        assert!(dead.is_broken());
        dead.store(&key(1), &bytes);
        assert!(dead.load(&key(1)).is_none());
        assert_eq!(dead.stats().errors, 1, "exactly one error despite repeated use");
    }

    #[test]
    fn scan_daemon_refusal_breaks_the_tier_quietly() {
        let ca = CacheAutomaton::new();
        let daemon =
            crate::Daemon::bind(&ca, "needle\n", "127.0.0.1:0", crate::DaemonOptions::default())
                .unwrap();

        // the refusal itself is the *typed* unsupported error (stable
        // code 9), not a generic config complaint — assert on the code a
        // remote tier keys its permanent-miss decision on
        let mut probe = Client::connect(&daemon.local_addr()).unwrap();
        let err = probe.cache_get(&key(1)).expect_err("scan daemon refuses cache frames");
        assert_eq!(err.code(), 9, "refusal carries the stable unsupported code");
        drop(probe);

        let mut tier = RemoteCache::new(daemon.local_addr());
        assert!(tier.load(&key(1)).is_none(), "refusal is a miss");
        assert!(tier.is_broken());
        assert_eq!(tier.stats().errors, 1);
        daemon.shutdown().unwrap();
    }

    /// A peer that accepts the connection and then never replies must not
    /// hang the compile: the read deadline trips, the tier latches broken
    /// with exactly one counted error, and the load degrades to a miss in
    /// bounded time.
    #[test]
    fn hung_peer_times_out_into_a_bounded_miss() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hung = std::thread::spawn(move || {
            // accept, hold the socket open, never read or write
            let conn = listener.accept().map(|(conn, _)| conn);
            std::thread::sleep(std::time::Duration::from_secs(2));
            drop(conn);
        });

        let mut tier = RemoteCache::new(addr);
        tier.set_timeout(Duration::from_millis(300));
        let started = std::time::Instant::now();
        assert!(tier.load(&key(1)).is_none(), "hung peer degrades to a miss");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout bounds the stall, got {:?}",
            started.elapsed()
        );
        assert!(tier.is_broken());
        assert_eq!(tier.stats().errors, 1, "one latched error, not one per operation");

        // subsequent traffic short-circuits without touching the socket
        tier.store(&key(1), b"never sent");
        assert!(tier.load(&key(1)).is_none());
        assert_eq!(tier.stats().errors, 1);
        hung.join().unwrap();
    }
}
