//! The remote artifact tier: a [`CacheTier`] over CACHE_GET / CACHE_PUT
//! frames of the serving wire protocol.
//!
//! This is the client half of the protocol sketched in
//! [`proto`](crate::serve::proto) — enough for a fleet to share one
//! compilation through a cache peer once a serving loop answers these
//! frames (a later revision; today's scan daemon refuses them with a
//! typed error, which this tier treats as a permanent miss).
//!
//! Failure policy is the bluntest of all tiers, because a network peer
//! is the least trustworthy dependency in the stack:
//!
//! * The connection is dialed lazily on first use, so merely configuring
//!   a remote tier costs nothing until a compile actually happens.
//! * *Any* failure — dial, transport, a peer-reported error — marks the
//!   tier **broken**: every counter bump goes to `cache.remote.errors`
//!   once, and all subsequent loads and stores short-circuit to misses
//!   without touching the network. A flaky cache peer can slow one
//!   compile, never every compile.
//! * Returned artifacts are fully validated ([`Program::from_bytes`]
//!   checks magic, version, and checksum) before use; a corrupt blob
//!   counts under `cache.remote.corrupt` and degrades to a miss, exactly
//!   like a damaged disk file.

use super::{CacheKey, CacheTier, TierStats};
use crate::serve::daemon::Client;
use crate::Program;
use ca_telemetry::Telemetry;

/// The remote tier. See the [module docs](self) for the failure policy.
pub struct RemoteCache {
    addr: String,
    client: Option<Client>,
    /// Latched on the first failure; a broken tier never retries.
    broken: bool,
    stats: TierStats,
    telemetry: Telemetry,
}

impl std::fmt::Debug for RemoteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCache")
            .field("addr", &self.addr)
            .field("connected", &self.client.is_some())
            .field("broken", &self.broken)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RemoteCache {
    /// A remote tier speaking to the cache peer at `addr` (`host:port` or
    /// `unix:<path>`). Nothing is dialed until the first load or store.
    pub fn new<S: Into<String>>(addr: S) -> RemoteCache {
        RemoteCache {
            addr: addr.into(),
            client: None,
            broken: false,
            stats: TierStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The peer address this tier was configured with.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the tier has latched its broken state.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn bump(&mut self, field: fn(&mut TierStats) -> &mut u64, counter: &'static str) {
        *field(&mut self.stats) += 1;
        self.telemetry.counter(counter, 1);
    }

    /// Latches the broken state (dropping the connection) and counts the
    /// failure.
    fn mark_broken(&mut self) {
        self.broken = true;
        self.client = None;
        self.bump(|s| &mut s.errors, "cache.remote.errors");
    }

    /// The live connection, dialing on first use. `None` once broken.
    fn client(&mut self) -> Option<&mut Client> {
        if self.broken {
            return None;
        }
        if self.client.is_none() {
            match Client::connect(&self.addr) {
                Ok(client) => self.client = Some(client),
                Err(_) => {
                    self.mark_broken();
                    return None;
                }
            }
        }
        self.client.as_mut()
    }
}

impl CacheTier for RemoteCache {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn load(&mut self, key: &CacheKey) -> Option<Program> {
        let client = self.client()?;
        match client.cache_get(key) {
            Ok(Some(artifact)) => match Program::from_bytes(&artifact) {
                Ok(program) => {
                    self.bump(|s| &mut s.hits, "cache.remote.hits");
                    Some(program)
                }
                Err(_) => {
                    // the peer handed back garbage: count it, keep the
                    // connection (the transport itself is fine)
                    self.bump(|s| &mut s.corrupt, "cache.remote.corrupt");
                    None
                }
            },
            Ok(None) => {
                self.bump(|s| &mut s.misses, "cache.remote.misses");
                None
            }
            Err(_) => {
                self.mark_broken();
                None
            }
        }
    }

    fn store(&mut self, key: &CacheKey, artifact: &[u8]) {
        let Some(client) = self.client() else { return };
        match client.cache_put(key, artifact) {
            Ok(()) => self.bump(|s| &mut s.writes, "cache.remote.writes"),
            Err(_) => self.mark_broken(),
        }
    }

    fn stats(&self) -> TierStats {
        self.stats
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::proto::{read_frame, write_frame, Frame};
    use crate::{CacheAutomaton, Design};
    use ca_automata::Fingerprint;
    use std::collections::HashMap;
    use std::io::{BufReader, BufWriter, Write};
    use std::net::TcpListener;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        }
    }

    /// A minimal in-memory cache peer: one connection at a time, a
    /// HashMap store, speaking only the CACHE_* frames.
    fn spawn_peer() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut store: HashMap<CacheKey, Vec<u8>> = HashMap::new();
            // serve connections until the test closes the last one
            while let Ok((conn, _)) = listener.accept() {
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut writer = BufWriter::new(conn);
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    let reply = match frame {
                        Frame::CacheGet { key } => match store.get(&key) {
                            Some(artifact) => Frame::CacheFound { artifact: artifact.clone() },
                            None => Frame::CacheMiss,
                        },
                        Frame::CachePut { key, artifact } => {
                            store.insert(key, artifact);
                            Frame::CachePutOk
                        }
                        _ => Frame::Error { code: 8, message: "not a cache frame".into() },
                    };
                    if write_frame(&mut writer, &reply).is_err() || writer.flush().is_err() {
                        break;
                    }
                }
                if store.contains_key(&key(0xdead)) {
                    // the shutdown sentinel was stored; stop accepting
                    break;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn round_trip_miss_corruption_and_shutdown() {
        let (addr, peer) = spawn_peer();
        let mut tier = RemoteCache::new(addr.clone());
        let program = CacheAutomaton::new().compile_patterns(&["remote"]).unwrap();
        let bytes = program.to_bytes();

        // miss, then store, then hit with full validation
        assert!(tier.load(&key(1)).is_none());
        tier.store(&key(1), &bytes);
        let loaded = tier.load(&key(1)).expect("stored artifact comes back");
        assert_eq!(loaded.to_bytes(), bytes, "artifact survives the wire bit-identically");

        // a corrupt blob from the peer is a counted miss, not an error
        let mut torn = bytes.clone();
        torn[30] ^= 0x10;
        tier.store(&key(2), &torn);
        assert!(tier.load(&key(2)).is_none(), "corrupt artifact is rejected");

        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt, s.errors), (1, 1, 2, 1, 0));
        assert!(!tier.is_broken());

        // tell the peer to stop accepting, then drop the connection
        tier.store(&key(0xdead), b"bye");
        drop(tier);
        peer.join().unwrap();

        // a tier pointed at a dead peer breaks once and goes silent
        let mut dead = RemoteCache::new(addr);
        assert!(dead.load(&key(1)).is_none());
        assert!(dead.is_broken());
        dead.store(&key(1), &bytes);
        assert!(dead.load(&key(1)).is_none());
        assert_eq!(dead.stats().errors, 1, "exactly one error despite repeated use");
    }

    #[test]
    fn scan_daemon_refusal_breaks_the_tier_quietly() {
        let ca = CacheAutomaton::new();
        let daemon =
            crate::Daemon::bind(&ca, "needle\n", "127.0.0.1:0", crate::DaemonOptions::default())
                .unwrap();
        let mut tier = RemoteCache::new(daemon.local_addr());
        assert!(tier.load(&key(1)).is_none(), "refusal is a miss");
        assert!(tier.is_broken());
        assert_eq!(tier.stats().errors, 1);
        daemon.shutdown().unwrap();
    }
}
