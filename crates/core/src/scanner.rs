//! Streaming scan sessions.
//!
//! A [`Scanner`] holds one instance of a compiled program's execution state
//! — active-state vectors, symbol counter, CBOX output-buffer occupancy —
//! across an arbitrary sequence of [`feed`](Scanner::feed) calls, exactly
//! the suspend/resume capability of paper §2.9. Chunk boundaries are
//! invisible to the automaton: feeding a stream in any segmentation yields
//! the same matches, cycle count and energy as one monolithic scan.

use crate::{CaError, MatchEvent, Program, RunReport, Session};
use ca_sim::fabric::{ExecStats, RunOptions, FIFO_REFILL_BYTES, PIPELINE_FILL_CYCLES};
use ca_sim::{Fabric, Snapshot};

/// Renders a finished session's accumulated *activity* into whole-stream
/// exec stats, given the absolute stream offset the session started at.
///
/// Per-chunk runs each charged a pipeline fill and rounded their own FIFO
/// refills up; a logical stream pays the fill exactly once — at its origin
/// — and refills on absolute 64-byte boundaries. A session resumed from a
/// snapshot therefore charges *no* fill (its predecessor already did) and
/// counts only the refills between its entry offset and its exit offset,
/// so the stats of a split-and-resumed stream sum to the monolithic
/// scan's field by field.
pub(crate) fn finalize_session_stats(stats: &mut ExecStats, resume_base: u64) {
    stats.cycles = if stats.symbols == 0 {
        0
    } else if resume_base == 0 {
        stats.symbols + PIPELINE_FILL_CYCLES
    } else {
        stats.symbols
    };
    let refill = FIFO_REFILL_BYTES as u64;
    stats.fifo_refills =
        (resume_base + stats.symbols).div_ceil(refill) - resume_base.div_ceil(refill);
}

/// An in-progress streaming scan over one logical input stream.
///
/// Created by [`Program::scanner`] (fresh stream) or
/// [`Program::resume_scanner`] (continue from a saved [`Snapshot`]).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cache_automaton::CacheAutomaton;
///
/// let program = CacheAutomaton::new().compile_patterns(&["spain"])?;
/// let mut scanner = program.scanner();
/// scanner.feed(b"the rain in sp");   // match straddles the boundary
/// scanner.feed(b"ain");
/// let report = scanner.finish();
/// assert_eq!(report.matches.len(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use = "a scanner accumulates matches; call finish() to obtain the report"]
#[derive(Debug)]
pub struct Scanner<'p> {
    program: &'p Program,
    fabric: Fabric,
    resume: Option<Snapshot>,
    /// Absolute stream offset this session started at (non-zero when the
    /// session was created from a [`Snapshot`] of an earlier session).
    resume_base: u64,
    events: Vec<MatchEvent>,
    /// How many of `events` have been handed out via
    /// [`Session::poll_matches`].
    delivered: usize,
    stats: ExecStats,
}

impl<'p> Scanner<'p> {
    pub(crate) fn new(program: &'p Program, resume: Option<Snapshot>) -> Scanner<'p> {
        Scanner {
            fabric: program.fabric(),
            program,
            resume_base: resume.as_ref().map_or(0, |s| s.symbol_counter),
            resume,
            events: Vec::new(),
            delivered: 0,
            stats: ExecStats::default(),
        }
    }

    /// Scans the next chunk of the stream, returning the matches it
    /// produced (positions are absolute within the logical stream).
    ///
    /// State carries over between calls, so a pattern may begin in one
    /// chunk and report in a later one.
    ///
    /// **Compatibility note:** this return shape (infallible, yielding the
    /// chunk's matches directly) predates the unified [`Session`] trait
    /// and is kept as a thin wrapper for existing callers. New code —
    /// especially code that should also run over pooled or network
    /// streams — should use the trait's fallible `feed` /
    /// [`poll_matches`](Session::poll_matches) pair. The two styles
    /// compose: every event is handed out exactly once, whether by this
    /// method's return value or by a later `poll_matches`.
    pub fn feed(&mut self, chunk: &[u8]) -> &[MatchEvent] {
        let first_new = self.feed_inner(chunk);
        // Events returned here count as delivered, so a later
        // `poll_matches` does not hand them out a second time.
        self.delivered = self.events.len();
        &self.events[first_new..]
    }

    /// Scans one chunk, returning the index of the first event it added.
    fn feed_inner(&mut self, chunk: &[u8]) -> usize {
        let options = RunOptions { resume: self.resume.take(), ..Default::default() };
        // A scanner only ever resumes snapshots its own fabric produced
        // (foreign snapshots are rejected by `Program::resume_scanner`), so
        // the vector count always matches.
        let report =
            self.fabric.run_with(chunk, &options).expect("scanner snapshots match their fabric");
        self.resume = report.snapshot;
        let first_new = self.events.len();
        self.events.extend(report.events);
        self.stats.absorb_activity(&report.stats);
        first_new
    }

    /// Symbols consumed so far across all chunks.
    pub fn position(&self) -> u64 {
        self.resume.as_ref().map_or(0, |s| s.symbol_counter)
    }

    /// All matches reported so far, in position order.
    pub fn matches(&self) -> &[MatchEvent] {
        &self.events
    }

    /// The current suspend image (`None` until the first `feed`).
    ///
    /// Persist it and continue the same logical stream later — in another
    /// scanner, process, or machine — via [`Program::resume_scanner`].
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.resume.as_ref()
    }

    /// Ends the session and renders the accumulated activity into a
    /// [`RunReport`] (energy, simulated time, throughput).
    ///
    /// The pipeline fill is charged once for the whole stream, so the
    /// report is identical whatever chunk sizes fed it — and a session
    /// resumed from a snapshot charges neither the fill (its predecessor
    /// already did) nor refills before its entry offset, so split streams
    /// sum to the monolithic scan.
    pub fn finish(self) -> RunReport {
        let mut stats = self.stats;
        finalize_session_stats(&mut stats, self.resume_base);
        let mut events = self.events;
        events.sort_unstable();
        events.dedup();
        stats.emit_counters(&self.program.telemetry());
        self.program.report_from(events, stats)
    }
}

impl Session for Scanner<'_> {
    /// Scans the chunk immediately on the dedicated fabric. Never fails.
    fn feed(&mut self, chunk: &[u8]) -> Result<(), CaError> {
        self.feed_inner(chunk);
        Ok(())
    }

    /// Events scanned but not yet handed out — by this method *or* by the
    /// compat [`Scanner::feed`] return value.
    fn poll_matches(&mut self) -> &[MatchEvent] {
        let fresh = &self.events[self.delivered..];
        self.delivered = self.events.len();
        fresh
    }

    fn finish(self) -> Result<RunReport, CaError> {
        Ok(Scanner::finish(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn program() -> Program {
        CacheAutomaton::new().compile_patterns(&["needle", "ab"]).unwrap()
    }

    #[test]
    fn chunking_is_invisible() {
        let program = program();
        let input = b"xxabxneedlexabneedleab";
        let whole = program.run(input);
        for chunk in [1usize, 2, 3, 5, 7, 64] {
            let mut scanner = program.scanner();
            for piece in input.chunks(chunk) {
                scanner.feed(piece);
            }
            let report = scanner.finish();
            assert_eq!(report.matches, whole.matches, "chunk size {chunk}");
            assert_eq!(report.exec, whole.exec, "chunk size {chunk}");
            assert_eq!(report.simulated_seconds, whole.simulated_seconds);
        }
    }

    #[test]
    fn feed_returns_incremental_matches() {
        let program = program();
        let mut scanner = program.scanner();
        assert_eq!(scanner.feed(b"a").len(), 0);
        assert_eq!(scanner.feed(b"b").len(), 1, "match completes on second chunk");
        assert_eq!(scanner.position(), 2);
        assert_eq!(scanner.matches().len(), 1);
        assert_eq!(scanner.matches()[0].pos, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_resume_scanner() {
        let program = program();
        let input = b"xneedlexxabx";
        let whole = program.run(input);

        let mut first = program.scanner();
        first.feed(&input[..4]);
        let image = first.snapshot().expect("fed scanner has an image").clone();
        let early_matches = first.matches().to_vec();

        let mut second = program.resume_scanner(image).expect("snapshot from same program");
        second.feed(&input[4..]);
        let first_report = first.finish();
        let second_report = second.finish();

        let mut all = early_matches;
        all.extend(second_report.matches.clone());
        assert_eq!(all, whole.matches);

        // Exec parity: the two sessions' stats must sum field-by-field to
        // the monolithic scan's — one pipeline fill for the whole stream,
        // refills on absolute 64-byte boundaries.
        let mut combined = first_report.exec.clone();
        combined.absorb_activity(&second_report.exec);
        combined.cycles = first_report.exec.cycles + second_report.exec.cycles;
        assert_eq!(combined, whole.exec, "split-and-resumed stream must match monolithic exec");
    }

    #[test]
    fn resumed_session_charges_no_pipeline_fill() {
        let program = program();
        // Split exactly on a FIFO-refill boundary so misaligned refill
        // accounting (each half rounding up independently) would differ.
        let input = vec![b'x'; 200];
        let whole = program.run(&input);
        assert_eq!(whole.exec.fifo_refills, 200u64.div_ceil(64));

        let mut first = program.scanner();
        first.feed(&input[..64]);
        let image = first.snapshot().unwrap().clone();
        let first_exec = first.finish().exec;
        let mut second = program.resume_scanner(image).unwrap();
        second.feed(&input[64..]);
        let second_exec = second.finish().exec;

        assert_eq!(first_exec.cycles, 64 + PIPELINE_FILL_CYCLES);
        assert_eq!(second_exec.cycles, 136, "resumed session must not re-charge pipeline fill");
        assert_eq!(first_exec.fifo_refills + second_exec.fifo_refills, whole.exec.fifo_refills);
        assert_eq!(first_exec.cycles + second_exec.cycles, whole.exec.cycles);
    }

    #[test]
    fn foreign_snapshot_is_rejected_at_resume() {
        let program = program();
        let partitions = program.compiled().bitstream.partitions.len();
        let foreign = ca_sim::Snapshot {
            symbol_counter: 9,
            active_vectors: vec![ca_sim::Mask256::ZERO; partitions + 1],
            output_buffer_fill: 0,
        };
        let err = program.resume_scanner(foreign).map(|_| ()).unwrap_err();
        assert!(matches!(err, crate::CaError::Config(_)), "{err}");
        assert!(err.to_string().contains("another program"), "{err}");
    }

    #[test]
    fn empty_session_reports_zero_work() {
        let program = program();
        let report = program.scanner().finish();
        assert!(report.matches.is_empty());
        assert_eq!(report.exec.cycles, 0);
        assert_eq!(report.simulated_seconds, 0.0);
    }
}
