//! Streaming scan sessions.
//!
//! A [`Scanner`] holds one instance of a compiled program's execution state
//! — active-state vectors, symbol counter, CBOX output-buffer occupancy —
//! across an arbitrary sequence of [`feed`](Scanner::feed) calls, exactly
//! the suspend/resume capability of paper §2.9. Chunk boundaries are
//! invisible to the automaton: feeding a stream in any segmentation yields
//! the same matches, cycle count and energy as one monolithic scan.

use crate::{MatchEvent, Program, RunReport};
use ca_sim::fabric::{ExecStats, RunOptions, PIPELINE_FILL_CYCLES};
use ca_sim::{Fabric, Snapshot};

/// An in-progress streaming scan over one logical input stream.
///
/// Created by [`Program::scanner`] (fresh stream) or
/// [`Program::resume_scanner`] (continue from a saved [`Snapshot`]).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cache_automaton::CacheAutomaton;
///
/// let program = CacheAutomaton::new().compile_patterns(&["spain"])?;
/// let mut scanner = program.scanner();
/// scanner.feed(b"the rain in sp");   // match straddles the boundary
/// scanner.feed(b"ain");
/// let report = scanner.finish();
/// assert_eq!(report.matches.len(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use = "a scanner accumulates matches; call finish() to obtain the report"]
#[derive(Debug)]
pub struct Scanner<'p> {
    program: &'p Program,
    fabric: Fabric,
    resume: Option<Snapshot>,
    events: Vec<MatchEvent>,
    stats: ExecStats,
}

impl<'p> Scanner<'p> {
    pub(crate) fn new(program: &'p Program, resume: Option<Snapshot>) -> Scanner<'p> {
        Scanner {
            fabric: program.fabric(),
            program,
            resume,
            events: Vec::new(),
            stats: ExecStats::default(),
        }
    }

    /// Scans the next chunk of the stream, returning the matches it
    /// produced (positions are absolute within the logical stream).
    ///
    /// State carries over between calls, so a pattern may begin in one
    /// chunk and report in a later one.
    pub fn feed(&mut self, chunk: &[u8]) -> &[MatchEvent] {
        let options = RunOptions { resume: self.resume.take(), ..Default::default() };
        // A scanner only ever resumes snapshots its own fabric produced
        // (foreign snapshots are rejected by `Program::resume_scanner`), so
        // the vector count always matches.
        let report =
            self.fabric.run_with(chunk, &options).expect("scanner snapshots match their fabric");
        self.resume = report.snapshot;
        let first_new = self.events.len();
        self.events.extend(report.events);
        self.stats.absorb_activity(&report.stats);
        &self.events[first_new..]
    }

    /// Symbols consumed so far across all chunks.
    pub fn position(&self) -> u64 {
        self.resume.as_ref().map_or(0, |s| s.symbol_counter)
    }

    /// All matches reported so far, in position order.
    pub fn matches(&self) -> &[MatchEvent] {
        &self.events
    }

    /// The current suspend image (`None` until the first `feed`).
    ///
    /// Persist it and continue the same logical stream later — in another
    /// scanner, process, or machine — via [`Program::resume_scanner`].
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.resume.as_ref()
    }

    /// Ends the session and renders the accumulated activity into a
    /// [`RunReport`] (energy, simulated time, throughput).
    ///
    /// The pipeline fill is charged once for the whole stream, so the
    /// report is identical whatever chunk sizes fed it.
    pub fn finish(self) -> RunReport {
        let mut stats = self.stats;
        // Per-chunk runs each charged a pipeline fill and rounded their own
        // FIFO refills up; a single logical stream pays both exactly once
        // (`absorb_activity` leaves `cycles` to this decision).
        stats.cycles = if stats.symbols == 0 { 0 } else { stats.symbols + PIPELINE_FILL_CYCLES };
        stats.fifo_refills =
            (stats.symbols as usize).div_ceil(ca_sim::fabric::FIFO_REFILL_BYTES) as u64;
        let mut events = self.events;
        events.sort_unstable();
        events.dedup();
        stats.emit_counters(&self.program.telemetry());
        self.program.report_from(events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn program() -> Program {
        CacheAutomaton::new().compile_patterns(&["needle", "ab"]).unwrap()
    }

    #[test]
    fn chunking_is_invisible() {
        let program = program();
        let input = b"xxabxneedlexabneedleab";
        let whole = program.run(input);
        for chunk in [1usize, 2, 3, 5, 7, 64] {
            let mut scanner = program.scanner();
            for piece in input.chunks(chunk) {
                scanner.feed(piece);
            }
            let report = scanner.finish();
            assert_eq!(report.matches, whole.matches, "chunk size {chunk}");
            assert_eq!(report.exec, whole.exec, "chunk size {chunk}");
            assert_eq!(report.simulated_seconds, whole.simulated_seconds);
        }
    }

    #[test]
    fn feed_returns_incremental_matches() {
        let program = program();
        let mut scanner = program.scanner();
        assert_eq!(scanner.feed(b"a").len(), 0);
        assert_eq!(scanner.feed(b"b").len(), 1, "match completes on second chunk");
        assert_eq!(scanner.position(), 2);
        assert_eq!(scanner.matches().len(), 1);
        assert_eq!(scanner.matches()[0].pos, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_resume_scanner() {
        let program = program();
        let input = b"xneedlexxabx";
        let whole = program.run(input);

        let mut first = program.scanner();
        first.feed(&input[..4]);
        let image = first.snapshot().expect("fed scanner has an image").clone();
        let early_matches = first.matches().to_vec();

        let mut second = program.resume_scanner(image).expect("snapshot from same program");
        second.feed(&input[4..]);
        let mut all = early_matches;
        all.extend(second.finish().matches);
        assert_eq!(all, whole.matches);
    }

    #[test]
    fn foreign_snapshot_is_rejected_at_resume() {
        let program = program();
        let partitions = program.compiled().bitstream.partitions.len();
        let foreign = ca_sim::Snapshot {
            symbol_counter: 9,
            active_vectors: vec![ca_sim::Mask256::ZERO; partitions + 1],
            output_buffer_fill: 0,
        };
        let err = program.resume_scanner(foreign).map(|_| ()).unwrap_err();
        assert!(matches!(err, crate::CaError::Config(_)), "{err}");
        assert!(err.to_string().contains("another program"), "{err}");
    }

    #[test]
    fn empty_session_reports_zero_work() {
        let program = program();
        let report = program.scanner().finish();
        assert!(report.matches.is_empty());
        assert_eq!(report.exec.cycles, 0);
        assert_eq!(report.simulated_seconds, 0.0);
    }
}
