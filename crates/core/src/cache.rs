//! Bounded in-process program cache.
//!
//! Compiling a large automaton takes seconds (graph partitioning dominates);
//! services that repeatedly instantiate the same rule sets should not pay
//! that more than once. [`CacheAutomaton`](crate::CacheAutomaton) therefore
//! consults a small bounded cache keyed by the canonical fingerprint of the
//! input NFA plus every compiler option that affects the output.
//!
//! The replacement policy is LRU eviction with an LFU-style admission
//! filter in the spirit of W-TinyLFU: a compact count-min sketch of 4-bit
//! counters estimates how often each key has been seen, and when the cache
//! is full a new entry is only admitted if its estimated frequency exceeds
//! the LRU victim's — one-shot compilations cannot wash out a popular
//! working set. Counters are halved once the sketch has absorbed a sample
//! window of accesses, so the frequency history ages.

use crate::{Design, Program};
use ca_automata::{Fingerprint, StableHasher};
use ca_telemetry::Telemetry;

/// Everything that determines a compilation's output, in canonical form.
///
/// Two [`compile_nfa`](crate::CacheAutomaton::compile_nfa) calls with equal
/// keys produce byte-identical bitstreams, so a cached [`Program`] is
/// indistinguishable from a fresh compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Canonical fingerprint of the *input* automaton (pre-optimization).
    pub fingerprint: Fingerprint,
    /// Target design point.
    pub design: Design,
    /// Slice count.
    pub slices: usize,
    /// Partitioner seed.
    pub seed: u64,
    /// Whether the space optimizer runs (the *resolved* policy, so
    /// `Optimize::Auto` and an explicit equivalent choice key the same).
    pub optimized: bool,
}

impl CacheKey {
    /// Stable 64-bit hash of the key (drives the frequency sketch).
    pub fn hash64(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_bytes(&self.fingerprint.to_bytes());
        h.write_u8(match self.design {
            Design::Performance => 0,
            Design::Space => 1,
        });
        // Canonical width: `slices` is hashed as u64 so the key is
        // identical on 32- and 64-bit targets.
        h.write_u64(self.slices as u64);
        h.write_u64(self.seed);
        h.write_u8(self.optimized as u8);
        let fp = h.finish().0;
        (fp as u64) ^ ((fp >> 64) as u64)
    }
}

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (a fresh compilation followed).
    pub misses: u64,
    /// Programs stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Candidates the admission filter turned away (their estimated
    /// frequency did not beat the LRU victim's).
    pub rejected: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Count-min sketch of 4-bit counters (the TinyLFU frequency filter).
///
/// Four hash functions index one table of packed counters; an item's
/// estimate is the minimum of its four counters. After `sample_size`
/// increments every counter is halved, aging out stale popularity.
#[derive(Debug)]
struct FrequencySketch {
    /// Packed 4-bit counters, 16 per u64 word. Length is a power of two.
    table: Vec<u64>,
    /// Increments since the last halving.
    ops: u32,
    /// Halve after this many increments.
    sample_size: u32,
}

impl FrequencySketch {
    fn new(capacity: usize) -> FrequencySketch {
        // ≥ 8 counters per cached entry, rounded to a power of two
        let counters = (capacity * 8).next_power_of_two().max(64);
        FrequencySketch {
            table: vec![0u64; counters / 16],
            ops: 0,
            sample_size: (capacity as u32).saturating_mul(10).max(100),
        }
    }

    /// The four counter slots for a key hash.
    fn slots(&self, hash: u64) -> [usize; 4] {
        let mask = self.table.len() * 16 - 1;
        let mut slots = [0usize; 4];
        let mut h = hash | 1;
        for slot in &mut slots {
            // mix per hash function (SplitMix64 finalizer)
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = (z ^ (z >> 31)) as usize & mask;
        }
        slots
    }

    fn get(&self, slot: usize) -> u8 {
        ((self.table[slot / 16] >> ((slot % 16) * 4)) & 0xf) as u8
    }

    fn set(&mut self, slot: usize, value: u8) {
        let shift = (slot % 16) * 4;
        let word = &mut self.table[slot / 16];
        *word = (*word & !(0xfu64 << shift)) | ((value as u64 & 0xf) << shift);
    }

    /// Estimated access frequency of `hash` (0..=15).
    fn estimate(&self, hash: u64) -> u8 {
        self.slots(hash).into_iter().map(|s| self.get(s)).min().unwrap_or(0)
    }

    /// Records one access.
    fn record(&mut self, hash: u64) {
        for slot in self.slots(hash) {
            let v = self.get(slot);
            if v < 15 {
                self.set(slot, v + 1);
            }
        }
        self.ops += 1;
        if self.ops >= self.sample_size {
            self.halve();
        }
    }

    fn halve(&mut self) {
        for word in &mut self.table {
            // halve all 16 packed counters at once
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.ops /= 2;
    }
}

struct Entry {
    key: CacheKey,
    program: Program,
    last_used: u64,
}

/// A bounded program cache with LRU eviction and TinyLFU admission.
///
/// Entry-count capacity (programs are a few KB to a few MB; callers that
/// care about bytes should size conservatively). Not a public long-term
/// API surface: reach it through
/// [`CacheAutomaton`](crate::CacheAutomaton).
pub struct ProgramCache {
    entries: Vec<Entry>,
    capacity: usize,
    sketch: FrequencySketch,
    clock: u64,
    stats: CacheStats,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ProgramCache {
    /// A cache holding at most `capacity` programs (0 disables caching).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            entries: Vec::new(),
            capacity,
            sketch: FrequencySketch::new(capacity.max(1)),
            clock: 0,
            stats: CacheStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Mirrors every [`CacheStats`] increment to `telemetry` as a
    /// `cache.*` counter (`cache.hits`, `cache.misses`, `cache.insertions`,
    /// `cache.evictions`, `cache.rejected`), so recorded totals always
    /// equal [`stats`](ProgramCache::stats).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, recording the access in the frequency sketch.
    pub fn get(&mut self, key: &CacheKey) -> Option<Program> {
        self.clock += 1;
        self.sketch.record(key.hash64());
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.stats.hits += 1;
                self.telemetry.counter("cache.hits", 1);
                Some(entry.program.clone())
            }
            None => {
                self.stats.misses += 1;
                self.telemetry.counter("cache.misses", 1);
                None
            }
        }
    }

    /// Offers a freshly compiled program for caching.
    ///
    /// With free room the program is always stored. At capacity the
    /// TinyLFU admission filter decides: the candidate must have a higher
    /// estimated frequency than the LRU victim, otherwise it is rejected
    /// and the cache is left unchanged.
    pub fn insert(&mut self, key: CacheKey, program: Program) {
        if self.capacity == 0 {
            return;
        }
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            // racing compilations of the same key: keep the newer program
            self.clock += 1;
            entry.program = program;
            entry.last_used = self.clock;
            return;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache at capacity is non-empty");
            let candidate_freq = self.sketch.estimate(key.hash64());
            let victim_freq = self.sketch.estimate(self.entries[victim].key.hash64());
            if candidate_freq <= victim_freq {
                self.stats.rejected += 1;
                self.telemetry.counter("cache.rejected", 1);
                return;
            }
            self.entries.swap_remove(victim);
            self.stats.evictions += 1;
            self.telemetry.counter("cache.evictions", 1);
        }
        self.clock += 1;
        self.entries.push(Entry { key, program, last_used: self.clock });
        self.stats.insertions += 1;
        self.telemetry.counter("cache.insertions", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheAutomaton;

    fn key_for(tag: &str) -> (CacheKey, Program) {
        let program = CacheAutomaton::new().compile_patterns(&[tag]).unwrap();
        let nfa = ca_automata::regex::compile_patterns(&[tag]).unwrap();
        let key = CacheKey {
            fingerprint: nfa.fingerprint(),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        };
        (key, program)
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut cache = ProgramCache::new(4);
        let (key, program) = key_for("counter");
        assert!(cache.get(&key).is_none());
        cache.insert(key, program);
        assert!(cache.get(&key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ProgramCache::new(0);
        let (key, program) = key_for("nocache");
        cache.insert(key, program);
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn admission_filter_protects_hot_entries() {
        let mut cache = ProgramCache::new(1);
        let (hot_key, hot) = key_for("hot");
        cache.insert(hot_key, hot);
        // make the resident entry popular
        for _ in 0..6 {
            assert!(cache.get(&hot_key).is_some());
        }
        // a cold one-shot candidate must not displace it
        let (cold_key, cold) = key_for("cold");
        assert!(cache.get(&cold_key).is_none()); // records one access
        cache.insert(cold_key, cold);
        assert!(cache.get(&hot_key).is_some(), "hot entry survived");
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn frequent_candidate_evicts_lru_victim() {
        let mut cache = ProgramCache::new(1);
        let (a_key, a) = key_for("victim");
        cache.insert(a_key, a);
        let (b_key, b) = key_for("riser");
        // the candidate becomes more popular than the resident
        for _ in 0..8 {
            let _ = cache.get(&b_key);
        }
        cache.insert(b_key, b);
        assert!(cache.get(&b_key).is_some(), "popular candidate admitted");
        assert!(cache.get(&a_key).is_none(), "victim evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn sketch_counters_saturate_and_halve() {
        let mut sketch = FrequencySketch::new(4);
        // stay below the sample window (100) so auto-halving doesn't fire
        for _ in 0..50 {
            sketch.record(42);
        }
        assert_eq!(sketch.estimate(42), 15, "counters saturate at 15");
        sketch.halve();
        assert!(sketch.estimate(42) <= 7);
    }

    #[test]
    fn hash64_is_pinned() {
        // Fixed synthetic key (no compiler involved) with a pinned digest:
        // the sketch key must be identical across platforms and builds, or
        // admission decisions would differ between 32- and 64-bit hosts.
        let key = CacheKey {
            fingerprint: ca_automata::Fingerprint(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: true,
        };
        assert_eq!(key.hash64(), 0x66d6_b55c_a98d_575e);
        let space = CacheKey { design: Design::Space, ..key };
        assert_ne!(space.hash64(), key.hash64(), "design is part of the key");
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let (a, _) = key_for("alpha");
        let (b, _) = key_for("beta");
        assert_ne!(a.hash64(), b.hash64());
        let mut a2 = a;
        a2.seed ^= 1;
        assert_ne!(a.hash64(), a2.hash64(), "seed is part of the key");
    }
}
