//! The remote cache tier's server half: `cactl cache-serve` as a library.
//!
//! A [`CacheServer`] answers CACHE_GET / CACHE_PUT / CACHE_STATS frames
//! of the [wire protocol](super::proto) over the same TCP/Unix accept
//! machinery as the scan [`Daemon`](super::daemon::Daemon) (both are
//! built on [`NetServer`]), backed by a [`DiskCache`] — so the fleet
//! tier inherits the disk tier's semantics wholesale:
//!
//! * **Lookups** go through the disk tier's validated read path: a
//!   stored artifact that fails checksum or decode is quarantined
//!   server-side and answered as a MISS, never shipped.
//! * **Stores** are validated before anything touches disk:
//!   [`Program::from_bytes`] must fully decode the inbound artifact, or
//!   the CACHE_PUT is refused with a typed artifact error (code 6) and
//!   counted under `cache.serve.rejected` — one buggy client cannot
//!   poison the fleet. Accepted artifacts are written atomically under
//!   the tier's advisory locking.
//! * **Scan frames are refused** with the typed Unsupported error
//!   (code 9), mirroring the scan daemon refusing cache frames: each
//!   server refuses the other's vocabulary against a stable code.
//!
//! Request counters surface as `cache.serve.*` telemetry and through
//! CACHE_STATS (`cactl cache stats --remote <addr>`).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, CacheServer};
//!
//! let dir = std::env::temp_dir().join(format!("ca-peer-doc-{}", std::process::id()));
//! let server = CacheServer::bind("127.0.0.1:0", &dir)?;
//!
//! // a fleet member pointed at the peer: compile once here...
//! let a = CacheAutomaton::builder().remote_cache(server.local_addr()).build();
//! a.compile_patterns(&["spain"])?;
//!
//! // ...and a different process (fresh instance, no shared memory or
//! // disk) warm-starts through the peer.
//! let b = CacheAutomaton::builder().remote_cache(server.local_addr()).build();
//! b.compile_patterns(&["spain"])?;
//! assert_eq!(server.stats().hits, 1);
//!
//! server.shutdown()?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use super::net::NetServer;
use super::proto::{error_to_wire, read_frame, write_frame, CacheServerStats, Frame};
use crate::cache::disk::DiskCache;
use crate::cache::{CacheKey, CacheTier};
use crate::{CaError, Program};
use ca_telemetry::Telemetry;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct CacheServerShared {
    /// The disk tier all connections share; the mutex serializes request
    /// handling against it (artifact I/O is milliseconds — contention is
    /// not a concern at cache-peer request rates).
    disk: Mutex<DiskCache>,
    telemetry: Telemetry,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    rejected: AtomicU64,
    bytes_served: AtomicU64,
    bytes_stored: AtomicU64,
}

impl CacheServerShared {
    fn bump(&self, counter: &AtomicU64, name: &'static str, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
        self.telemetry.counter(name, by);
    }

    fn stats(&self) -> CacheServerStats {
        let (entries, disk_bytes) =
            self.disk.lock().expect("disk cache lock").scan().unwrap_or((0, 0));
        CacheServerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
            bytes_stored: self.bytes_stored.load(Ordering::Relaxed),
            entries,
            disk_bytes,
        }
    }

    fn cache_get(&self, key: &CacheKey) -> Frame {
        match self.disk.lock().expect("disk cache lock").load_bytes(key) {
            Some(artifact) => {
                self.bump(&self.hits, "cache.serve.hits", 1);
                self.bump(&self.bytes_served, "cache.serve.bytes_served", artifact.len() as u64);
                Frame::CacheFound { artifact }
            }
            None => {
                self.bump(&self.misses, "cache.serve.misses", 1);
                Frame::CacheMiss
            }
        }
    }

    fn cache_put(&self, key: &CacheKey, artifact: &[u8]) -> Result<Frame, CaError> {
        // Full validation before anything is persisted: magic, version,
        // checksum, and a structural decode. A peer cannot be poisoned by
        // one buggy (or hostile) client.
        if let Err(e) = Program::from_bytes(artifact) {
            self.bump(&self.rejected, "cache.serve.rejected", 1);
            return Err(e);
        }
        self.disk.lock().expect("disk cache lock").store(key, artifact);
        self.bump(&self.puts, "cache.serve.puts", 1);
        self.bump(&self.bytes_stored, "cache.serve.bytes_stored", artifact.len() as u64);
        Ok(Frame::CachePutOk)
    }

    fn handle_frame(&self, frame: Frame) -> Frame {
        let result = match frame {
            Frame::CacheGet { key } => Ok(self.cache_get(&key)),
            Frame::CachePut { key, artifact } => self.cache_put(&key, &artifact),
            Frame::CacheStats => Ok(Frame::CacheStatsReply(self.stats())),
            // The mirror image of the scan daemon refusing cache frames:
            // a cache peer does not scan. Same stable code (9), so a
            // misdirected client degrades predictably either way.
            Frame::OpenStream
            | Frame::FeedChunk { .. }
            | Frame::PollMatches { .. }
            | Frame::Finish { .. }
            | Frame::Stats
            | Frame::Reload { .. } => {
                Err(CaError::Unsupported("this cache peer does not serve scan frames".into()))
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            other => Err(CaError::Protocol(format!(
                "unexpected frame kind {:?} from a client",
                std::mem::discriminant(&other)
            ))),
        };
        match result {
            Ok(reply) => reply,
            Err(e) => error_to_wire(&e),
        }
    }
}

/// A cache peer bound to a socket, accepting connections on a background
/// thread. See the [module docs](self) for semantics.
pub struct CacheServer {
    shared: Arc<CacheServerShared>,
    server: NetServer,
}

impl std::fmt::Debug for CacheServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheServer")
            .field("addr", self.server.local_addr())
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl CacheServer {
    /// Binds a cache peer on `addr` (see
    /// [`ListenAddr::parse`](super::net::ListenAddr::parse)) serving the
    /// [`DiskCache`] rooted at `cache_dir` (created lazily on the first
    /// store, exactly like a local disk tier).
    ///
    /// # Errors
    ///
    /// Invalid addresses or socket bind errors.
    pub fn bind<P: Into<PathBuf>>(addr: &str, cache_dir: P) -> Result<CacheServer, CaError> {
        CacheServer::bind_with_telemetry(addr, cache_dir, Telemetry::disabled())
    }

    /// Like [`bind`](CacheServer::bind), routing `cache.serve.*` and the
    /// underlying tier's `cache.disk.*` events to `telemetry`.
    ///
    /// # Errors
    ///
    /// As [`bind`](CacheServer::bind).
    pub fn bind_with_telemetry<P: Into<PathBuf>>(
        addr: &str,
        cache_dir: P,
        telemetry: Telemetry,
    ) -> Result<CacheServer, CaError> {
        let mut disk = DiskCache::new(cache_dir);
        disk.set_telemetry(telemetry.clone());
        let shared = Arc::new(CacheServerShared {
            disk: Mutex::new(disk),
            telemetry,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            bytes_stored: AtomicU64::new(0),
        });
        let conn_shared = Arc::clone(&shared);
        let server = NetServer::bind(addr, move |conn, _id| {
            let result = serve_connection(&conn_shared, conn);
            conn_shared.telemetry.flush();
            // A connection failing is that connection's problem; the peer
            // keeps serving (the error was reported inline if possible).
            drop(result);
        })?;
        Ok(CacheServer { shared, server })
    }

    /// The address the peer actually listens on — with an ephemeral TCP
    /// port resolved, in a form clients and
    /// [`Builder::remote_cache`](crate::Builder::remote_cache) accept.
    pub fn local_addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// Current request counters plus disk inventory (the same numbers a
    /// CACHE_STATS frame returns).
    pub fn stats(&self) -> CacheServerStats {
        self.shared.stats()
    }

    /// Stops accepting and joins connection threads (which exit when
    /// their clients disconnect — close clients first).
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if a server thread panicked.
    pub fn shutdown(mut self) -> Result<(), CaError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), CaError> {
        let result = self.server.shutdown();
        self.shared.telemetry.flush();
        result
    }

    /// Blocks until the server shuts down (for a foreground `cactl
    /// cache-serve`, that is "forever" — until the process is killed).
    pub fn wait(mut self) {
        self.server.wait();
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        if !self.server.is_down() {
            let _ = self.shutdown_inner();
        }
    }
}

fn serve_connection(
    shared: &Arc<CacheServerShared>,
    conn: super::net::Conn,
) -> Result<(), CaError> {
    let reader_conn = conn.try_clone().map_err(|e| CaError::Io(format!("clone socket: {e}")))?;
    let mut reader = BufReader::new(reader_conn);
    let mut writer = BufWriter::new(conn);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => {
                let _ = write_frame(&mut writer, &error_to_wire(&e));
                let _ = writer.flush();
                return Err(e);
            }
        };
        let reply = shared.handle_frame(frame);
        match write_frame(&mut writer, &reply) {
            Ok(()) => {}
            // An encode-side refusal writes nothing — downgrade to a
            // typed ERROR so the client gets a reply and the connection
            // stays usable.
            Err(e @ CaError::Protocol(_)) => write_frame(&mut writer, &error_to_wire(&e))?,
            Err(e) => return Err(e),
        }
        writer.flush().map_err(|e| CaError::Io(format!("flushing reply: {e}")))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::daemon::Client;
    use crate::{CacheAutomaton, Design};
    use ca_automata::Fingerprint;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            design: Design::Performance,
            slices: 8,
            seed: 0xca,
            optimized: false,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ca-cacheserver-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn get_put_stats_round_trip_over_the_wire() {
        let dir = scratch("roundtrip");
        let server = CacheServer::bind("127.0.0.1:0", &dir).unwrap();
        let mut client = Client::connect(&server.local_addr()).unwrap();

        let program = CacheAutomaton::new().compile_patterns(&["peer"]).unwrap();
        let bytes = program.to_bytes();

        assert_eq!(client.cache_get(&key(1)).unwrap(), None, "cold peer misses");
        client.cache_put(&key(1), &bytes).unwrap();
        let served = client.cache_get(&key(1)).unwrap().expect("stored artifact comes back");
        assert_eq!(served, bytes, "artifact survives the peer bit-identically");

        // a second connection sees the same store (it is on disk)
        let mut other = Client::connect(&server.local_addr()).unwrap();
        assert!(other.cache_get(&key(1)).unwrap().is_some());

        let stats = client.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.puts, stats.rejected), (2, 1, 1, 0));
        assert_eq!(stats.bytes_served, 2 * bytes.len() as u64);
        assert_eq!(stats.bytes_stored, bytes.len() as u64);
        assert_eq!(stats.entries, 1);
        assert!(stats.disk_bytes >= bytes.len() as u64);
        assert_eq!(stats, server.stats(), "wire stats equal in-process stats");

        drop(client);
        drop(other);
        server.shutdown().unwrap();
    }

    #[test]
    fn invalid_puts_are_rejected_and_never_persisted() {
        let dir = scratch("poison");
        let server = CacheServer::bind("127.0.0.1:0", &dir).unwrap();
        let mut client = Client::connect(&server.local_addr()).unwrap();

        let program = CacheAutomaton::new().compile_patterns(&["x"]).unwrap();
        let mut torn = program.to_bytes();
        let mid = torn.len() / 2;
        torn[mid] ^= 0xff;

        for garbage in [&b"not an artifact"[..], &torn] {
            let err = client.cache_put(&key(7), garbage).unwrap_err();
            assert_eq!(err.code(), 6, "refused with the artifact code: {err}");
        }
        assert_eq!(client.cache_get(&key(7)).unwrap(), None, "nothing was persisted");
        let stats = client.cache_stats().unwrap();
        assert_eq!(stats.rejected, 2);
        assert_eq!((stats.puts, stats.entries), (0, 0));
        // the connection survived every refusal
        client.cache_put(&key(7), &program.to_bytes()).unwrap();
        assert!(client.cache_get(&key(7)).unwrap().is_some());

        drop(client);
        server.shutdown().unwrap();
    }

    #[test]
    fn scan_frames_get_the_unsupported_refusal() {
        let dir = scratch("refusal");
        let server = CacheServer::bind("127.0.0.1:0", &dir).unwrap();
        let mut client = Client::connect(&server.local_addr()).unwrap();
        let err = client.open_stream().unwrap_err();
        assert_eq!(err.code(), 9, "cache peer refuses scan frames: {err}");
        assert!(matches!(err, CaError::Unsupported(_)));
        let err = client.stats().unwrap_err();
        assert_eq!(err.code(), 9);
        // the connection is still good for cache traffic
        assert_eq!(client.cache_get(&key(3)).unwrap(), None);
        drop(client);
        server.shutdown().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn serves_on_a_unix_socket() {
        let dir = scratch("unix");
        let sock = std::env::temp_dir().join(format!(
            "ca-peer-{}-{:?}.sock",
            std::process::id(),
            std::thread::current().id()
        ));
        let server = CacheServer::bind(&format!("unix:{}", sock.display()), &dir).unwrap();
        let mut client = Client::connect(&server.local_addr()).unwrap();
        assert_eq!(client.cache_get(&key(1)).unwrap(), None);
        drop(client);
        server.shutdown().unwrap();
        assert!(!sock.exists(), "socket file unlinked at shutdown");
    }

    /// A quarantined (corrupted-on-disk) artifact is answered as a miss
    /// and never shipped — the server half of the disk tier's corruption
    /// policy.
    #[test]
    fn corrupt_stored_artifact_is_quarantined_and_missed() {
        let dir = scratch("quarantine");
        let server = CacheServer::bind("127.0.0.1:0", &dir).unwrap();
        let mut client = Client::connect(&server.local_addr()).unwrap();
        let program = CacheAutomaton::new().compile_patterns(&["q"]).unwrap();
        client.cache_put(&key(2), &program.to_bytes()).unwrap();

        // flip a byte on disk behind the server's back
        let path = DiskCache::new(&dir).artifact_path(&key(2));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(client.cache_get(&key(2)).unwrap(), None, "corrupt entry is a miss");
        assert!(!path.exists(), "entry left the lookup path");
        let quarantined = path.with_extension("capr.corrupt");
        assert!(quarantined.exists(), "entry preserved for post-mortems");
        let stats = client.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 0));

        drop(client);
        server.shutdown().unwrap();
    }
}
