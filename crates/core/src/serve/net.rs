//! Shared network plumbing for every wire-protocol server and client:
//! address grammar, the TCP/Unix connection abstraction, dialing with a
//! connect timeout, and the generic accept loop both the scan daemon
//! ([`Daemon`](super::daemon::Daemon)) and the cache peer
//! ([`CacheServer`](super::cache_server::CacheServer)) are built on.
//!
//! A [`NetServer`] owns exactly the transport concerns — bind, accept,
//! one thread per connection, wake-and-join shutdown, Unix-socket
//! unlinking — and delegates everything protocol-shaped to a per-server
//! connection handler. That keeps the scan daemon and the cache server
//! byte-for-byte identical at the transport layer: both inherit the same
//! ephemeral-port resolution, the same stale-socket replacement, and the
//! same panic accounting at shutdown.

use crate::CaError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where a server listens (or a client connects).
///
/// Parsed from the `--listen` string: `unix:<path>` (or any string
/// containing `/`) selects a Unix-domain socket, `host:port` selects TCP.
/// Port `0` binds an ephemeral port — read it back with
/// [`NetServer::local_addr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP endpoint, `host:port`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] when the string is neither form, or names a
    /// Unix socket on a platform without them.
    pub fn parse(s: &str) -> Result<ListenAddr, CaError> {
        let unix = |path: &str| {
            if cfg!(unix) {
                Ok(ListenAddr::Unix(PathBuf::from(path)))
            } else {
                Err(CaError::Config("unix sockets are not available on this platform".into()))
            }
        };
        if let Some(path) = s.strip_prefix("unix:") {
            unix(path)
        } else if s.contains('/') {
            unix(s)
        } else if s.contains(':') {
            Ok(ListenAddr::Tcp(s.to_string()))
        } else {
            Err(CaError::Config(format!(
                "listen address '{s}' is neither host:port nor unix:<path>"
            )))
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted or dialed connection, either transport.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Severs the socket in both directions: a peer (or handler thread)
    /// blocked in a read sees EOF immediately. Used by
    /// [`NetServer::shutdown`] to unblock connection threads whose
    /// clients are still attached.
    pub(crate) fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Installs kernel-level read/write deadlines on the socket. `None`
    /// means "block forever" (the pre-timeout behaviour). A blocked read
    /// or write past its deadline fails with `WouldBlock`/`TimedOut`,
    /// which the framing layer surfaces as a transport [`CaError::Io`].
    pub(crate) fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Dials `addr`, bounding the TCP connect by `connect_timeout` when one
/// is given. (Unix-socket connects complete or fail immediately in the
/// kernel, so no deadline is needed there.)
pub(crate) fn dial(addr: &ListenAddr, connect_timeout: Option<Duration>) -> Result<Conn, CaError> {
    match addr {
        ListenAddr::Tcp(a) => {
            let stream = match connect_timeout {
                None => {
                    TcpStream::connect(a).map_err(|e| CaError::Io(format!("connect {a}: {e}")))?
                }
                Some(timeout) => {
                    // connect_timeout needs resolved addresses; try each in
                    // turn so a multi-homed name behaves like connect().
                    let addrs: Vec<_> = a
                        .to_socket_addrs()
                        .map_err(|e| CaError::Io(format!("resolve {a}: {e}")))?
                        .collect();
                    let mut last = None;
                    let mut connected = None;
                    for sa in &addrs {
                        match TcpStream::connect_timeout(sa, timeout) {
                            Ok(s) => {
                                connected = Some(s);
                                break;
                            }
                            Err(e) => last = Some(e),
                        }
                    }
                    connected.ok_or_else(|| {
                        CaError::Io(format!(
                            "connect {a}: {}",
                            last.map_or_else(
                                || "no addresses resolved".to_string(),
                                |e| e.to_string()
                            )
                        ))
                    })?
                }
            };
            stream.set_nodelay(true).ok();
            Ok(Conn::Tcp(stream))
        }
        #[cfg(unix)]
        ListenAddr::Unix(path) => Ok(Conn::Unix(
            UnixStream::connect(path)
                .map_err(|e| CaError::Io(format!("connect unix:{}: {e}", path.display())))?,
        )),
        #[cfg(not(unix))]
        ListenAddr::Unix(_) => {
            Err(CaError::Config("unix sockets are not available on this platform".into()))
        }
    }
}

/// The generic accept half of a wire-protocol server: binds a socket,
/// accepts on a background thread, and runs one handler thread per
/// connection. Protocol behaviour lives entirely in the handler.
pub(crate) struct NetServer {
    local_addr: ListenAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    /// A severing handle per accepted connection, so shutdown can force
    /// EOF on handlers whose clients are still attached.
    live_conns: Arc<Mutex<Vec<Conn>>>,
    /// Unix-socket path to unlink on shutdown.
    unlink_on_drop: Option<PathBuf>,
}

impl NetServer {
    /// Binds `addr` (see [`ListenAddr::parse`]) and starts accepting.
    /// Each accepted connection runs `handler(conn, connection_id)` on
    /// its own thread; connection ids are unique per server.
    ///
    /// # Errors
    ///
    /// Invalid addresses or socket bind errors.
    pub(crate) fn bind<H>(addr: &str, handler: H) -> Result<NetServer, CaError>
    where
        H: Fn(Conn, u64) + Send + Sync + 'static,
    {
        let addr = ListenAddr::parse(addr)?;
        let (listener, local_addr, unlink_on_drop) = match &addr {
            ListenAddr::Tcp(a) => {
                let listener =
                    TcpListener::bind(a).map_err(|e| CaError::Io(format!("bind {a}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| CaError::Io(format!("local_addr: {e}")))?
                    .to_string();
                (Listener::Tcp(listener), ListenAddr::Tcp(local), None)
            }
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // A stale socket file from a previous server refuses the
                // bind; replace it.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| CaError::Io(format!("bind unix:{}: {e}", path.display())))?;
                (Listener::Unix(listener), addr.clone(), Some(path.clone()))
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => unreachable!("rejected by ListenAddr::parse"),
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let live_conns: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_conns = Arc::clone(&live_conns);
        let handler = Arc::new(handler);
        let accept_thread = std::thread::spawn(move || {
            let mut next_conn = 0u64;
            loop {
                let conn = listener.accept();
                if accept_shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match conn {
                    Ok(conn) => {
                        let id = next_conn;
                        next_conn += 1;
                        if let Ok(watcher) = conn.try_clone() {
                            accept_conns.lock().expect("conn list").push(watcher);
                        }
                        let conn_handler = Arc::clone(&handler);
                        let handle = std::thread::spawn(move || conn_handler(conn, id));
                        accept_threads.lock().expect("thread list").push(handle);
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. a client aborting
                        // its connect); keep serving.
                        continue;
                    }
                }
            }
        });
        Ok(NetServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conn_threads,
            live_conns,
            unlink_on_drop,
        })
    }

    /// The address the server actually listens on — with an ephemeral TCP
    /// port resolved, in a form `ListenAddr::parse` round-trips.
    pub(crate) fn local_addr(&self) -> &ListenAddr {
        &self.local_addr
    }

    /// Whether [`shutdown`](NetServer::shutdown) has already run.
    pub(crate) fn is_down(&self) -> bool {
        self.accept_thread.is_none()
    }

    /// Stops accepting, severs any connections whose clients are still
    /// attached (their handlers see EOF), and joins the accept +
    /// connection threads.
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if the accept or a connection thread
    /// panicked.
    pub(crate) fn shutdown(&mut self) -> Result<(), CaError> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = dial(&self.local_addr, Some(Duration::from_secs(1)));
        let mut failed = 0usize;
        if let Some(handle) = self.accept_thread.take() {
            failed += usize::from(handle.join().is_err());
        }
        // With accept stopped the conn list is final; force EOF on every
        // still-open connection so blocked handler reads return.
        for conn in self.live_conns.lock().expect("conn list").drain(..) {
            conn.shutdown_both();
        }
        let threads = std::mem::take(&mut *self.conn_threads.lock().expect("thread list"));
        for handle in threads {
            failed += usize::from(handle.join().is_err());
        }
        if let Some(path) = self.unlink_on_drop.take() {
            let _ = std::fs::remove_file(path);
        }
        if failed > 0 {
            return Err(CaError::Internal(format!("{failed} server thread(s) panicked")));
        }
        Ok(())
    }

    /// Blocks until the server shuts down (for a foreground `cactl serve`
    /// or `cache-serve`, that is "forever" — until the process is killed).
    pub(crate) fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_grammar() {
        assert_eq!(
            ListenAddr::parse("127.0.0.1:7070").unwrap(),
            ListenAddr::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/ca.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/ca.sock"))
        );
        assert_eq!(
            ListenAddr::parse("/tmp/ca.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/ca.sock"))
        );
        assert!(matches!(ListenAddr::parse("nonsense").unwrap_err(), CaError::Config(_)));
        assert_eq!(ListenAddr::parse("unix:/a/b.sock").unwrap().to_string(), "unix:/a/b.sock");
    }

    #[test]
    fn net_server_accepts_and_joins() {
        use std::sync::atomic::AtomicU64;
        let served = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&served);
        let mut server = NetServer::bind("127.0.0.1:0", move |mut conn, id| {
            let mut buf = [0u8; 1];
            let _ = conn.read(&mut buf);
            seen.fetch_add(id + 1, Ordering::Relaxed);
        })
        .unwrap();
        let addr = server.local_addr().clone();
        for _ in 0..2 {
            let conn = dial(&addr, Some(Duration::from_secs(5))).unwrap();
            drop(conn); // EOF wakes the handler's read
        }
        // connection ids are 0 and 1 → 1 + 2 once both handlers ran
        for _ in 0..100 {
            if served.load(Ordering::Relaxed) == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(served.load(Ordering::Relaxed), 3);
        server.shutdown().unwrap();
        assert!(server.is_down());
    }
}
