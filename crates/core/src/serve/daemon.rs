//! The network serving daemon: `cactl serve` as a library.
//!
//! A [`Daemon`] is a long-running TCP or Unix-socket front-end over the
//! in-process [`ScanPool`]: each accepted connection is serviced by its
//! own thread speaking the length-prefixed wire protocol of
//! [`proto`](super::proto), and each OPEN_STREAM maps onto one pool
//! stream, so thousands of concurrent network streams multiplex over a
//! handful of worker threads and recycled fabrics.
//!
//! # Backpressure
//!
//! The pool's bounded per-stream queues map directly onto per-connection
//! transport backpressure: a FEED_CHUNK whose stream is over its
//! [`PoolOptions::queue_bytes`] bound blocks the connection thread in
//! [`StreamHandle::feed`], the daemon stops reading that connection's
//! socket, the kernel's receive window fills, and the client's next write
//! stalls — no unbounded buffering at any layer. (The protocol is
//! request/reply, so a well-behaved [`Client`] is naturally clocked by
//! FEED_ACKs anyway.)
//!
//! # Hot program reload
//!
//! A RELOAD frame compiles a replacement rule set and atomically swaps
//! the daemon's *generation* — an [`Arc`] holding a [`Program`] and the
//! [`ScanPool`] bound to it. Streams opened after the swap bind the new
//! generation; streams in flight keep their `Arc` to the old one and
//! drain on the program they started with, so no traffic is dropped and
//! no stream ever sees two rule sets. The old generation's pool (workers,
//! fabrics) is torn down when its last stream finishes. Reload traffic is
//! observable as `serve.reload.*` telemetry and the generation counter in
//! STATS replies.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, Client, Daemon, DaemonOptions};
//!
//! let ca = CacheAutomaton::new();
//! let daemon = Daemon::bind(&ca, "spain\n", "127.0.0.1:0", DaemonOptions::default())?;
//! let mut client = Client::connect(&daemon.local_addr())?;
//! let (stream, generation) = client.open_stream()?;
//! assert_eq!(generation, 0);
//! client.feed(stream, b"the rain in sp")?;
//! client.feed(stream, b"ain")?;
//! let report = client.finish(stream)?;
//! assert_eq!(report.events.len(), 1);
//! drop(client);
//! daemon.shutdown()?;
//! # Ok(())
//! # }
//! ```

use super::proto::{
    error_from_wire, error_to_wire, read_frame, write_frame, Frame, ServerStats, WireReport,
    MAX_EVENTS_PER_MATCHES_FRAME,
};
use super::{PoolOptions, ScanPool, StreamHandle};
use crate::cache::CacheKey;
use crate::{CaError, CacheAutomaton, MatchEvent, Program};
use ca_telemetry::Telemetry;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where a daemon listens (or a client connects).
///
/// Parsed from the `--listen` string: `unix:<path>` (or any string
/// containing `/`) selects a Unix-domain socket, `host:port` selects TCP.
/// Port `0` binds an ephemeral port — read it back with
/// [`Daemon::local_addr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP endpoint, `host:port`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] when the string is neither form, or names a
    /// Unix socket on a platform without them.
    pub fn parse(s: &str) -> Result<ListenAddr, CaError> {
        let unix = |path: &str| {
            if cfg!(unix) {
                Ok(ListenAddr::Unix(PathBuf::from(path)))
            } else {
                Err(CaError::Config("unix sockets are not available on this platform".into()))
            }
        };
        if let Some(path) = s.strip_prefix("unix:") {
            unix(path)
        } else if s.contains('/') {
            unix(s)
        } else if s.contains(':') {
            Ok(ListenAddr::Tcp(s.to_string()))
        } else {
            Err(CaError::Config(format!(
                "listen address '{s}' is neither host:port nor unix:<path>"
            )))
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonOptions {
    /// Options of the [`ScanPool`] backing each generation (worker count,
    /// queue bound, quantum).
    pub pool: PoolOptions,
}

/// One compiled rule set and the pool serving it (the pool holds the
/// program's bitstream). Streams hold an `Arc` to their generation, so a
/// retired generation's pool survives exactly until its last in-flight
/// stream finishes.
struct Generation {
    id: u64,
    pool: ScanPool,
}

struct DaemonShared {
    /// Compiles RELOAD payloads; shares the program cache with the
    /// instance the daemon was built from, so a same-rules reload is a
    /// cache hit, not a recompilation.
    compiler: CacheAutomaton,
    /// The rule text currently served; an empty RELOAD recompiles it.
    rules: Mutex<String>,
    current: Mutex<Arc<Generation>>,
    pool_options: PoolOptions,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    reloads: AtomicU64,
    next_generation: AtomicU64,
    connections_live: AtomicU64,
    streams_served: AtomicU64,
    /// Connection-thread handles, joined at shutdown.
    conn_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl DaemonShared {
    fn stats(&self) -> ServerStats {
        let current = self.current.lock().expect("generation lock").clone();
        ServerStats {
            generation: current.id,
            reloads: self.reloads.load(Ordering::Relaxed),
            live_streams: current.pool.live_streams() as u64,
            connections: self.connections_live.load(Ordering::Relaxed),
            streams_served: self.streams_served.load(Ordering::Relaxed),
        }
    }

    /// Compiles `rules` (or the current rules when empty) and swaps in a
    /// fresh generation. In-flight streams keep draining on their own
    /// generation's pool.
    fn reload(&self, rules: String) -> Result<u64, CaError> {
        let effective =
            if rules.is_empty() { self.rules.lock().expect("rules lock").clone() } else { rules };
        let program = compile_rules(&self.compiler, &effective)?;
        let pool = ScanPool::new(&program, self.pool_options)?;
        let id = self.next_generation.fetch_add(1, Ordering::Relaxed);
        // The pool holds everything the program contributes; the program
        // value itself need not outlive compilation.
        drop(program);
        let fresh = Arc::new(Generation { id, pool });
        let old = {
            let mut current = self.current.lock().expect("generation lock");
            std::mem::replace(&mut *current, fresh)
        };
        *self.rules.lock().expect("rules lock") = effective;
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.reload.count", 1);
        self.telemetry.gauge("serve.reload.generation", 0, id as f64);
        // Dropping the old Arc outside the generation lock: if no stream
        // still references it, the pool drains and joins here, without
        // stalling concurrent OPEN_STREAMs.
        drop(old);
        self.telemetry.flush();
        Ok(id)
    }
}

/// Builds a homogeneous NFA from rule text: an ANML document when the
/// text starts with `<`, otherwise newline-separated regex patterns
/// (blank lines and `#` comments ignored; pattern `i` reports code `i`).
///
/// This is the one rules parser shared by `cactl` (which reads the text
/// from a file) and the daemon's RELOAD path (which receives it over the
/// wire).
///
/// # Errors
///
/// [`CaError::Config`] for an empty pattern set; otherwise ANML or regex
/// front-end errors.
pub fn nfa_from_rules_text(text: &str) -> Result<crate::HomNfa, CaError> {
    if text.trim_start().starts_with('<') {
        Ok(ca_automata::anml::parse_anml(text)?)
    } else {
        let patterns: Vec<&str> =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
        if patterns.is_empty() {
            return Err(CaError::Config("no patterns found in rules text".into()));
        }
        Ok(ca_automata::regex::compile_patterns(&patterns)?)
    }
}

/// Compiles rule text with `ca` (see [`nfa_from_rules_text`]).
///
/// # Errors
///
/// Front-end or mapping-compiler failures.
pub fn compile_rules(ca: &CacheAutomaton, text: &str) -> Result<Program, CaError> {
    ca.compile_nfa(&nfa_from_rules_text(text)?)
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted or dialed connection, either transport.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

fn dial(addr: &ListenAddr) -> Result<Conn, CaError> {
    match addr {
        ListenAddr::Tcp(a) => {
            let stream =
                TcpStream::connect(a).map_err(|e| CaError::Io(format!("connect {a}: {e}")))?;
            stream.set_nodelay(true).ok();
            Ok(Conn::Tcp(stream))
        }
        #[cfg(unix)]
        ListenAddr::Unix(path) => Ok(Conn::Unix(
            UnixStream::connect(path)
                .map_err(|e| CaError::Io(format!("connect unix:{}: {e}", path.display())))?,
        )),
        #[cfg(not(unix))]
        ListenAddr::Unix(_) => {
            Err(CaError::Config("unix sockets are not available on this platform".into()))
        }
    }
}

/// A serving daemon bound to a socket, accepting connections on a
/// background thread. See the [module docs](self) for the protocol,
/// backpressure, and reload semantics.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    local_addr: ListenAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Unix-socket path to unlink on shutdown.
    unlink_on_drop: Option<PathBuf>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.local_addr)
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl Daemon {
    /// Compiles `rules` with `ca` (generation 0) and starts accepting
    /// connections on `addr` (see [`ListenAddr::parse`]).
    ///
    /// # Errors
    ///
    /// Compilation failures, invalid addresses, or socket bind errors.
    pub fn bind(
        ca: &CacheAutomaton,
        rules: &str,
        addr: &str,
        options: DaemonOptions,
    ) -> Result<Daemon, CaError> {
        let addr = ListenAddr::parse(addr)?;
        let program = compile_rules(ca, rules)?;
        let telemetry = program.telemetry();
        let pool = ScanPool::new(&program, options.pool)?;
        let (listener, local_addr, unlink_on_drop) = match &addr {
            ListenAddr::Tcp(a) => {
                let listener =
                    TcpListener::bind(a).map_err(|e| CaError::Io(format!("bind {a}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| CaError::Io(format!("local_addr: {e}")))?
                    .to_string();
                (Listener::Tcp(listener), ListenAddr::Tcp(local), None)
            }
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // A stale socket file from a previous daemon refuses the
                // bind; replace it.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| CaError::Io(format!("bind unix:{}: {e}", path.display())))?;
                (Listener::Unix(listener), addr.clone(), Some(path.clone()))
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => unreachable!("rejected by ListenAddr::parse"),
        };
        let shared = Arc::new(DaemonShared {
            compiler: ca.clone(),
            rules: Mutex::new(rules.to_string()),
            current: Mutex::new(Arc::new(Generation { id: 0, pool })),
            pool_options: options.pool,
            telemetry,
            shutdown: AtomicBool::new(false),
            reloads: AtomicU64::new(0),
            next_generation: AtomicU64::new(1),
            connections_live: AtomicU64::new(0),
            streams_served: AtomicU64::new(0),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&accept_shared, listener));
        Ok(Daemon { shared, local_addr, accept_thread: Some(accept_thread), unlink_on_drop })
    }

    /// The address the daemon actually listens on — with an ephemeral TCP
    /// port resolved, in a form [`Client::connect`] accepts.
    pub fn local_addr(&self) -> String {
        self.local_addr.to_string()
    }

    /// Current daemon counters (the same numbers a STATS frame returns).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting connections, joins the connection threads (which
    /// exit when their clients disconnect — close clients first), and
    /// tears down the current generation's pool.
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if the accept or a connection thread
    /// panicked.
    pub fn shutdown(mut self) -> Result<(), CaError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), CaError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = dial(&self.local_addr);
        let mut failed = 0usize;
        if let Some(handle) = self.accept_thread.take() {
            failed += usize::from(handle.join().is_err());
        }
        let threads = std::mem::take(&mut *self.shared.conn_threads.lock().expect("thread list"));
        for handle in threads {
            failed += usize::from(handle.join().is_err());
        }
        if let Some(path) = self.unlink_on_drop.take() {
            let _ = std::fs::remove_file(path);
        }
        self.shared.telemetry.flush();
        if failed > 0 {
            return Err(CaError::Internal(format!("{failed} daemon thread(s) panicked")));
        }
        Ok(())
    }

    /// Blocks until the daemon shuts down (for a foreground `cactl
    /// serve`, that is "forever" — until the process is killed).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

fn accept_loop(shared: &Arc<DaemonShared>, listener: Listener) {
    let mut next_conn = 0u64;
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok(conn) => {
                let id = next_conn;
                next_conn += 1;
                shared.telemetry.counter("serve.conn.accepted", 1);
                let live = shared.connections_live.fetch_add(1, Ordering::Relaxed) + 1;
                shared.telemetry.gauge("serve.conn.live", 0, live as f64);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(&conn_shared, conn, id));
                shared.conn_threads.lock().expect("thread list").push(handle);
            }
            Err(_) => {
                // Transient accept failure (e.g. a client aborting its
                // connect); keep serving.
                continue;
            }
        }
    }
}

/// Per-connection stream bookkeeping: the pool stream plus the generation
/// `Arc` that keeps its pool alive across reloads.
struct ConnStream {
    handle: StreamHandle,
    /// Matches drained from the pool but not yet shipped: a single poll
    /// may surface more events than one MATCHES frame can carry, so the
    /// surplus waits here for the client's next POLL_MATCHES.
    pending: VecDeque<MatchEvent>,
    /// Never read — held purely so a retired generation's pool is not
    /// torn down while this stream still drains on it.
    _generation: Arc<Generation>,
}

/// Takes up to `cap` events off the front of `pending` (the next
/// MATCHES-frame chunk). Factored out so the chunking is testable with a
/// small cap — the real one is [`MAX_EVENTS_PER_MATCHES_FRAME`], ~1.4M
/// events, impractical to exercise end-to-end.
fn drain_capped(pending: &mut VecDeque<MatchEvent>, cap: usize) -> Vec<MatchEvent> {
    let n = pending.len().min(cap);
    pending.drain(..n).collect()
}

fn connection_loop(shared: &Arc<DaemonShared>, conn: Conn, conn_id: u64) {
    let result = serve_connection(shared, conn, conn_id);
    shared.connections_live.fetch_sub(1, Ordering::Relaxed);
    shared.telemetry.counter("serve.conn.closed", 1);
    let live = shared.connections_live.load(Ordering::Relaxed);
    shared.telemetry.gauge("serve.conn.live", 0, live as f64);
    shared.telemetry.flush();
    // A connection failing is that connection's problem; the daemon keeps
    // serving. The error was already reported to the peer where possible.
    drop(result);
}

fn serve_connection(shared: &Arc<DaemonShared>, conn: Conn, conn_id: u64) -> Result<(), CaError> {
    let reader_conn = conn.try_clone().map_err(|e| CaError::Io(format!("clone socket: {e}")))?;
    let mut reader = BufReader::new(reader_conn);
    let mut writer = BufWriter::new(conn);
    // Stream ids are daemon-assigned, scoped to the connection.
    let mut streams: HashMap<u64, ConnStream> = HashMap::new();
    let mut next_stream = (conn_id << 32) | 1;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean disconnect: abandon any unfinished streams (their
            // queued work is discarded, pool slots freed).
            Ok(None) => return Ok(()),
            Err(e) => {
                // Best-effort typed goodbye; the connection is already
                // suspect, so ignore secondary failures.
                let _ = write_frame(&mut writer, &error_to_wire(&e));
                let _ = writer.flush();
                return Err(e);
            }
        };
        shared.telemetry.counter("serve.conn.frames", 1);
        let reply = handle_frame(shared, &mut streams, &mut next_stream, frame);
        match write_frame(&mut writer, &reply) {
            Ok(()) => {}
            // An encode-side refusal (the reply would exceed the frame
            // cap) writes nothing — downgrade to a typed ERROR so the
            // client gets a reply and the connection stays usable.
            Err(e @ CaError::Protocol(_)) => write_frame(&mut writer, &error_to_wire(&e))?,
            Err(e) => return Err(e),
        }
        writer.flush().map_err(|e| CaError::Io(format!("flushing reply: {e}")))?;
    }
}

fn handle_frame(
    shared: &Arc<DaemonShared>,
    streams: &mut HashMap<u64, ConnStream>,
    next_stream: &mut u64,
    frame: Frame,
) -> Frame {
    match try_handle_frame(shared, streams, next_stream, frame) {
        Ok(reply) => reply,
        Err(e) => error_to_wire(&e),
    }
}

fn try_handle_frame(
    shared: &Arc<DaemonShared>,
    streams: &mut HashMap<u64, ConnStream>,
    next_stream: &mut u64,
    frame: Frame,
) -> Result<Frame, CaError> {
    let lookup = |streams: &mut HashMap<u64, ConnStream>, id: u64| -> Result<(), CaError> {
        if streams.contains_key(&id) {
            Ok(())
        } else {
            Err(CaError::Config(format!("unknown stream id {id} on this connection")))
        }
    };
    match frame {
        Frame::OpenStream => {
            let generation = shared.current.lock().expect("generation lock").clone();
            let handle = generation.pool.open_stream()?;
            let stream = *next_stream;
            *next_stream += 1;
            let gen_id = generation.id;
            streams.insert(
                stream,
                ConnStream { handle, pending: VecDeque::new(), _generation: generation },
            );
            shared.streams_served.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter("serve.conn.streams", 1);
            Ok(Frame::StreamOpened { stream, generation: gen_id })
        }
        Frame::FeedChunk { stream, data } => {
            lookup(streams, stream)?;
            let entry = streams.get_mut(&stream).expect("looked up above");
            // Blocks under backpressure — which stalls this connection's
            // socket, not the daemon (see module docs).
            if let Err(e) = entry.handle.feed(&data) {
                streams.remove(&stream);
                return Err(e);
            }
            shared.telemetry.counter("serve.conn.rx_bytes", data.len() as u64);
            Ok(Frame::FeedAck { stream, bytes: data.len() as u64 })
        }
        Frame::PollMatches { stream } => {
            lookup(streams, stream)?;
            let entry = streams.get_mut(&stream).expect("looked up above");
            entry.pending.extend(entry.handle.poll_matches().iter().copied());
            // Chunk under the frame cap; the surplus stays queued for the
            // client's next poll, so no MATCHES reply can be oversized.
            let events = drain_capped(&mut entry.pending, MAX_EVENTS_PER_MATCHES_FRAME);
            Ok(Frame::Matches { stream, events })
        }
        Frame::Finish { stream } => {
            lookup(streams, stream)?;
            let entry = streams.remove(&stream).expect("looked up above");
            let report = entry.handle.finish()?;
            // `entry._generation` drops here; if this was the last stream
            // of a retired generation, its pool drains and joins now.
            Ok(Frame::Finished {
                stream,
                report: WireReport { events: report.matches, exec: report.exec },
            })
        }
        Frame::Stats => Ok(Frame::StatsReply(shared.stats())),
        Frame::Reload { rules } => match shared.reload(rules) {
            Ok(generation) => Ok(Frame::ReloadOk { generation }),
            Err(e) => {
                shared.telemetry.counter("serve.reload.failed", 1);
                Err(e)
            }
        },
        // Valid client frames this daemon does not serve (yet): the
        // scan daemon is not a cache peer. The typed error lets a
        // RemoteCache probe degrade to a permanent miss instead of
        // poisoning the connection.
        Frame::CacheGet { .. } | Frame::CachePut { .. } => {
            Err(CaError::Config("this daemon does not serve cache frames".into()))
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation.
        other => Err(CaError::Protocol(format!(
            "unexpected frame kind {:?} from a client",
            std::mem::discriminant(&other)
        ))),
    }
}

/// A synchronous client of a serving daemon: one connection, blocking
/// request/reply per call. Used by `cactl connect`, the soak tests, and
/// the `serving-daemon` experiment — and small enough to crib for real
/// integrations.
pub struct Client {
    reader: BufReader<Conn>,
    writer: BufWriter<Conn>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port` or `unix:<path>`).
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] for an unparsable address, [`CaError::Io`] for
    /// connection failures.
    pub fn connect(addr: &str) -> Result<Client, CaError> {
        let addr = ListenAddr::parse(addr)?;
        let conn = dial(&addr)?;
        let reader_conn =
            conn.try_clone().map_err(|e| CaError::Io(format!("clone socket: {e}")))?;
        Ok(Client { reader: BufReader::new(reader_conn), writer: BufWriter::new(conn) })
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, CaError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush().map_err(|e| CaError::Io(format!("flushing request: {e}")))?;
        match read_frame(&mut self.reader)? {
            Some(Frame::Error { code, message }) => Err(error_from_wire(code, message)),
            Some(reply) => Ok(reply),
            None => Err(CaError::Io("daemon closed the connection".into())),
        }
    }

    /// Opens a stream; returns `(stream_id, generation)`.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors (typed via the shared code table) or
    /// transport failures.
    pub fn open_stream(&mut self) -> Result<(u64, u64), CaError> {
        match self.request(&Frame::OpenStream)? {
            Frame::StreamOpened { stream, generation } => Ok((stream, generation)),
            other => Err(unexpected_reply("STREAM_OPENED", &other)),
        }
    }

    /// Feeds one chunk and waits for its acknowledgement.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn feed(&mut self, stream: u64, chunk: &[u8]) -> Result<(), CaError> {
        let reply = self.request(&Frame::FeedChunk { stream, data: chunk.to_vec() })?;
        match reply {
            Frame::FeedAck { stream: s, bytes } if s == stream && bytes == chunk.len() as u64 => {
                Ok(())
            }
            other => Err(unexpected_reply("FEED_ACK", &other)),
        }
    }

    /// Drains matches reported since the previous poll of `stream`.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn poll_matches(&mut self, stream: u64) -> Result<Vec<MatchEvent>, CaError> {
        match self.request(&Frame::PollMatches { stream })? {
            Frame::Matches { stream: s, events } if s == stream => Ok(events),
            other => Err(unexpected_reply("MATCHES", &other)),
        }
    }

    /// Closes `stream` and waits for its final report.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn finish(&mut self, stream: u64) -> Result<WireReport, CaError> {
        match self.request(&Frame::Finish { stream })? {
            Frame::Finished { stream: s, report } if s == stream => Ok(report),
            other => Err(unexpected_reply("FINISHED", &other)),
        }
    }

    /// Fetches daemon counters.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn stats(&mut self) -> Result<ServerStats, CaError> {
        match self.request(&Frame::Stats)? {
            Frame::StatsReply(stats) => Ok(stats),
            other => Err(unexpected_reply("STATS_REPLY", &other)),
        }
    }

    /// Requests a hot reload; `rules` is the replacement rule text, or
    /// `None` to recompile the daemon's current rules (a generation bump
    /// to an identical program). Returns the new generation counter.
    ///
    /// # Errors
    ///
    /// Compilation failures reported by the daemon, or transport
    /// failures. A failed reload leaves the old generation serving.
    pub fn reload(&mut self, rules: Option<&str>) -> Result<u64, CaError> {
        match self.request(&Frame::Reload { rules: rules.unwrap_or("").to_string() })? {
            Frame::ReloadOk { generation } => Ok(generation),
            other => Err(unexpected_reply("RELOAD_OK", &other)),
        }
    }

    /// Asks a cache peer for the artifact stored under `key`. `Ok(None)`
    /// is a clean miss; the returned bytes are *unvalidated* — callers
    /// decode (checksum included) before trusting them.
    ///
    /// # Errors
    ///
    /// Peer-reported errors (including a peer that does not serve cache
    /// frames) or transport failures.
    pub fn cache_get(&mut self, key: &CacheKey) -> Result<Option<Vec<u8>>, CaError> {
        match self.request(&Frame::CacheGet { key: *key })? {
            Frame::CacheFound { artifact } => Ok(Some(artifact)),
            Frame::CacheMiss => Ok(None),
            other => Err(unexpected_reply("CACHE_FOUND or CACHE_MISS", &other)),
        }
    }

    /// Offers a cache peer the `CAPR` `artifact` compiled under `key`.
    ///
    /// # Errors
    ///
    /// Peer-reported errors or transport failures (an artifact over the
    /// frame cap is refused client-side, before anything is written).
    pub fn cache_put(&mut self, key: &CacheKey, artifact: &[u8]) -> Result<(), CaError> {
        match self.request(&Frame::CachePut { key: *key, artifact: artifact.to_vec() })? {
            Frame::CachePutOk => Ok(()),
            other => Err(unexpected_reply("CACHE_PUT_OK", &other)),
        }
    }
}

fn unexpected_reply(wanted: &str, got: &Frame) -> CaError {
    CaError::Protocol(format!("expected a {wanted} reply, got {:?}", std::mem::discriminant(got)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_grammar() {
        assert_eq!(
            ListenAddr::parse("127.0.0.1:7070").unwrap(),
            ListenAddr::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/ca.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/ca.sock"))
        );
        assert_eq!(
            ListenAddr::parse("/tmp/ca.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/ca.sock"))
        );
        assert!(matches!(ListenAddr::parse("nonsense").unwrap_err(), CaError::Config(_)));
        assert_eq!(ListenAddr::parse("unix:/a/b.sock").unwrap().to_string(), "unix:/a/b.sock");
    }

    #[test]
    fn rules_text_front_end() {
        let nfa = nfa_from_rules_text("# comment\n\nrain\nsp[ai]n\n").unwrap();
        assert!(!nfa.is_empty());
        assert!(matches!(
            nfa_from_rules_text("# only comments\n").unwrap_err(),
            CaError::Config(_)
        ));
    }

    #[test]
    fn daemon_round_trip_and_reload_on_tcp() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();

        let (stream, generation) = client.open_stream().unwrap();
        assert_eq!(generation, 0);
        client.feed(stream, b"hay nee").unwrap();
        client.feed(stream, b"dle hay").unwrap();
        let polled = client.poll_matches(stream).unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1);
        assert!(polled.len() <= 1, "poll may race the worker, never over-delivers");

        // Reload to a different rule set; new streams see the new rules.
        let generation = client.reload(Some("hay\n")).unwrap();
        assert_eq!(generation, 1);
        let (stream, bound) = client.open_stream().unwrap();
        assert_eq!(bound, 1);
        client.feed(stream, b"hay nee").unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1, "matches 'hay' under the reloaded rules");

        let stats = client.stats().unwrap();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.streams_served, 2);
        assert_eq!(stats.connections, 1);

        // A failing reload leaves the serving generation untouched.
        let err = client.reload(Some("(\n")).unwrap_err();
        assert_eq!(err.code(), 4, "regex parse error crosses the wire with its code");
        assert_eq!(client.stats().unwrap().generation, 1);

        drop(client);
        daemon.shutdown().unwrap();
    }

    #[test]
    fn poll_chunking_preserves_order_and_surplus() {
        let mut pending: VecDeque<MatchEvent> =
            (0..10u64).map(|i| MatchEvent::new(i, ca_automata::ReportCode(7))).collect();
        let first = drain_capped(&mut pending, 4);
        assert_eq!(first.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(pending.len(), 6, "surplus stays queued");
        let second = drain_capped(&mut pending, 4);
        assert_eq!(second.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        let rest = drain_capped(&mut pending, 4);
        assert_eq!(rest.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![8, 9]);
        assert!(drain_capped(&mut pending, 4).is_empty());
    }

    #[test]
    fn cache_frames_get_a_typed_refusal_and_the_connection_survives() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();
        let key = CacheKey {
            fingerprint: ca_automata::Fingerprint(1),
            design: crate::Design::Performance,
            slices: 8,
            seed: 0,
            optimized: false,
        };
        let err = client.cache_get(&key).unwrap_err();
        assert_eq!(err.code(), 2, "scan daemon refuses cache frames with a config error");
        let err = client.cache_put(&key, b"CAPRjunk").unwrap_err();
        assert_eq!(err.code(), 2);
        // the connection is still good for scanning
        let (stream, _) = client.open_stream().unwrap();
        client.feed(stream, b"a needle").unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1);
        drop(client);
        daemon.shutdown().unwrap();
    }

    #[test]
    fn unknown_stream_is_a_typed_config_error() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();
        let err = client.feed(99, b"x").unwrap_err();
        assert!(matches!(err, CaError::Config(_)), "{err}");
        // the connection survives the error
        let (stream, _) = client.open_stream().unwrap();
        client.feed(stream, b"x").unwrap();
        drop(client);
        daemon.shutdown().unwrap();
    }
}
