//! The network serving daemon: `cactl serve` as a library.
//!
//! A [`Daemon`] is a long-running TCP or Unix-socket front-end over the
//! in-process [`ScanPool`]: each accepted connection is serviced by its
//! own thread speaking the length-prefixed wire protocol of
//! [`proto`](super::proto), and each OPEN_STREAM maps onto one pool
//! stream, so thousands of concurrent network streams multiplex over a
//! handful of worker threads and recycled fabrics.
//!
//! # Backpressure
//!
//! The pool's bounded per-stream queues map directly onto per-connection
//! transport backpressure: a FEED_CHUNK whose stream is over its
//! [`PoolOptions::queue_bytes`] bound blocks the connection thread in
//! [`StreamHandle::feed`], the daemon stops reading that connection's
//! socket, the kernel's receive window fills, and the client's next write
//! stalls — no unbounded buffering at any layer. (The protocol is
//! request/reply, so a well-behaved [`Client`] is naturally clocked by
//! FEED_ACKs anyway.)
//!
//! # Hot program reload
//!
//! A RELOAD frame compiles a replacement rule set and atomically swaps
//! the daemon's *generation* — an [`Arc`] holding a [`Program`] and the
//! [`ScanPool`] bound to it. Streams opened after the swap bind the new
//! generation; streams in flight keep their `Arc` to the old one and
//! drain on the program they started with, so no traffic is dropped and
//! no stream ever sees two rule sets. The old generation's pool (workers,
//! fabrics) is torn down when its last stream finishes. Reload traffic is
//! observable as `serve.reload.*` telemetry and the generation counter in
//! STATS replies.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, Client, Daemon, DaemonOptions};
//!
//! let ca = CacheAutomaton::new();
//! let daemon = Daemon::bind(&ca, "spain\n", "127.0.0.1:0", DaemonOptions::default())?;
//! let mut client = Client::connect(&daemon.local_addr())?;
//! let (stream, generation) = client.open_stream()?;
//! assert_eq!(generation, 0);
//! client.feed(stream, b"the rain in sp")?;
//! client.feed(stream, b"ain")?;
//! let report = client.finish(stream)?;
//! assert_eq!(report.events.len(), 1);
//! drop(client);
//! daemon.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub use super::net::ListenAddr;
use super::net::{dial, Conn, NetServer};
use super::proto::{
    error_from_wire, error_to_wire, read_frame, write_frame, CacheServerStats, Frame, ServerStats,
    WireReport, MAX_EVENTS_PER_MATCHES_FRAME,
};
use super::{PoolOptions, ScanPool, StreamHandle};
use crate::cache::CacheKey;
use crate::{CaError, CacheAutomaton, MatchEvent, Program};
use ca_telemetry::Telemetry;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonOptions {
    /// Options of the [`ScanPool`] backing each generation (worker count,
    /// queue bound, quantum).
    pub pool: PoolOptions,
}

/// One compiled rule set and the pool serving it (the pool holds the
/// program's bitstream). Streams hold an `Arc` to their generation, so a
/// retired generation's pool survives exactly until its last in-flight
/// stream finishes.
struct Generation {
    id: u64,
    pool: ScanPool,
}

struct DaemonShared {
    /// Compiles RELOAD payloads; shares the program cache with the
    /// instance the daemon was built from, so a same-rules reload is a
    /// cache hit, not a recompilation.
    compiler: CacheAutomaton,
    /// The rule text currently served; an empty RELOAD recompiles it.
    rules: Mutex<String>,
    current: Mutex<Arc<Generation>>,
    pool_options: PoolOptions,
    telemetry: Telemetry,
    reloads: AtomicU64,
    next_generation: AtomicU64,
    connections_live: AtomicU64,
    streams_served: AtomicU64,
}

impl DaemonShared {
    fn stats(&self) -> ServerStats {
        let current = self.current.lock().expect("generation lock").clone();
        ServerStats {
            generation: current.id,
            reloads: self.reloads.load(Ordering::Relaxed),
            live_streams: current.pool.live_streams() as u64,
            connections: self.connections_live.load(Ordering::Relaxed),
            streams_served: self.streams_served.load(Ordering::Relaxed),
        }
    }

    /// Compiles `rules` (or the current rules when empty) and swaps in a
    /// fresh generation. In-flight streams keep draining on their own
    /// generation's pool.
    fn reload(&self, rules: String) -> Result<u64, CaError> {
        let effective =
            if rules.is_empty() { self.rules.lock().expect("rules lock").clone() } else { rules };
        let program = compile_rules(&self.compiler, &effective)?;
        let pool = ScanPool::new(&program, self.pool_options)?;
        let id = self.next_generation.fetch_add(1, Ordering::Relaxed);
        // The pool holds everything the program contributes; the program
        // value itself need not outlive compilation.
        drop(program);
        let fresh = Arc::new(Generation { id, pool });
        let old = {
            let mut current = self.current.lock().expect("generation lock");
            std::mem::replace(&mut *current, fresh)
        };
        *self.rules.lock().expect("rules lock") = effective;
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.reload.count", 1);
        self.telemetry.gauge("serve.reload.generation", 0, id as f64);
        // Dropping the old Arc outside the generation lock: if no stream
        // still references it, the pool drains and joins here, without
        // stalling concurrent OPEN_STREAMs.
        drop(old);
        self.telemetry.flush();
        Ok(id)
    }
}

/// Builds a homogeneous NFA from rule text: an ANML document when the
/// text starts with `<`, otherwise newline-separated regex patterns
/// (blank lines and `#` comments ignored; pattern `i` reports code `i`).
///
/// This is the one rules parser shared by `cactl` (which reads the text
/// from a file) and the daemon's RELOAD path (which receives it over the
/// wire).
///
/// # Errors
///
/// [`CaError::Config`] for an empty pattern set; otherwise ANML or regex
/// front-end errors.
pub fn nfa_from_rules_text(text: &str) -> Result<crate::HomNfa, CaError> {
    if text.trim_start().starts_with('<') {
        Ok(ca_automata::anml::parse_anml(text)?)
    } else {
        let patterns: Vec<&str> =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
        if patterns.is_empty() {
            return Err(CaError::Config("no patterns found in rules text".into()));
        }
        Ok(ca_automata::regex::compile_patterns(&patterns)?)
    }
}

/// Compiles rule text with `ca` (see [`nfa_from_rules_text`]).
///
/// # Errors
///
/// Front-end or mapping-compiler failures.
pub fn compile_rules(ca: &CacheAutomaton, text: &str) -> Result<Program, CaError> {
    ca.compile_nfa(&nfa_from_rules_text(text)?)
}

/// A serving daemon bound to a socket, accepting connections on a
/// background thread (the transport lives in [`NetServer`]). See the
/// [module docs](self) for the protocol, backpressure, and reload
/// semantics.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    server: NetServer,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", self.server.local_addr())
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl Daemon {
    /// Compiles `rules` with `ca` (generation 0) and starts accepting
    /// connections on `addr` (see [`ListenAddr::parse`]).
    ///
    /// # Errors
    ///
    /// Compilation failures, invalid addresses, or socket bind errors.
    pub fn bind(
        ca: &CacheAutomaton,
        rules: &str,
        addr: &str,
        options: DaemonOptions,
    ) -> Result<Daemon, CaError> {
        let program = compile_rules(ca, rules)?;
        let telemetry = program.telemetry();
        let pool = ScanPool::new(&program, options.pool)?;
        let shared = Arc::new(DaemonShared {
            compiler: ca.clone(),
            rules: Mutex::new(rules.to_string()),
            current: Mutex::new(Arc::new(Generation { id: 0, pool })),
            pool_options: options.pool,
            telemetry,
            reloads: AtomicU64::new(0),
            next_generation: AtomicU64::new(1),
            connections_live: AtomicU64::new(0),
            streams_served: AtomicU64::new(0),
        });
        let conn_shared = Arc::clone(&shared);
        let server =
            NetServer::bind(addr, move |conn, id| connection_loop(&conn_shared, conn, id))?;
        Ok(Daemon { shared, server })
    }

    /// The address the daemon actually listens on — with an ephemeral TCP
    /// port resolved, in a form [`Client::connect`] accepts.
    pub fn local_addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// Current daemon counters (the same numbers a STATS frame returns).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting connections, joins the connection threads (which
    /// exit when their clients disconnect — close clients first), and
    /// tears down the current generation's pool.
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if the accept or a connection thread
    /// panicked.
    pub fn shutdown(mut self) -> Result<(), CaError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), CaError> {
        let result = self.server.shutdown();
        self.shared.telemetry.flush();
        result
    }

    /// Blocks until the daemon shuts down (for a foreground `cactl
    /// serve`, that is "forever" — until the process is killed).
    pub fn wait(mut self) {
        self.server.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if !self.server.is_down() {
            let _ = self.shutdown_inner();
        }
    }
}

/// Per-connection stream bookkeeping: the pool stream plus the generation
/// `Arc` that keeps its pool alive across reloads.
struct ConnStream {
    handle: StreamHandle,
    /// Matches drained from the pool but not yet shipped: a single poll
    /// may surface more events than one MATCHES frame can carry, so the
    /// surplus waits here for the client's next POLL_MATCHES.
    pending: VecDeque<MatchEvent>,
    /// Never read — held purely so a retired generation's pool is not
    /// torn down while this stream still drains on it.
    _generation: Arc<Generation>,
}

/// Takes up to `cap` events off the front of `pending` (the next
/// MATCHES-frame chunk). Factored out so the chunking is testable with a
/// small cap — the real one is [`MAX_EVENTS_PER_MATCHES_FRAME`], ~1.4M
/// events, impractical to exercise end-to-end.
fn drain_capped(pending: &mut VecDeque<MatchEvent>, cap: usize) -> Vec<MatchEvent> {
    let n = pending.len().min(cap);
    pending.drain(..n).collect()
}

fn connection_loop(shared: &Arc<DaemonShared>, conn: Conn, conn_id: u64) {
    shared.telemetry.counter("serve.conn.accepted", 1);
    let live = shared.connections_live.fetch_add(1, Ordering::Relaxed) + 1;
    shared.telemetry.gauge("serve.conn.live", 0, live as f64);
    let result = serve_connection(shared, conn, conn_id);
    shared.connections_live.fetch_sub(1, Ordering::Relaxed);
    shared.telemetry.counter("serve.conn.closed", 1);
    let live = shared.connections_live.load(Ordering::Relaxed);
    shared.telemetry.gauge("serve.conn.live", 0, live as f64);
    shared.telemetry.flush();
    // A connection failing is that connection's problem; the daemon keeps
    // serving. The error was already reported to the peer where possible.
    drop(result);
}

fn serve_connection(shared: &Arc<DaemonShared>, conn: Conn, conn_id: u64) -> Result<(), CaError> {
    let reader_conn = conn.try_clone().map_err(|e| CaError::Io(format!("clone socket: {e}")))?;
    let mut reader = BufReader::new(reader_conn);
    let mut writer = BufWriter::new(conn);
    // Stream ids are daemon-assigned, scoped to the connection.
    let mut streams: HashMap<u64, ConnStream> = HashMap::new();
    let mut next_stream = (conn_id << 32) | 1;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean disconnect: abandon any unfinished streams (their
            // queued work is discarded, pool slots freed).
            Ok(None) => return Ok(()),
            Err(e) => {
                // Best-effort typed goodbye; the connection is already
                // suspect, so ignore secondary failures.
                let _ = write_frame(&mut writer, &error_to_wire(&e));
                let _ = writer.flush();
                return Err(e);
            }
        };
        shared.telemetry.counter("serve.conn.frames", 1);
        let reply = handle_frame(shared, &mut streams, &mut next_stream, frame);
        match write_frame(&mut writer, &reply) {
            Ok(()) => {}
            // An encode-side refusal (the reply would exceed the frame
            // cap) writes nothing — downgrade to a typed ERROR so the
            // client gets a reply and the connection stays usable.
            Err(e @ CaError::Protocol(_)) => write_frame(&mut writer, &error_to_wire(&e))?,
            Err(e) => return Err(e),
        }
        writer.flush().map_err(|e| CaError::Io(format!("flushing reply: {e}")))?;
    }
}

fn handle_frame(
    shared: &Arc<DaemonShared>,
    streams: &mut HashMap<u64, ConnStream>,
    next_stream: &mut u64,
    frame: Frame,
) -> Frame {
    match try_handle_frame(shared, streams, next_stream, frame) {
        Ok(reply) => reply,
        Err(e) => error_to_wire(&e),
    }
}

fn try_handle_frame(
    shared: &Arc<DaemonShared>,
    streams: &mut HashMap<u64, ConnStream>,
    next_stream: &mut u64,
    frame: Frame,
) -> Result<Frame, CaError> {
    let lookup = |streams: &mut HashMap<u64, ConnStream>, id: u64| -> Result<(), CaError> {
        if streams.contains_key(&id) {
            Ok(())
        } else {
            Err(CaError::Config(format!("unknown stream id {id} on this connection")))
        }
    };
    match frame {
        Frame::OpenStream => {
            let generation = shared.current.lock().expect("generation lock").clone();
            let handle = generation.pool.open_stream()?;
            let stream = *next_stream;
            *next_stream += 1;
            let gen_id = generation.id;
            streams.insert(
                stream,
                ConnStream { handle, pending: VecDeque::new(), _generation: generation },
            );
            shared.streams_served.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.counter("serve.conn.streams", 1);
            Ok(Frame::StreamOpened { stream, generation: gen_id })
        }
        Frame::FeedChunk { stream, data } => {
            lookup(streams, stream)?;
            let entry = streams.get_mut(&stream).expect("looked up above");
            // Blocks under backpressure — which stalls this connection's
            // socket, not the daemon (see module docs).
            if let Err(e) = entry.handle.feed(&data) {
                streams.remove(&stream);
                return Err(e);
            }
            shared.telemetry.counter("serve.conn.rx_bytes", data.len() as u64);
            Ok(Frame::FeedAck { stream, bytes: data.len() as u64 })
        }
        Frame::PollMatches { stream } => {
            lookup(streams, stream)?;
            let entry = streams.get_mut(&stream).expect("looked up above");
            entry.pending.extend(entry.handle.poll_matches().iter().copied());
            // Chunk under the frame cap; the surplus stays queued for the
            // client's next poll, so no MATCHES reply can be oversized.
            let events = drain_capped(&mut entry.pending, MAX_EVENTS_PER_MATCHES_FRAME);
            Ok(Frame::Matches { stream, events })
        }
        Frame::Finish { stream } => {
            lookup(streams, stream)?;
            let entry = streams.remove(&stream).expect("looked up above");
            let report = entry.handle.finish()?;
            // `entry._generation` drops here; if this was the last stream
            // of a retired generation, its pool drains and joins now.
            Ok(Frame::Finished {
                stream,
                report: WireReport { events: report.matches, exec: report.exec },
            })
        }
        Frame::Stats => Ok(Frame::StatsReply(shared.stats())),
        Frame::Reload { rules } => match shared.reload(rules) {
            Ok(generation) => Ok(Frame::ReloadOk { generation }),
            Err(e) => {
                shared.telemetry.counter("serve.reload.failed", 1);
                Err(e)
            }
        },
        // Valid client frames this daemon does not serve: the scan
        // daemon is not a cache peer (`cactl cache-serve` is). The typed
        // Unsupported code lets a RemoteCache probe degrade to a
        // permanent miss instead of poisoning the connection — and lets
        // it assert that behavior against a stable code, not a string.
        Frame::CacheGet { .. } | Frame::CachePut { .. } | Frame::CacheStats => {
            Err(CaError::Unsupported("this daemon does not serve cache frames".into()))
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation.
        other => Err(CaError::Protocol(format!(
            "unexpected frame kind {:?} from a client",
            std::mem::discriminant(&other)
        ))),
    }
}

/// Socket deadlines for a [`Client`].
///
/// Every limit is a kernel-level timeout: a dial, read, or write blocked
/// past its deadline fails with a transport [`CaError::Io`] instead of
/// hanging the caller forever on a peer that accepted the connection and
/// then went silent. `None` disables that deadline.
///
/// The defaults — 5 s to connect, 30 s per read/write — are tuned for
/// scan traffic: a FEED_ACK legitimately stalls while the daemon's
/// bounded stream queue drains under backpressure, so the I/O deadlines
/// are generous. The [`RemoteCache`](crate::cache::RemoteCache) tier
/// overrides them with its own much tighter budget (a cache peer answers
/// in milliseconds or is treated as broken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Deadline for the TCP connect (Unix-socket connects are immediate).
    pub connect_timeout: Option<Duration>,
    /// Deadline for each blocking read of a reply.
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write of a request.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientOptions {
    /// One deadline for connect, read, and write alike — the shape cache
    /// tiers want: any stall past `timeout` is a transport error.
    pub fn uniform(timeout: Duration) -> ClientOptions {
        ClientOptions {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
        }
    }
}

/// A synchronous client of a serving daemon: one connection, blocking
/// request/reply per call. Used by `cactl connect`, the soak tests, and
/// the `serving-daemon` experiment — and small enough to crib for real
/// integrations.
pub struct Client {
    reader: BufReader<Conn>,
    writer: BufWriter<Conn>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port` or `unix:<path>`)
    /// with the default [`ClientOptions`] deadlines.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] for an unparsable address, [`CaError::Io`] for
    /// connection failures (including a connect past its deadline).
    pub fn connect(addr: &str) -> Result<Client, CaError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit socket deadlines.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: &str, options: ClientOptions) -> Result<Client, CaError> {
        let addr = ListenAddr::parse(addr)?;
        let conn = dial(&addr, options.connect_timeout)?;
        conn.set_timeouts(options.read_timeout, options.write_timeout)
            .map_err(|e| CaError::Io(format!("set socket timeouts: {e}")))?;
        let reader_conn =
            conn.try_clone().map_err(|e| CaError::Io(format!("clone socket: {e}")))?;
        Ok(Client { reader: BufReader::new(reader_conn), writer: BufWriter::new(conn) })
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, CaError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush().map_err(|e| CaError::Io(format!("flushing request: {e}")))?;
        match read_frame(&mut self.reader)? {
            Some(Frame::Error { code, message }) => Err(error_from_wire(code, message)),
            Some(reply) => Ok(reply),
            None => Err(CaError::Io("daemon closed the connection".into())),
        }
    }

    /// Opens a stream; returns `(stream_id, generation)`.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors (typed via the shared code table) or
    /// transport failures.
    pub fn open_stream(&mut self) -> Result<(u64, u64), CaError> {
        match self.request(&Frame::OpenStream)? {
            Frame::StreamOpened { stream, generation } => Ok((stream, generation)),
            other => Err(unexpected_reply("STREAM_OPENED", &other)),
        }
    }

    /// Feeds one chunk and waits for its acknowledgement.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn feed(&mut self, stream: u64, chunk: &[u8]) -> Result<(), CaError> {
        let reply = self.request(&Frame::FeedChunk { stream, data: chunk.to_vec() })?;
        match reply {
            Frame::FeedAck { stream: s, bytes } if s == stream && bytes == chunk.len() as u64 => {
                Ok(())
            }
            other => Err(unexpected_reply("FEED_ACK", &other)),
        }
    }

    /// Drains matches reported since the previous poll of `stream`.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn poll_matches(&mut self, stream: u64) -> Result<Vec<MatchEvent>, CaError> {
        match self.request(&Frame::PollMatches { stream })? {
            Frame::Matches { stream: s, events } if s == stream => Ok(events),
            other => Err(unexpected_reply("MATCHES", &other)),
        }
    }

    /// Closes `stream` and waits for its final report.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn finish(&mut self, stream: u64) -> Result<WireReport, CaError> {
        match self.request(&Frame::Finish { stream })? {
            Frame::Finished { stream: s, report } if s == stream => Ok(report),
            other => Err(unexpected_reply("FINISHED", &other)),
        }
    }

    /// Fetches daemon counters.
    ///
    /// # Errors
    ///
    /// Daemon-reported errors or transport failures.
    pub fn stats(&mut self) -> Result<ServerStats, CaError> {
        match self.request(&Frame::Stats)? {
            Frame::StatsReply(stats) => Ok(stats),
            other => Err(unexpected_reply("STATS_REPLY", &other)),
        }
    }

    /// Requests a hot reload; `rules` is the replacement rule text, or
    /// `None` to recompile the daemon's current rules (a generation bump
    /// to an identical program). Returns the new generation counter.
    ///
    /// # Errors
    ///
    /// Compilation failures reported by the daemon, or transport
    /// failures. A failed reload leaves the old generation serving.
    pub fn reload(&mut self, rules: Option<&str>) -> Result<u64, CaError> {
        match self.request(&Frame::Reload { rules: rules.unwrap_or("").to_string() })? {
            Frame::ReloadOk { generation } => Ok(generation),
            other => Err(unexpected_reply("RELOAD_OK", &other)),
        }
    }

    /// Asks a cache peer for the artifact stored under `key`. `Ok(None)`
    /// is a clean miss; the returned bytes are *unvalidated* — callers
    /// decode (checksum included) before trusting them.
    ///
    /// # Errors
    ///
    /// Peer-reported errors (including a peer that does not serve cache
    /// frames) or transport failures.
    pub fn cache_get(&mut self, key: &CacheKey) -> Result<Option<Vec<u8>>, CaError> {
        match self.request(&Frame::CacheGet { key: *key })? {
            Frame::CacheFound { artifact } => Ok(Some(artifact)),
            Frame::CacheMiss => Ok(None),
            other => Err(unexpected_reply("CACHE_FOUND or CACHE_MISS", &other)),
        }
    }

    /// Offers a cache peer the `CAPR` `artifact` compiled under `key`.
    ///
    /// # Errors
    ///
    /// Peer-reported errors or transport failures (an artifact over the
    /// frame cap is refused client-side, before anything is written).
    pub fn cache_put(&mut self, key: &CacheKey, artifact: &[u8]) -> Result<(), CaError> {
        match self.request(&Frame::CachePut { key: *key, artifact: artifact.to_vec() })? {
            Frame::CachePutOk => Ok(()),
            other => Err(unexpected_reply("CACHE_PUT_OK", &other)),
        }
    }

    /// Fetches a cache peer's counters (the `cache.serve.*` numbers plus
    /// its disk inventory).
    ///
    /// # Errors
    ///
    /// Peer-reported errors (a scan daemon refuses with the Unsupported
    /// code) or transport failures.
    pub fn cache_stats(&mut self) -> Result<CacheServerStats, CaError> {
        match self.request(&Frame::CacheStats)? {
            Frame::CacheStatsReply(stats) => Ok(stats),
            other => Err(unexpected_reply("CACHE_STATS_REPLY", &other)),
        }
    }
}

fn unexpected_reply(wanted: &str, got: &Frame) -> CaError {
    CaError::Protocol(format!("expected a {wanted} reply, got {:?}", std::mem::discriminant(got)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_text_front_end() {
        let nfa = nfa_from_rules_text("# comment\n\nrain\nsp[ai]n\n").unwrap();
        assert!(!nfa.is_empty());
        assert!(matches!(
            nfa_from_rules_text("# only comments\n").unwrap_err(),
            CaError::Config(_)
        ));
    }

    #[test]
    fn daemon_round_trip_and_reload_on_tcp() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();

        let (stream, generation) = client.open_stream().unwrap();
        assert_eq!(generation, 0);
        client.feed(stream, b"hay nee").unwrap();
        client.feed(stream, b"dle hay").unwrap();
        let polled = client.poll_matches(stream).unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1);
        assert!(polled.len() <= 1, "poll may race the worker, never over-delivers");

        // Reload to a different rule set; new streams see the new rules.
        let generation = client.reload(Some("hay\n")).unwrap();
        assert_eq!(generation, 1);
        let (stream, bound) = client.open_stream().unwrap();
        assert_eq!(bound, 1);
        client.feed(stream, b"hay nee").unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1, "matches 'hay' under the reloaded rules");

        let stats = client.stats().unwrap();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.streams_served, 2);
        assert_eq!(stats.connections, 1);

        // A failing reload leaves the serving generation untouched.
        let err = client.reload(Some("(\n")).unwrap_err();
        assert_eq!(err.code(), 4, "regex parse error crosses the wire with its code");
        assert_eq!(client.stats().unwrap().generation, 1);

        drop(client);
        daemon.shutdown().unwrap();
    }

    #[test]
    fn poll_chunking_preserves_order_and_surplus() {
        let mut pending: VecDeque<MatchEvent> =
            (0..10u64).map(|i| MatchEvent::new(i, ca_automata::ReportCode(7))).collect();
        let first = drain_capped(&mut pending, 4);
        assert_eq!(first.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(pending.len(), 6, "surplus stays queued");
        let second = drain_capped(&mut pending, 4);
        assert_eq!(second.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        let rest = drain_capped(&mut pending, 4);
        assert_eq!(rest.iter().map(|e| e.pos).collect::<Vec<_>>(), vec![8, 9]);
        assert!(drain_capped(&mut pending, 4).is_empty());
    }

    #[test]
    fn cache_frames_get_a_typed_refusal_and_the_connection_survives() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();
        let key = CacheKey {
            fingerprint: ca_automata::Fingerprint(1),
            design: crate::Design::Performance,
            slices: 8,
            seed: 0,
            optimized: false,
        };
        let err = client.cache_get(&key).unwrap_err();
        assert_eq!(err.code(), 9, "scan daemon refuses cache frames with the Unsupported code");
        assert!(matches!(err, CaError::Unsupported(_)), "{err}");
        let err = client.cache_put(&key, b"CAPRjunk").unwrap_err();
        assert_eq!(err.code(), 9);
        let err = client.cache_stats().unwrap_err();
        assert_eq!(err.code(), 9, "the stats frame is refused with the same code");
        // the connection is still good for scanning
        let (stream, _) = client.open_stream().unwrap();
        client.feed(stream, b"a needle").unwrap();
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events.len(), 1);
        drop(client);
        daemon.shutdown().unwrap();
    }

    #[test]
    fn unknown_stream_is_a_typed_config_error() {
        let ca = CacheAutomaton::new();
        let daemon =
            Daemon::bind(&ca, "needle\n", "127.0.0.1:0", DaemonOptions::default()).unwrap();
        let mut client = Client::connect(&daemon.local_addr()).unwrap();
        let err = client.feed(99, b"x").unwrap_err();
        assert!(matches!(err, CaError::Config(_)), "{err}");
        // the connection survives the error
        let (stream, _) = client.open_stream().unwrap();
        client.feed(stream, b"x").unwrap();
        drop(client);
        daemon.shutdown().unwrap();
    }
}
